#!/usr/bin/env python3
"""Rally race: the Continuous-Contact benchmark feature set.

Cars with slider-joint suspensions drive over rolling heightfield terrain
between static obstacles — continuous contact, the racing-genre scenario
of the paper's Table 3 — while the workload report shows the steady
contact stream it generates.
"""

import math

from repro.engine import World
from repro.math3d import Vec3
from repro.workloads import scenes


def main():
    world = World()
    terrain = scenes.make_terrain(
        world, extent=80.0, resolution=24, amplitude=0.6, seed=7
    )
    scenes.scatter_obstacles(world, 12, area=50.0, seed=7)

    cars = []
    for k in range(4):
        angle = k * math.pi / 2
        x, z = 12 * math.cos(angle), 12 * math.sin(angle)
        heading = angle + math.pi / 2
        car = scenes.make_car(
            world,
            Vec3(x, terrain.height_at(x, z) + 0.4, z),
            heading=heading,
        )
        car.set_throttle(16.0, max_force=800.0)
        # Rolling start: forward is the chassis' local +z.
        forward = car.chassis.orientation.rotate(Vec3(0, 0, 1))
        for body in car.all_bodies():
            body.linear_velocity = forward * 5.0
        cars.append(car)

    start = [car.chassis.position for car in cars]
    print("frame  car0-dist  car0-height  pairs  contacts  islands")
    for frame in range(40):
        report = world.step_frame()
        if frame % 5 == 0 or frame == 39:
            d = cars[0].chassis.position.distance_to(start[0])
            print(
                f"{frame:5d}  {d:9.2f}  {cars[0].chassis.position.y:11.2f}"
                f"  {int(report['broadphase'].get('pairs')):5d}"
                f"  {int(report['narrowphase'].get('contacts')):8d}"
                f"  {int(report['island_creation'].get('islands')) // 3:7d}"
            )

    distances = [
        car.chassis.position.distance_to(s) for car, s in zip(cars, start)
    ]
    moved = sum(1 for d in distances if d > 2.0)
    heights = [car.chassis.position.y for car in cars]
    print(f"\ncars that drove >2m: {moved}/4, distances: "
          f"{[round(d, 1) for d in distances]}")
    assert moved >= 3, "most cars should be driving"
    assert all(h > -1.0 for h in heights), "a car fell through the terrain"
    print("OK: rally complete.")


if __name__ == "__main__":
    main()
