#!/usr/bin/env python3
"""Quickstart: a minimal rigid-body scene with the public API.

Drops a small stack of crates and a ball onto the ground plane, steps the
world at the paper's 30 FPS cadence (three 0.01s sub-steps per frame),
and prints the scene settling, plus the per-frame workload report the
architecture study consumes.
"""

from repro.dynamics import Body
from repro.engine import World
from repro.geometry import Box, Plane, Sphere
from repro.math3d import Vec3


def main():
    world = World()
    world.add_static_geom(Plane(Vec3(0, 1, 0), 0.0))

    crates = []
    for i in range(3):
        crate = Body(position=Vec3(0, 0.5 + 1.001 * i, 0))
        world.attach(crate, Box.from_dimensions(1, 1, 1), density=300.0)
        crates.append(crate)

    ball = Body(position=Vec3(-3.0, 1.2, 0))
    world.attach(ball, Sphere(0.4), density=800.0)
    ball.linear_velocity = Vec3(6.0, 2.0, 0)  # hurl it at the stack

    print("frame  ball.x  ball.y  top-crate.y  pairs  contacts")
    for frame in range(30):
        report = world.step_frame()
        if frame % 5 == 0 or frame == 29:
            np_data = report["narrowphase"]
            print(
                f"{frame:5d}  {ball.position.x:6.2f}  {ball.position.y:6.2f}"
                f"  {crates[-1].position.y:11.2f}"
                f"  {int(report['broadphase'].get('pairs')):5d}"
                f"  {int(np_data.get('contacts')):8d}"
            )

    print("\nfinal frame per-phase counters:")
    for phase, counters in report.summary().items():
        printable = {k: int(v) for k, v in counters.items()}
        print(f"  {phase:18s} {printable}")

    assert ball.position.y < 1.0, "ball should have landed"
    print("\nOK: scene settled.")


if __name__ == "__main__":
    main()
