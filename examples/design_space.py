#!/usr/bin/env python3
"""Design-space tour: the paper's architecture study on one benchmark.

Runs the Mix benchmark at a reduced scale, then walks the ParallAX design
space: conventional CMP scaling, the partitioned-L2 win, FG core designs
and interconnect choices — printing the modeled frame time and FPS for
each point.  (``--scale 1.0`` reproduces paper-scale counts but is slow in
pure Python.)
"""

import argparse

from repro.arch import (
    HTX,
    ONCHIP_MESH,
    PCIE,
    L2Partitioning,
    ParallaxConfig,
    ParallaxMachine,
)
from repro.arch.area import fg_pool_area
from repro.workloads import run_benchmark

MB = 1024 * 1024


def show(label, seconds):
    fps = 1.0 / seconds if seconds > 0 else float("inf")
    print(f"  {label:52s} {seconds * 1e3:8.2f} ms   {fps:7.1f} FPS")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--benchmark", default="mix")
    args = parser.parse_args()

    print(f"simulating '{args.benchmark}' at scale {args.scale} ...")
    run = run_benchmark(
        args.benchmark, scale=args.scale, frames=5, measure_from=3
    )
    report = run.measured

    print("\n-- conventional CMP (shared L2) --")
    for cores, l2_mb in ((1, 1), (1, 16), (2, 16), (4, 16)):
        machine = ParallaxMachine(
            ParallaxConfig(cg_cores=cores, l2=L2Partitioning.shared(l2_mb * MB))
        )
        show(
            f"{cores} CG core(s), {l2_mb}MB shared L2",
            machine.frame_seconds(report, threads=cores),
        )

    print("\n-- application-aware L2 partitioning (the 12MB scheme) --")
    machine = ParallaxMachine(
        ParallaxConfig(cg_cores=4, l2=L2Partitioning.paper_scheme())
    )
    show("4 CG cores, 4+4+4MB partitioned L2",
         machine.frame_seconds(report, threads=4))

    print("\n-- ParallAX: + FG core pool --")
    for design, count in (("desktop", 30), ("console", 43), ("shader", 150)):
        machine = ParallaxMachine(
            ParallaxConfig(
                cg_cores=4, l2=L2Partitioning.paper_scheme(),
                fg_design=design, fg_cores=count,
                interconnect=ONCHIP_MESH,
            )
        )
        area = fg_pool_area(design, count)
        show(
            f"+ {count} {design} FG cores (pool {area:.0f} mm^2)",
            machine.parallax_frame_seconds(report),
        )

    print("\n-- interconnect sensitivity (150 shader cores) --")
    for link in (ONCHIP_MESH, HTX, PCIE):
        machine = ParallaxMachine(
            ParallaxConfig(
                cg_cores=4, l2=L2Partitioning.paper_scheme(),
                fg_design="shader", fg_cores=150, interconnect=link,
            )
        )
        off = machine.offload_timings(report)
        offload = {
            p: f"{t.offloaded_fraction * 100:.0f}%"
            for p, t in off.items()
            if t.offloaded_fraction or p == "cloth"
        }
        show(f"{link.name:12s} offloaded={offload}",
             machine.parallax_frame_seconds(report))

    print("\n-- how many FG cores for 30 FPS? --")
    for design in ("desktop", "console", "shader"):
        machine = ParallaxMachine(ParallaxConfig(fg_design=design))
        n = machine.fg_cores_required(report, budget_fraction=0.32)
        print(f"  {design:10s}: {n} cores "
              f"({fg_pool_area(design, n):.0f} mm^2)")


if __name__ == "__main__":
    main()
