#!/usr/bin/env python3
"""Run a benchmark under the resilience layer.

Inject a seeded fault schedule, guard every sub-step with the watchdog,
and print the incident log and final validation verdict:

    python examples/resilience_demo.py --watchdog --faults
    python examples/resilience_demo.py --benchmark breakable --watchdog
    python examples/resilience_demo.py --faults        # unguarded burn

Without ``--watchdog`` the faults land on an unguarded world so you can
watch the difference: the validator reports the NaNs the watchdog would
have rolled back.
"""

import argparse

from repro.resilience import FaultSchedule
from repro.workloads import run_benchmark, validate_world


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="explosions",
                        help="Table 3 workload name (default: explosions)")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--frames", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--watchdog", action="store_true",
                        help="guard each sub-step: validate, roll back, "
                             "degrade")
    parser.add_argument("--faults", action="store_true",
                        help="inject a seeded fault schedule")
    parser.add_argument("--fault-count", type=int, default=4)
    args = parser.parse_args()

    schedule = None
    if args.faults:
        steps = args.frames * 3
        schedule = FaultSchedule.seeded(args.seed, steps,
                                        count=args.fault_count)
        print(f"fault schedule: {list(schedule)}")

    run = run_benchmark(args.benchmark, scale=args.scale,
                        frames=args.frames, seed=args.seed,
                        watchdog=args.watchdog, fault_schedule=schedule)

    if run.injector is not None:
        print(f"injected: {run.injector.injected}")
    if run.health is not None:
        print(f"watchdog: {run.health.summary()}")
        for event in run.health:
            print(f"  {event!r}")
    report = validate_world(run.world, health=run.health)
    print(f"validation: {report.summary()}")
    for note in report.notes:
        print(f"  note: {note}")


if __name__ == "__main__":
    main()
