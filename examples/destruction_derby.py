#!/usr/bin/env python3
"""Destruction derby: the Breakable-benchmark feature set in one scene.

A prefractured brick wall is bombarded by an explosive cannon while a
bonded (mortared) wall takes a ramming car.  Demonstrates explosions,
blast volumes, prefractured debris, breakable fixed joints, and the event
log a game engine would consume.
"""

from repro.engine import World
from repro.geometry import Plane
from repro.math3d import Vec3
from repro.workloads import scenes


def main():
    world = World()
    world.add_static_geom(Plane(Vec3(0, 1, 0), 0.0))

    # Wall A: prefractured bricks (each shatters into 8 pieces on blast).
    wall_a = scenes.make_wall(
        world, Vec3(-6, 0, 0), bricks_x=4, bricks_y=4, prefractured=True
    )
    # Wall B: bricks mortared with breakable fixed joints.
    wall_b = scenes.make_wall(
        world, Vec3(6, 0, 0), bricks_x=4, bricks_y=4, bonded=True,
        break_threshold=1.0e4,
    )
    bonds = list(world.joints)

    cannon = scenes.Cannon(
        world, Vec3(-6, 1.5, 14), Vec3(-6, 1.0, 0),
        speed=35.0, period_steps=20, explosive=True,
    )

    car = scenes.make_car(world, Vec3(6, 0, 14), heading=0.0, simple=True)
    for body in car.all_bodies():
        body.linear_velocity = Vec3(0, 0, -25.0)
    car.set_throttle(-40.0)

    print("step  explosions  debris-alive  bonds-broken  dyn-bodies")
    for step in range(150):
        cannon.tick()
        world.report = None
        world.step()
        if step % 15 == 0 or step == 149:
            debris = sum(
                1
                for pf in world.prefracture_registry
                for body, _ in pf.debris
                if body.enabled
            )
            broken = sum(1 for j in bonds if j.broken)
            print(
                f"{step:4d}  {len(world.explosions):10d}  {debris:12d}"
                f"  {broken:12d}  {len(world.dynamic_bodies()):10d}"
            )

    fractured = sum(1 for pf in world.prefracture_registry if pf.broken)
    broken_bonds = sum(1 for j in bonds if j.broken)
    print(f"\nprefractured bricks shattered: {fractured}/{len(wall_a)}")
    print(f"mortar bonds broken:           {broken_bonds}/{len(bonds)}")
    assert fractured > 0, "the cannon should have shattered some bricks"
    assert broken_bonds > 0, "the car should have cracked the bonded wall"
    print("OK: destruction verified.")


if __name__ == "__main__":
    main()
