#!/usr/bin/env python3
"""Record, validate, and determinism-check a benchmark run.

The paper verified its benchmarks visually; headless, we (1) record body
trajectories to JSON (loadable by any external viewer), (2) run the
numeric plausibility validators, and (3) prove the simulation is
deterministic by replaying it from scratch.
"""

import os
import tempfile

from repro.engine.recorder import TrajectoryRecorder, assert_deterministic
from repro.workloads import get_benchmark, validate_world


def main():
    bench = get_benchmark("breakable")
    world, driver = bench.build(scale=0.1, seed=4)

    print("recording 8 frames of 'breakable' at scale 0.1 ...")
    recorder = TrajectoryRecorder(world).record(8, driver)
    arr = recorder.positions_array()
    print(f"  trajectory tensor: {arr.shape} (frames, bodies, xyz)")

    out = os.path.join(tempfile.gettempdir(), "breakable_traj.json")
    recorder.save_json(out)
    print(f"  saved to {out} ({os.path.getsize(out) // 1024} KiB)")

    # Let the blast aftermath settle before judging joint health —
    # mid-explosion ragdolls legitimately stretch their joints.
    for _ in range(15):
        world.report = None
        world.step()
    report = validate_world(world)
    print(f"\nvalidation: {report.summary()}")
    for note in report.notes:
        print(f"  note: {note}")
    assert report.non_finite_bodies == 0

    print("\ndeterminism check (two fresh runs, 4 frames) ...")
    divergence = assert_deterministic(
        lambda: bench.build(scale=0.1, seed=4), frames=4
    )
    print(f"  max divergence: {divergence} (bit-identical)")
    print("\nOK: recorded, validated, deterministic.")


if __name__ == "__main__":
    main()
