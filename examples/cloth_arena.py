#!/usr/bin/env python3
"""Cloth arena: the Deformable-benchmark feature set.

A large 625-vertex drape (the paper's big-cloth size) is pinned over a
ragdoll while small 25-vertex uniforms dress two more ragdolls; everything
interacts through the world's cloth contact lists.
"""

from repro.cloth import Cloth
from repro.engine import World
from repro.geometry import Plane
from repro.math3d import Vec3
from repro.workloads import scenes


def main():
    world = World()
    world.add_static_geom(Plane(Vec3(0, 1, 0), 0.0))

    players = [
        scenes.make_humanoid(world, Vec3(x, 0, 0)) for x in (-2.0, 0.0, 2.0)
    ]

    # Large drape over the middle player (25x25 = 625 vertices).
    drape = Cloth(25, 25, 0.1, Vec3(-1.2, 2.6, 0.3), pin_top_row=True)
    drape.ground_height = 0.0
    world.add_cloth(drape)

    # Small uniforms (5x5 = 25 vertices) on the outer players.
    for player in (players[0], players[2]):
        torso = player.bodies["torso"]
        uniform = Cloth(
            5, 5, 0.12,
            torso.position + Vec3(-0.24, 0.25, 0.18),
            pin_top_row=True,
        )
        uniform.ground_height = 0.0
        world.add_cloth(uniform)

    players[0].set_velocity(Vec3(1.5, 0, 0))  # walk into the drape

    print("frame  drape-min-y  drape-contacts  cloth-projections")
    for frame in range(40):
        report = world.step_frame()
        if frame % 5 == 0 or frame == 39:
            min_y = float(drape.positions[:, 1].min())
            print(
                f"{frame:5d}  {min_y:11.3f}  {len(drape.contact_bodies):14d}"
                f"  {int(report['cloth'].get('projections')):17d}"
            )

    assert float(drape.positions[:, 1].min()) >= -1e-6, "cloth fell through"
    total_vertices = sum(c.num_vertices for c in world.cloths)
    print(f"\ncloth objects: {len(world.cloths)}, vertices: {total_vertices}")
    print("OK: drape settled over the scene without tunnelling.")


if __name__ == "__main__":
    main()
