#!/usr/bin/env python3
"""Batch throughput: many small worlds through one packed solve.

Builds N independent copies of the ragdoll workload and steps them
three ways — scalar one-by-one, backend="numpy" one-by-one, and as a
single :class:`repro.fastpath.BatchWorld` — then prints per-world frame
times.  The batch path packs every world's constraint islands into one
vectorized solve, which is where the wide-SIMD regime the paper
targets finally has enough rows per dependency level to pay off.

Run from the repo root::

    PYTHONPATH=src python examples/batch_throughput.py [N]
"""

import sys
import time

from repro.engine.recorder import TrajectoryRecorder, trajectory_divergence
from repro.fastpath import BatchWorld, default_backend
from repro.workloads import BENCHMARKS

FRAMES = 10
SCALE = 0.05


def build_fleet(n, backend):
    worlds, drivers = [], []
    for seed in range(n):
        with default_backend(backend):
            world, driver = BENCHMARKS["ragdoll"].build(scale=SCALE,
                                                        seed=seed)
        worlds.append(world)
        drivers.append(driver)
    return worlds, drivers


def time_solo(n, backend):
    worlds, drivers = build_fleet(n, backend)
    t0 = time.process_time()
    for _ in range(FRAMES):
        for world, drive in zip(worlds, drivers):
            for _ in range(world.config.substeps_per_frame):
                if drive is not None:
                    drive()
                world.step()
            world.frame_index += 1
    return time.process_time() - t0, worlds


def time_batch(n):
    worlds, drivers = build_fleet(n, "numpy")
    batch = BatchWorld(worlds)
    t0 = time.process_time()
    for _ in range(FRAMES):
        batch.step_frame(drivers)
    return time.process_time() - t0, worlds


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    print(f"{n} ragdoll worlds x {FRAMES} frames (scale={SCALE})\n")

    t_scalar, _ = time_solo(n, "scalar")
    t_numpy, solo_worlds = time_solo(n, "numpy")
    t_batch, batch_worlds = time_batch(n)

    per = 1000.0 / (FRAMES * n)
    print(f"scalar, one by one : {t_scalar * per:8.3f} ms/world-frame")
    print(f"numpy,  one by one : {t_numpy * per:8.3f} ms/world-frame"
          f"  (x{t_scalar / t_numpy:.2f})")
    print(f"numpy,  BatchWorld : {t_batch * per:8.3f} ms/world-frame"
          f"  (x{t_scalar / t_batch:.2f})")

    # Packing is free correctness-wise: every world matches its solo run.
    rec_a = TrajectoryRecorder(solo_worlds[0])
    rec_b = TrajectoryRecorder(batch_worlds[0])
    rec_a.snapshot()
    rec_b.snapshot()
    div = trajectory_divergence(rec_a, rec_b)
    print(f"\nbatch vs solo divergence (world 0): {div}")


if __name__ == "__main__":
    main()
