"""§8.2.1 — area estimates and flexible-vs-static arbitration."""

from conftest import run_once

from repro.analysis.experiments import area_table
from repro.arch.area import area_mm2


def test_area_and_static_overhead(runs, benchmark, save_result):
    data, text = run_once(benchmark, area_table)
    save_result("area", text)
    # Paper §8.2.1 core-pool areas (our constants are derived from these
    # totals, so they must reproduce exactly at the paper's counts).
    assert abs(area_mm2("desktop", 30) - 1388) < 15
    assert abs(area_mm2("console", 43) - 926) < 10
    assert abs(area_mm2("shader", 150) - 591) < 6
    # Pools ordered by total area: shader cheapest despite most cores.
    assert data["shader"] < data["console"] < data["desktop"]
    # Static mapping wastes a significant fraction of FG cores under a
    # skewed load (paper: +34% for shaders).
    assert data["static_mapping_overhead"] >= 0.2
