"""Engine micro-benchmarks: wall-clock cost of the core kernels.

These time the Python implementation itself (pytest-benchmark statistics),
complementing the modeled-cycles experiments.
"""

from repro.collision import SweepAndPrune, collide
from repro.collision.geom import Geom
from repro.cloth import Cloth
from repro.dynamics import Body, solve_island
from repro.dynamics.joints import ContactJoint
from repro.engine import World
from repro.geometry import Box, Plane, Sphere
from repro.math3d import Vec3
from repro.workloads import get_benchmark


def _sphere_geom(x, y, z, r=0.5):
    body = Body(position=Vec3(x, y, z))
    body.set_mass_from_shape(Sphere(r), 1.0)
    return Geom(Sphere(r), body=body)


def test_bench_broadphase_sap(benchmark):
    geoms = [
        _sphere_geom((i % 20) * 0.9, (i // 20) * 0.9, 0.0)
        for i in range(200)
    ]
    bp = SweepAndPrune()
    pairs = benchmark(bp.pairs, geoms)
    assert pairs


def test_bench_narrowphase_box_box(benchmark):
    a = Body(position=Vec3(0, 0, 0))
    ga = Geom(Box(Vec3(0.5, 0.5, 0.5)), body=a)
    a.set_mass_from_shape(ga.shape, 1.0)
    b = Body(position=Vec3(0.8, 0.2, 0.1))
    gb = Geom(Box(Vec3(0.5, 0.5, 0.5)), body=b)
    b.set_mass_from_shape(gb.shape, 1.0)
    contacts = benchmark(collide, ga, gb)
    assert contacts


def test_bench_solver_iteration(benchmark):
    # A 10-body pile: rows from real contacts, solved repeatedly.
    w = World()
    w.add_static_geom(Plane(Vec3(0, 1, 0)))
    for i in range(10):
        b = Body(position=Vec3((i % 3) * 0.4, 0.4 + 0.45 * i, 0))
        w.attach(b, Sphere(0.3))
    for _ in range(30):
        w.step()
    pairs = w.broadphase.pairs(w.geoms)
    joints = [
        ContactJoint(c)
        for ga, gb in pairs
        for c in collide(ga, gb)
    ]
    rows = []
    for j in joints:
        rows.extend(j.begin_step(0.01, 0.2))
    assert rows
    stats = benchmark(solve_island, rows, 20)
    assert stats.row_updates == 20 * len(rows)


def test_bench_cloth_step(benchmark):
    cloth = Cloth(25, 25, 0.1, Vec3(0, 3, 0), pin_top_row=True)
    stats = benchmark(cloth.step, 0.01, Vec3(0, -9.81, 0))
    assert stats["vertices"] == 625


def test_bench_world_step_ragdoll(benchmark):
    world, _ = get_benchmark("ragdoll").build(scale=0.05)
    from repro.profiling.report import FrameReport

    def step():
        world.report = FrameReport(0)
        world.step()

    benchmark(step)


def test_bench_particle_step(benchmark):
    from repro.particles import ParticleSystem

    ps = ParticleSystem(capacity=5000, ground_height=0.0)
    ps.emit_burst(Vec3(0, 3, 0), 5000, speed=5.0, lifetime=100.0)
    stats = benchmark(ps.step, 0.01, Vec3(0, -9.81, 0))
    assert stats["particles"] == 5000


def test_bench_raycast_world(benchmark):
    import random

    from repro.collision.raycast import raycast_world

    w = World()
    rng = random.Random(2)
    for _ in range(100):
        b = Body(position=Vec3(rng.uniform(-20, 20), rng.uniform(0, 10),
                               rng.uniform(-20, 20)))
        w.attach(b, Sphere(0.5))
    hit = benchmark(
        raycast_world, w, Vec3(-30, 5, 0), Vec3(1, 0, 0)
    )
