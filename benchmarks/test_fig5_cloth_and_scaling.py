"""Figure 5 — cloth dedicated L2 and CG-core scaling."""

from conftest import run_once

from repro.analysis.experiments import fig5a, fig5b


def test_fig5a_cloth_dedicated(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig5a(runs))
    save_result("fig5a", text)
    # Only the cloth benchmarks appear.
    assert set(data) == {"deformable", "mix"}
    # Paper: cloth is insensitive to L2 scaling (vertex arrays stream).
    for name, curve in data.items():
        lo = curve[min(curve)]
        hi = curve[max(curve)]
        if lo > 0:
            assert (lo - hi) / lo < 0.4, name


def test_fig5b_cg_core_scaling(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig5b(runs))
    save_result("fig5b", text)
    for name, per_cores in data.items():
        # More cores never hurt end-to-end at 1->2->4 ...
        assert per_cores[2] <= per_cores[1] * 1.02
        assert per_cores[4] <= per_cores[2] * 1.05
    # ... but returns diminish (the paper's 53% then 29% improvements):
    # speedup from 2->4 is smaller than from 1->2 on the aggregate.
    total1 = sum(d[1] for d in data.values())
    total2 = sum(d[2] for d in data.values())
    total4 = sum(d[4] for d in data.values())
    gain12 = total1 / total2
    gain24 = total2 / total4
    assert gain12 > gain24
