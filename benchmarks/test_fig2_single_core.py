"""Figure 2 — single-core execution and serial-phase L2 scaling."""

from conftest import run_once

from repro.analysis.experiments import fig2a, fig2b
from repro.profiling.report import PHASES

MB = 1024 * 1024


def test_fig2a_breakdown(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig2a(runs))
    save_result("fig2a", text)
    # Paper shapes: every benchmark spends most time in parallel phases;
    # serial phases are a minority (avg 9%) but non-zero everywhere.
    for name, phases in data.items():
        total = sum(phases.values())
        serial = phases["broadphase"] + phases["island_creation"]
        assert 0 < serial < 0.5 * total
    # Deformable and mix are dominated by cloth among their phases.
    assert data["deformable"]["cloth"] == max(
        data["deformable"][p] for p in PHASES
    )
    # Mix is the most expensive benchmark end to end.
    totals = {n: sum(p.values()) for n, p in data.items()}
    assert totals["mix"] == max(totals.values())


def test_fig2b_serial_l2_scaling(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig2b(runs))
    save_result("fig2b", text)
    for name, curve in data.items():
        sizes = sorted(curve)
        times = [curve[s] for s in sizes]
        # Monotone non-increasing with capacity ...
        for a, b in zip(times, times[1:]):
            assert b <= a + 1e-12
        # ... and the gains saturate: the last doubling (16->32MB) buys
        # almost nothing (the paper's "realistic 32MB" plateau).
        if times[0] > 0:
            assert times[-1] >= times[-2] * 0.98 - 1e-9
