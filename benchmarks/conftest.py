"""Shared fixtures for the figure/table regeneration harness.

``REPRO_BENCH_SCALE`` (default 0.12) sets the benchmark scale: 1.0 is the
paper's entity counts (hours of pure-Python simulation — the paper's own
full-system runs took days per frame), 0.1-0.3 regenerates every shape in
minutes.  Rendered tables are written to ``results/``.
"""

import os

import pytest

from repro.workloads import run_all

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))
BENCH_FRAMES = int(os.environ.get("REPRO_BENCH_FRAMES", "3"))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def runs():
    """All eight benchmarks simulated once per session."""
    return run_all(
        scale=BENCH_SCALE,
        frames=BENCH_FRAMES,
        measure_from=max(0, BENCH_FRAMES - 2),
        seed=0,
    )


@pytest.fixture(scope="session")
def save_result():
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, text: str):
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print("\n" + text)

    return _save


def run_once(benchmark, fn):
    """Time an experiment driver exactly once through pytest-benchmark."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
