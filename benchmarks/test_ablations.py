"""Ablation benches for the engine's design choices.

Each ablation flips one mechanism and measures its effect on a
controlled scene: warm starting (stack convergence), auto-sleep (solver
work), continuous collision (tunneling), and broadphase strategy
(pair-test counts).  These are the engineering choices DESIGN.md calls
out.  The scenes themselves live in :mod:`repro.ablation.studies` —
shared with ``python -m repro.analysis``, which regenerates the same
``results/ablation_*.txt`` artifacts — and each test here asserts its
mechanism is load-bearing.
"""

from conftest import run_once

from repro.ablation.studies import (
    autosleep_study,
    broadphase_study,
    ccd_study,
    warmstart_study,
)


def test_ablation_warm_starting(benchmark, save_result):
    rows, text = run_once(benchmark, warmstart_study)
    save_result("ablation_warmstart", text)
    # Warm starting must not hurt, and must help at low iteration counts.
    lowest = rows[0]
    assert float(lowest[2]) <= float(lowest[1]) + 1e-6


def test_ablation_auto_sleep(benchmark, save_result):
    rows, text = run_once(benchmark, autosleep_study)
    save_result("ablation_autosleep", text)
    (_, awake), (_, asleep) = rows
    assert asleep < awake * 0.5  # sleeping islands skip the solver


def test_ablation_ccd(benchmark, save_result):
    rows, text = run_once(benchmark, ccd_study)
    save_result("ablation_ccd", text)
    assert all(r[2] == "stopped" for r in rows)
    assert any(r[1] == "TUNNELED" for r in rows)  # CCD is load-bearing


def test_ablation_broadphase_strategies(benchmark, save_result):
    # broadphase_study raises AssertionError itself if SAP or the
    # spatial hash ever disagrees with the brute-force oracle.
    rows, text = run_once(benchmark, broadphase_study)
    save_result("ablation_broadphase", text)
    brute, sap, _hash = rows
    assert sap[1] < brute[1] * 0.5  # SAP prunes most pair tests
