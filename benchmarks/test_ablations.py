"""Ablation benches for the engine's design choices.

Each ablation flips one mechanism and measures its effect on a controlled
scene: warm starting (stack convergence), auto-sleep (solver work),
continuous collision (tunneling), and broadphase strategy (pair-test
counts).  These are the engineering choices DESIGN.md calls out.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.collision import (
    BruteForceBroadphase,
    SpatialHashBroadphase,
    SweepAndPrune,
)
from repro.collision.geom import Geom
from repro.dynamics import Body
from repro.engine import World, WorldConfig
from repro.geometry import Box, Plane, Sphere
from repro.math3d import Transform, Vec3


def _ground(**cfg):
    w = World(WorldConfig(**cfg))
    w.add_static_geom(Plane(Vec3(0, 1, 0), 0.0))
    return w


def _stack_error(warm, iterations, steps=200, height=6):
    w = _ground(warm_starting=warm, solver_iterations=iterations)
    boxes = []
    for i in range(height):
        b = Body(position=Vec3(0, 0.5 + 1.001 * i, 0))
        w.attach(b, Box.from_dimensions(1, 1, 1))
        boxes.append(b)
    for _ in range(steps):
        w.step()
    return max(abs(b.position.y - (0.5 + i)) for i, b in enumerate(boxes))


def test_ablation_warm_starting(benchmark, save_result):
    def run():
        rows = []
        for iters in (4, 8, 20):
            cold = _stack_error(False, iters)
            warm = _stack_error(True, iters)
            rows.append((iters, f"{cold:.3f}", f"{warm:.3f}"))
        return rows

    rows = run_once(benchmark, run)
    text = format_table(
        ("solver iterations", "cold-start error (m)", "warm-start error (m)"),
        rows, "ablation — contact warm starting vs stack drift",
    )
    save_result("ablation_warmstart", text)
    # Warm starting must not hurt, and must help at low iteration counts.
    lowest = rows[0]
    assert float(lowest[2]) <= float(lowest[1]) + 1e-6


def test_ablation_auto_sleep(benchmark, save_result):
    def run(auto_sleep):
        w = _ground(auto_sleep=auto_sleep)
        for i in range(12):
            b = Body(position=Vec3((i % 4) * 1.2, 0.5, (i // 4) * 1.2))
            w.attach(b, Box.from_dimensions(1, 1, 1))
        total_updates = 0
        for f in range(100):
            w.report = None
            rep = w.step_frame()
            total_updates += rep["island_processing"].get("row_updates")
        return total_updates

    awake = run(False)
    asleep = run_once(benchmark, lambda: run(True))
    text = format_table(
        ("config", "solver row updates (100 frames)"),
        [("always awake", int(awake)), ("auto-sleep", int(asleep))],
        "ablation — auto-sleep solver work on a quiescent scene",
    )
    save_result("ablation_autosleep", text)
    assert asleep < awake * 0.5  # sleeping islands skip the solver


def test_ablation_ccd(benchmark, save_result):
    def tunnel_test(speed, use_ccd):
        import repro.collision.ccd as ccd_mod

        w = World()
        w.config.gravity = Vec3.zero()
        w.add_static_geom(
            Box(Vec3(0.1, 2.0, 2.0)), offset=Transform(Vec3(5.0, 2.0, 0))
        )
        bullet = Body(position=Vec3(0, 2.0, 0))
        w.attach(bullet, Sphere(0.2), density=8000.0)
        bullet.linear_velocity = Vec3(speed, 0, 0)
        old = ccd_mod.CCD_MOTION_THRESHOLD
        if not use_ccd:
            ccd_mod.CCD_MOTION_THRESHOLD = 1e9  # effectively off
        try:
            for _ in range(40):
                w.step()
        finally:
            ccd_mod.CCD_MOTION_THRESHOLD = old
        return bullet.position.x < 5.0  # stopped by the wall?

    def run():
        rows = []
        # 144/288 m/s step exactly over the wall's 0.6m collision window
        # at discrete 0.01s sampling; 30 m/s cannot skip it.
        for speed in (30.0, 144.0, 288.0):
            rows.append(
                (
                    f"{speed:.0f} m/s",
                    "stopped" if tunnel_test(speed, False) else "TUNNELED",
                    "stopped" if tunnel_test(speed, True) else "TUNNELED",
                )
            )
        return rows

    rows = run_once(benchmark, run)
    text = format_table(
        ("projectile speed", "without CCD", "with CCD"),
        rows, "ablation — continuous collision detection",
    )
    save_result("ablation_ccd", text)
    assert all(r[2] == "stopped" for r in rows)
    assert any(r[1] == "TUNNELED" for r in rows)  # CCD is load-bearing


def test_ablation_broadphase_strategies(benchmark, save_result):
    import random

    rng = random.Random(5)
    geoms = []
    for _ in range(300):
        b = Body(
            position=Vec3(
                rng.uniform(-25, 25), rng.uniform(0, 8), rng.uniform(-25, 25)
            )
        )
        b.set_mass_from_shape(Sphere(0.5), 1.0)
        geoms.append(Geom(Sphere(0.5), body=b))

    def run():
        rows = []
        oracle = None
        for name, bp in (
            ("brute-force", BruteForceBroadphase()),
            ("sweep-and-prune", SweepAndPrune()),
            ("spatial-hash", SpatialHashBroadphase(cell_size=2.0)),
        ):
            pairs = bp.pairs(geoms)
            if oracle is None:
                oracle = {(a.gid, b.gid) for a, b in pairs}
            assert {(a.gid, b.gid) for a, b in pairs} == oracle
            rows.append((name, bp.last_stats["tests"], len(pairs)))
        return rows

    rows = run_once(benchmark, run)
    text = format_table(
        ("strategy", "AABB tests", "pairs"),
        rows, "ablation — broadphase strategies (300 spheres)",
    )
    save_result("ablation_broadphase", text)
    brute, sap, _hash = rows
    assert sap[1] < brute[1] * 0.5  # SAP prunes most pair tests
