"""Figure 10 — FG core IPC and the number of cores needed for 30 FPS."""

from conftest import run_once

from repro.analysis.experiments import fig10a, fig10b


def test_fig10a_ipc(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig10a(runs))
    save_result("fig10a", text)
    # Paper shapes: island has bursty ILP (limit > 3, scales with window);
    # narrowphase is branch-bound (limit gains little over desktop);
    # shader is the slowest everywhere.
    assert data["limit"]["island"] > 3.0
    assert data["limit"]["island"] > data["desktop"]["island"]
    assert data["desktop"]["island"] > data["console"]["island"]
    assert data["limit"]["narrowphase"] < data["desktop"]["narrowphase"] * 1.25
    for kernel in ("narrowphase", "island", "cloth"):
        assert data["shader"][kernel] == min(
            data[d][kernel] for d in data
        )


def test_fig10b_cores_required(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig10b(runs))
    save_result("fig10b", text)
    # Paper: simpler cores need more copies (desktop < console < shader
    # at every budget), and tighter budgets need more cores.
    for budget in (1.0, 0.25, 0.32):
        assert (
            data["desktop"][budget]
            <= data["console"][budget]
            <= data["shader"][budget]
        )
    for design in data:
        assert data[design][0.125] >= data[design][1.0]
    # Area ordering reverses the core-count ordering: the shader pool is
    # the cheapest way to buy the 30 FPS throughput (paper §8.2.1).
    from repro.arch.area import fg_pool_area

    budget = 0.32
    areas = {
        d: fg_pool_area(d if d != "limit" else "desktop", data[d][budget])
        for d in data
    }
    assert areas["shader"] == min(areas.values())
