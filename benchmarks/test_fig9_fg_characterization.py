"""Figure 9 + §8.1.2 — FG computation characterization."""

from conftest import run_once

from repro.analysis.experiments import fig9a, fig9b, kernel_footprints


def test_fig9a_cg_fg_decomposition(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig9a(runs))
    save_result("fig9a", text)
    one, four = data["1P"], data["4P"]
    # Paper: serial time barely changes with cores, CG-parallel and FG
    # components shrink going 1P -> 4P.
    assert four["serial"] <= one["serial"] * 1.1
    assert four["fg"] < one["fg"]
    assert four["cg_parallel"] <= one["cg_parallel"] * 1.1
    # FG-eligible work dominates the parallel phases.
    assert one["fg"] > one["cg_parallel"]


def test_fig9b_kernel_mix(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig9b(runs))
    save_result("fig9b", text)
    # Paper Fig 9(b): narrowphase ~8% branches, few FP adds/mults; island
    # and cloth carry ~30% FP data-flow.
    assert abs(data["narrowphase"]["branch"] - 0.08) < 0.03
    nf = data["narrowphase"]["float_add"] + data["narrowphase"]["float_mult"]
    assert nf < 0.10
    for kernel in ("island", "cloth"):
        fp = data[kernel]["float_add"] + data[kernel]["float_mult"]
        assert fp > 0.25


def test_kernel_footprints(runs, benchmark, save_result):
    data, text = run_once(benchmark, kernel_footprints)
    save_result("kernel_footprints", text)
    # Paper §8.1.2: largest kernel ~1.1KB of 32-bit code; all three fit
    # in 2.7KB.
    assert data["narrowphase"]["code_bytes_32bit"] <= 1.2 * 1024
    assert data["all_kernels_code_bytes_32bit"] <= 2.8 * 1024
    assert data["narrowphase"]["read_bytes_per_100"] == 1668
