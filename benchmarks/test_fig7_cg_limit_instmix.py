"""Figure 7 — the CG-parallelism limit and phase instruction mixes."""

from conftest import run_once

from repro.analysis.experiments import fig7a, fig7b
from repro.profiling.tasks import cg_speedup


def test_fig7a_cg_limit(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig7a(runs))
    save_result("fig7a", text)
    # Paper: even with unlimited ideal cores, Deformable and Mix keep a
    # large residual in Island Processing + Cloth because the largest
    # island/cloth bounds CG scaling.
    residual = {n: d["island_processing"] + d["cloth"] for n, d in data.items()}
    assert residual["mix"] > residual["ragdoll"]
    assert residual["deformable"] > residual["continuous"]
    # The bound really is the largest CG unit: ideal speedup of cloth on
    # deformable is tiny (one 625-vertex drape dominates).
    s = cg_speedup(runs["deformable"].measured, "cloth", 10_000)
    per_step = runs["deformable"].measured["cloth"].per_step_cg_tasks()
    biggest_share = max(
        (max(ts) / sum(ts)) for ts in per_step if ts
    )
    assert s <= 1.0 / biggest_share + 1e-6


def test_fig7b_phase_mix(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig7b(runs))
    save_result("fig7b", text)
    # Paper: serial phases + narrowphase integer dominant with branches;
    # island processing and cloth FP dominant.
    for phase in ("broadphase", "island_creation", "narrowphase"):
        fp = data[phase]["float_add"] + data[phase]["float_mult"]
        assert fp < 0.2
        assert data[phase]["branch"] >= 0.1
    for phase in ("island_processing", "cloth"):
        fp = data[phase]["float_add"] + data[phase]["float_mult"]
        assert fp > 0.25
