"""Table 7, Figure 11, §8.2.2 — interconnect latency hiding."""

import math

from conftest import run_once

from repro.analysis.experiments import fig11, offchip_filtering, table7
from repro.profiling.report import PARALLEL_PHASES


def test_table7_tasks_to_hide(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: table7(runs))
    save_result("table7", text)
    # Paper shapes: hiding an off-chip link needs (weakly) more parallel
    # tasks than the on-chip mesh, and PCIe needs the most (or is
    # impossible) for every design and kernel.
    for design in data:
        for phase in PARALLEL_PHASES:
            on = data[design]["onchip"][phase]
            htx = data[design]["htx"][phase]
            pcie = data[design]["pcie"][phase]
            assert on <= htx <= pcie
        # On-chip hiding is always feasible.
        assert all(
            not math.isinf(data[design]["onchip"][p])
            for p in PARALLEL_PHASES
        )


def test_fig11_available_tasks(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig11(runs))
    save_result("fig11", text)
    # Narrowphase availability tracks object-pair counts: the pair-heavy
    # benchmarks expose the most FG tasks.
    pairs = {n: d["narrowphase"] for n, d in data.items()}
    assert pairs["mix"] > pairs["ragdoll"]
    # Only the cloth benchmarks expose cloth tasks; the large drape
    # dominates their availability.
    assert data["deformable"]["cloth"] > 0
    assert data["mix"]["cloth"] > 0
    assert data["highspeed"]["cloth"] == 0


def test_offchip_filtering(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: offchip_filtering(runs))
    save_result("offchip", text)
    # Paper §8.2.2: moving off-chip can only reduce the share of FG work
    # whose communication is hidden; PCIe is the worst.
    for phase in PARALLEL_PHASES:
        assert data["htx"][phase] <= data["onchip"][phase] + 1e-9
        assert data["pcie"][phase] <= data["htx"][phase] + 1e-9
