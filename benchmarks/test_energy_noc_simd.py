"""Energy, NoC-topology, and SIMD extension benches."""

from conftest import run_once

from repro.analysis.extensions import (
    energy_comparison,
    noc_sensitivity,
    simd_ablation,
)


def test_energy_comparison(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: energy_comparison(runs))
    save_result("energy", text)
    # The shader pool's area win (§8.2.1) extends to energy and EDP.
    assert data["shader"]["dynamic_j"] == min(
        d["dynamic_j"] for d in data.values()
    )
    assert data["shader"]["edp"] == min(d["edp"] for d in data.values())
    assert data["desktop"]["total_j"] > data["console"]["total_j"]


def test_noc_topology(runs, benchmark, save_result):
    data, text = run_once(benchmark, noc_sensitivity)
    save_result("noc", text)
    # Paper §7.2: the torus is slightly better in latency; both contend
    # under a hotspot.
    assert data["torus"]["avg_latency"] <= data["mesh"]["avg_latency"]
    assert data["mesh"]["hotspot_slowdown"] > 1.2


def test_simd_remark(runs, benchmark, save_result):
    data, text = run_once(benchmark, simd_ablation)
    save_result("simd", text)
    # Paper §8.2: island (bursty FP) is the SIMD candidate; branchy
    # narrowphase is not.
    assert data["island"]["speedup"] > 1.0
    assert data["island"]["speedup"] >= data["narrowphase"]["speedup"]
