"""Figure 6 — four-core execution and the thread-scaling L2-miss blowup."""

from conftest import run_once

from repro.analysis.experiments import fig2a, fig6a, fig6b


def test_fig6a_four_core_breakdown(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig6a(runs))
    save_result("fig6a", text)
    # Against the 1-core/1MB baseline, the partitioned 12MB 4-core config
    # improves every benchmark's frame time (the paper's ~3x).
    base, _ = fig2a(runs)
    for name in data:
        t4 = sum(data[name].values())
        t1 = sum(base[name].values())
        assert t4 < t1


def test_fig6b_miss_blowup(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig6b(runs))
    save_result("fig6b", text)
    # Paper: scaling 4 -> 8 threads explodes L2 misses, mostly kernel
    # accesses from the per-thread OS memory jump (850KB -> 5MB).
    total = {
        t: v["user"] + v["kernel"] for t, v in data.items()
    }
    assert total[8] > total[4]
    assert data[8]["kernel"] > data[4]["kernel"] * 2
    # Kernel misses are the majority of the 8-thread increase.
    increase = total[8] - total[4]
    kernel_increase = data[8]["kernel"] - data[4]["kernel"]
    assert kernel_increase > 0.5 * increase
