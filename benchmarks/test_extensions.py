"""Extension experiments: Model 2, dispatch protocol, prefetch, way
partitioning — the paper's §8.3, §7.3 and §6.2 future-work threads."""

from conftest import run_once

from repro.analysis.extensions import (
    model2_feasibility,
    prefetch_study,
    protocol_overhead,
    waypart_validation,
)
from repro.arch.model2 import paper_example_seconds


def test_model2_discrete_accelerator(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: model2_feasibility(runs))
    save_result("model2", text)
    # Every benchmark's frame-boundary traffic is a trivial share of the
    # 33ms frame — the paper's argument for PhysX-style accelerators.
    for name, d in data.items():
        assert d["feasible"], name
        assert d["frame_budget_fraction"] < 0.05
    # The paper's worked example lands at ~0.00006s.
    assert abs(paper_example_seconds() - 6e-5) / 6e-5 < 0.2


def test_protocol_overhead(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: protocol_overhead(runs))
    save_result("protocol", text)
    for kernel, d in data.items():
        # Batching 100 iterations keeps header overhead small ...
        assert d["overhead_batched"] < 0.15
        # ... while per-iteration dispatch would drown in headers.
        assert d["overhead_single"] > 0.3


def test_prefetch_future_work(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: prefetch_study(runs))
    save_result("prefetch", text)
    # The solver's linear island sweeps prefetch nearly perfectly; the
    # pointer-heavy broadphase benefits least.
    assert data["island_processing"]["coverage"] > 0.6
    assert (
        data["broadphase"]["coverage"]
        <= data["island_processing"]["coverage"]
    )


def test_waypart_model_validation(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: waypart_validation(runs))
    save_result("waypart", text)
    # The stack-distance partition model must closely track the exact
    # way-partitioned simulator on the serial phases.
    for phase, d in data.items():
        assert d["relative_error"] < 0.15, phase
