"""Figures 3 and 4 — per-phase dedicated-L2 scaling."""

from conftest import run_once

from repro.analysis.experiments import fig3a, fig3b, fig4a, fig4b

MB = 1024 * 1024


def _assert_monotone_saturating(data):
    for name, curve in data.items():
        sizes = sorted(curve)
        times = [curve[s] for s in sizes]
        for a, b in zip(times, times[1:]):
            assert b <= a + 1e-12, name
    return True


def test_fig3a_broadphase_dedicated(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig3a(runs))
    save_result("fig3a", text)
    _assert_monotone_saturating(data)


def test_fig3b_narrowphase_dedicated(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig3b(runs))
    save_result("fig3b", text)
    _assert_monotone_saturating(data)
    # Paper: the pair-heavy benchmarks (explosions, highspeed) are the
    # most L2-sensitive in narrowphase.
    def sensitivity(name):
        curve = data[name]
        lo, hi = curve[min(curve)], curve[max(curve)]
        return (lo - hi) / lo if lo > 0 else 0.0

    heavy = max(sensitivity("explosions"), sensitivity("highspeed"),
                sensitivity("mix"))
    light = sensitivity("ragdoll")
    assert heavy >= light - 1e-9


def test_fig4a_island_creation_dedicated(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig4a(runs))
    save_result("fig4a", text)
    _assert_monotone_saturating(data)


def test_fig4b_island_processing_dedicated(runs, benchmark, save_result):
    data, text = run_once(benchmark, lambda: fig4b(runs))
    save_result("fig4b", text)
    _assert_monotone_saturating(data)
    # Paper: Island Processing is relatively insensitive to L2 size — the
    # solver re-sweeps a compact working set every iteration.
    for name, curve in data.items():
        lo, hi = curve[min(curve)], curve[max(curve)]
        if lo > 0:
            assert (lo - hi) / lo < 0.5, name
