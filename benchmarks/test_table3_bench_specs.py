"""Tables 3 and 4 — benchmark instruction counts and scene statistics."""

from conftest import run_once

from repro.analysis.tables import (
    PAPER_TABLE4,
    table3,
    table4,
)


def test_table3_instructions_per_frame(runs, benchmark, save_result):
    text = run_once(benchmark, lambda: table3(runs))
    save_result("table3", text)
    # Shape check: the heavy benchmarks must dominate the light ones, as
    # in the paper's ordering (mix is the heaviest; periodic/ragdoll/
    # continuous are the light third).
    inst = {name: run.total_instructions() for name, run in runs.items()}
    light = max(inst["periodic"], inst["ragdoll"], inst["continuous"])
    assert inst["mix"] == max(inst.values())
    assert inst["mix"] > 2.5 * light
    for heavy in ("breakable", "explosions", "highspeed", "deformable"):
        assert inst[heavy] > light * 0.9


def test_table4_scene_statistics(runs, benchmark, save_result):
    text = run_once(benchmark, lambda: table4(runs))
    save_result("table4", text)
    stats = {name: run.table4_row() for name, run in runs.items()}
    # Paper-shape checks that survive scaling:
    # the high-object benchmarks have the most pairs ...
    assert stats["mix"]["object_pairs"] > stats["ragdoll"]["object_pairs"]
    # ... deformable and mix are the only cloth benchmarks ...
    for name in PAPER_TABLE4:
        has_cloth = PAPER_TABLE4[name]["cloth_vertices"] > 0
        assert (stats[name]["cloth_vertices"] > 0) == has_cloth
    # ... and only breakable/mix carry prefractured debris.
    assert stats["breakable"]["prefractured"] > 0
    assert stats["mix"]["prefractured"] > 0
    assert stats["explosions"]["prefractured"] == 0
