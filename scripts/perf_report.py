#!/usr/bin/env python
"""Emit a machine-readable performance snapshot (BENCH_5.json).

Times the engine's core kernels with ``time.perf_counter`` and records
the per-phase modeled frame breakdown at smoke scale, so CI runs leave
a comparable artifact:

    PYTHONPATH=src python scripts/perf_report.py --out BENCH_5.json

``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_FRAMES`` control the workload
size exactly as they do for the benchmark suite.
"""

import argparse
import json
import os
import platform
import sys
import time


def _time(fn, *args, repeat=5):
    """Best-of-N wall-clock seconds for one call."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def engine_microbench():
    from repro.cloth import Cloth
    from repro.collision import SweepAndPrune, collide
    from repro.collision.geom import Geom
    from repro.dynamics import Body, solve_island
    from repro.dynamics.joints import ContactJoint
    from repro.engine import World
    from repro.geometry import Box, Plane, Sphere
    from repro.math3d import Vec3
    from repro.particles import ParticleSystem

    out = {}

    geoms = []
    for i in range(200):
        body = Body(position=Vec3((i % 20) * 0.9, (i // 20) * 0.9, 0.0))
        body.set_mass_from_shape(Sphere(0.5), 1.0)
        geoms.append(Geom(Sphere(0.5), body=body))
    bp = SweepAndPrune()
    out["broadphase_sap_200"] = _time(bp.pairs, geoms)

    a = Body(position=Vec3(0, 0, 0))
    ga = Geom(Box(Vec3(0.5, 0.5, 0.5)), body=a)
    b = Body(position=Vec3(0.8, 0.2, 0.1))
    gb = Geom(Box(Vec3(0.5, 0.5, 0.5)), body=b)
    out["narrowphase_box_box"] = _time(collide, ga, gb)

    w = World()
    w.add_static_geom(Plane(Vec3(0, 1, 0)))
    for i in range(10):
        body = Body(position=Vec3((i % 3) * 0.4, 0.4 + 0.45 * i, 0))
        w.attach(body, Sphere(0.3))
    for _ in range(30):
        w.step()
    rows = []
    for ga, gb in w.broadphase.pairs(w.geoms):
        for c in collide(ga, gb):
            rows.extend(ContactJoint(c).begin_step(0.01, 0.2))
    out["solver_20_iters"] = _time(solve_island, rows, 20)

    cloth = Cloth(25, 25, 0.1, Vec3(0, 3, 0), pin_top_row=True)
    out["cloth_step_625v"] = _time(cloth.step, 0.01, Vec3(0, -9.81, 0))

    ps = ParticleSystem(capacity=5000, ground_height=0.0)
    ps.emit_burst(Vec3(0, 3, 0), 5000, speed=5.0, lifetime=100.0)
    out["particles_step_5000"] = _time(ps.step, 0.01, Vec3(0, -9.81, 0))
    return out


def modeled_phases(scale, frames):
    from repro.arch import L2Partitioning, ParallaxConfig, ParallaxMachine
    from repro.profiling.report import PHASES
    from repro.workloads import run_benchmark

    t0 = time.perf_counter()
    run = run_benchmark("mix", scale=scale, frames=frames,
                        measure_from=max(0, frames - 2), seed=0)
    sim_seconds = time.perf_counter() - t0

    machine = ParallaxMachine(
        ParallaxConfig(cg_cores=4, l2=L2Partitioning.paper_scheme()))
    report = run.measured
    phases = {p: machine.phase_seconds(report, p, threads=4)
              for p in PHASES}
    return {
        "benchmark": "mix",
        "scale": scale,
        "frames": frames,
        "wall_seconds": sim_seconds,
        "minst_per_frame": run.total_instructions() / 1e6,
        "modeled_phase_seconds": phases,
        "modeled_frame_seconds": machine.frame_seconds(report, threads=4),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_5.json")
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get(
                            "REPRO_BENCH_SCALE", "0.03")))
    parser.add_argument("--frames", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_FRAMES", "2")))
    args = parser.parse_args(argv)

    report = {
        "schema": "repro-perf-report/1",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "engine_microbench_seconds": engine_microbench(),
        "modeled": modeled_phases(args.scale, args.frames),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
