#!/usr/bin/env python
"""Emit a machine-readable performance snapshot.

Default mode times the engine's core kernels with ``time.perf_counter``
and records the per-phase modeled frame breakdown at smoke scale, so
CI runs leave a comparable artifact:

    PYTHONPATH=src python scripts/perf_report.py --out BENCH_5.json

``--compare-backends`` instead times every Table 3 workload on the
scalar and numpy backends plus a packed :class:`BatchWorld` fleet:

    PYTHONPATH=src python scripts/perf_report.py --compare-backends \\
        --out BENCH_6.json

``--lint`` emits the PaxLint static-analysis snapshot instead —
finding counts per rule plus suppression totals — so the lint debt of
every commit is tracked next to its performance numbers:

    PYTHONPATH=src python scripts/perf_report.py --lint \\
        --out BENCH_8.json

``--serve`` runs the sharded simulation service load test
(``repro.serve.loadtest``) at smoke scale and records throughput, p95
frame time, and the migration bit-identity verdict:

    PYTHONPATH=src python scripts/perf_report.py --serve \\
        --out BENCH_9.json

``--ablation`` runs the feature-ablation matrix (``repro.ablation``)
over the Table 3 workloads and records per-feature importance scores:

    PYTHONPATH=src python scripts/perf_report.py --ablation \\
        --out BENCH_10.json

``--all`` emits every non-serve snapshot (BENCH_5/6/8/10) in one
process under ``--out-dir`` (default ``results/bench``) — the one CI
invocation.  The gate side:

    PYTHONPATH=src python scripts/perf_report.py --check \\
        --dir fresh --trajectory results/bench/trajectory.json

compares a directory of freshly emitted BENCH files against the
committed trajectory's per-metric tolerance bands and exits nonzero on
any regression; ``--update-trajectory --dir results/bench`` rebuilds
the trajectory from the BENCH files in a directory (run it after an
intentional perf change and commit the result).

``REPRO_SERVE_SESSIONS`` / ``REPRO_SERVE_WORKERS`` /
``REPRO_SERVE_FRAMES`` size the serve run.
``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_FRAMES`` (and, for the
comparison, ``REPRO_BENCH_REPEATS`` / ``REPRO_BENCH_BATCH``) control
the workload size exactly as they do for the benchmark suite.
"""

import argparse
import json
import os
import platform
import sys
import time


def _time(fn, *args, repeat=5):
    """Best-of-N wall-clock seconds for one call."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def engine_microbench():
    from repro.cloth import Cloth
    from repro.collision import SweepAndPrune, collide
    from repro.collision.geom import Geom
    from repro.dynamics import Body, solve_island
    from repro.dynamics.joints import ContactJoint
    from repro.engine import World
    from repro.geometry import Box, Plane, Sphere
    from repro.math3d import Vec3
    from repro.particles import ParticleSystem

    out = {}

    geoms = []
    for i in range(200):
        body = Body(position=Vec3((i % 20) * 0.9, (i // 20) * 0.9, 0.0))
        body.set_mass_from_shape(Sphere(0.5), 1.0)
        geoms.append(Geom(Sphere(0.5), body=body))
    bp = SweepAndPrune()
    out["broadphase_sap_200"] = _time(bp.pairs, geoms)

    a = Body(position=Vec3(0, 0, 0))
    ga = Geom(Box(Vec3(0.5, 0.5, 0.5)), body=a)
    b = Body(position=Vec3(0.8, 0.2, 0.1))
    gb = Geom(Box(Vec3(0.5, 0.5, 0.5)), body=b)
    out["narrowphase_box_box"] = _time(collide, ga, gb)

    w = World()
    w.add_static_geom(Plane(Vec3(0, 1, 0)))
    for i in range(10):
        body = Body(position=Vec3((i % 3) * 0.4, 0.4 + 0.45 * i, 0))
        w.attach(body, Sphere(0.3))
    for _ in range(30):
        w.step()
    rows = []
    for ga, gb in w.broadphase.pairs(w.geoms):
        for c in collide(ga, gb):
            rows.extend(ContactJoint(c).begin_step(0.01, 0.2))
    out["solver_20_iters"] = _time(solve_island, rows, 20)

    cloth = Cloth(25, 25, 0.1, Vec3(0, 3, 0), pin_top_row=True)
    out["cloth_step_625v"] = _time(cloth.step, 0.01, Vec3(0, -9.81, 0))

    ps = ParticleSystem(capacity=5000, ground_height=0.0)
    ps.emit_burst(Vec3(0, 3, 0), 5000, speed=5.0, lifetime=100.0)
    out["particles_step_5000"] = _time(ps.step, 0.01, Vec3(0, -9.81, 0))
    return out


def modeled_phases(scale, frames):
    from repro.arch import L2Partitioning, ParallaxConfig, ParallaxMachine
    from repro.profiling.report import PHASES
    from repro.workloads import run_benchmark

    t0 = time.perf_counter()
    run = run_benchmark("mix", scale=scale, frames=frames,
                        measure_from=max(0, frames - 2), seed=0)
    sim_seconds = time.perf_counter() - t0

    machine = ParallaxMachine(
        ParallaxConfig(cg_cores=4, l2=L2Partitioning.paper_scheme()))
    report = run.measured
    phases = {p: machine.phase_seconds(report, p, threads=4)
              for p in PHASES}
    return {
        "benchmark": "mix",
        "scale": scale,
        "frames": frames,
        "wall_seconds": sim_seconds,
        "minst_per_frame": run.total_instructions() / 1e6,
        "modeled_phase_seconds": phases,
        "modeled_frame_seconds": machine.frame_seconds(report, threads=4),
    }


def backend_comparison(scale, frames, repeats, batch_n):
    """Per-workload frame times: scalar vs numpy vs BatchWorld.

    Uses ``time.process_time`` best-of-``repeats`` — wall clock on a
    shared CI box swings far more than the kernels themselves do.
    The batch column is per *world*-frame across ``batch_n`` packed
    copies of each workload.
    """
    from repro.fastpath import BatchWorld, default_backend
    from repro.profiling import FrameReport
    from repro.workloads import BENCHMARKS

    def build(name, backend, seed=0):
        with default_backend(backend):
            return BENCHMARKS[name].build(scale=scale, seed=seed)

    def run_frames(world, driver):
        for _ in range(frames):
            world.report = FrameReport(world.frame_index)
            for _ in range(world.config.substeps_per_frame):
                if driver is not None:
                    driver()
                world.step()
            world.frame_index += 1

    workloads = {}
    speedups = {"numpy": [], "batch": []}
    for name in sorted(BENCHMARKS):
        per_frame = {}
        for backend in ("scalar", "numpy"):
            best = float("inf")
            for _ in range(repeats):
                world, driver = build(name, backend)
                t0 = time.process_time()
                run_frames(world, driver)
                best = min(best, time.process_time() - t0)
            per_frame[backend] = best / frames
        best = float("inf")
        for _ in range(repeats):
            worlds, drivers = [], []
            for seed in range(batch_n):
                world, driver = build(name, "numpy", seed=seed)
                worlds.append(world)
                drivers.append(driver)
            batch = BatchWorld(worlds)
            t0 = time.process_time()
            for _ in range(frames):
                batch.step_frame(drivers)
            best = min(best, time.process_time() - t0)
        per_frame["batch"] = best / (frames * batch_n)

        numpy_x = per_frame["scalar"] / per_frame["numpy"]
        batch_x = per_frame["scalar"] / per_frame["batch"]
        speedups["numpy"].append(numpy_x)
        speedups["batch"].append(batch_x)
        workloads[name] = {
            "scalar_ms_per_frame": per_frame["scalar"] * 1e3,
            "numpy_ms_per_frame": per_frame["numpy"] * 1e3,
            "batch_ms_per_world_frame": per_frame["batch"] * 1e3,
            "numpy_speedup": numpy_x,
            "batch_speedup": batch_x,
        }
        print(f"{name:12s} scalar={per_frame['scalar'] * 1e3:8.2f}ms "
              f"numpy={per_frame['numpy'] * 1e3:8.2f}ms "
              f"batch={per_frame['batch'] * 1e3:8.2f}ms "
              f"x{numpy_x:.2f}/x{batch_x:.2f}")

    def geomean(xs):
        prod = 1.0
        for x in xs:
            prod *= x
        return prod ** (1.0 / len(xs))

    return {
        "scale": scale,
        "frames": frames,
        "repeats": repeats,
        "batch_worlds": batch_n,
        "workloads": workloads,
        "geomean_numpy_speedup": geomean(speedups["numpy"]),
        "geomean_batch_speedup": geomean(speedups["batch"]),
    }


def serve_snapshot(sessions, workers, frames):
    """Run the serve load test and fold its numbers into the report.

    Delegates to ``repro.serve.loadtest`` so the artifact matches what
    ``python -m repro.serve.loadtest`` emits, wrapped with the same
    schema/platform envelope as the other BENCH files.
    """
    import asyncio

    from repro.serve.loadtest import build_parser, run_loadtest

    opts = build_parser().parse_args([
        "--sessions", str(sessions), "--workers", str(workers),
        "--frames", str(frames)])
    report = asyncio.run(run_loadtest(opts))
    summary = report["frame_time_summary"]
    print(f"serve: {sessions} sessions / {workers} workers "
          f"{report['throughput_fps']:.1f} fps "
          f"p95={summary['p95_s'] * 1e3:.2f}ms "
          f"migration_divergence={report['migration']['divergence']}")
    return report


def lint_snapshot():
    """Run PaxLint over src/repro and summarize the result."""
    import time as _time

    from repro.lint import all_rules, lint_paths

    root = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src", "repro")
    t0 = _time.perf_counter()
    result = lint_paths([root])
    seconds = _time.perf_counter() - t0

    def by_rule(findings):
        counts = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    return {
        "files": result.files,
        "rules": [r.code for r in all_rules()],
        "wall_seconds": seconds,
        "new_findings": len(result.active),
        "baselined_findings": len(result.baselined),
        "suppressed_findings": len(result.suppressed),
        "new_by_rule": by_rule(result.active),
        "suppressed_by_rule": by_rule(result.suppressed),
        "exit_code": result.exit_code,
    }


def ablation_snapshot(scale, frames, jobs=None):
    """Run the feature-ablation matrix (``repro.ablation``)."""
    from repro.ablation import AblationConfig, AblationRunner

    config = AblationConfig(scale=scale, frames=frames, jobs=jobs)
    payload = AblationRunner(config).run(
        progress=lambda msg: print(msg, flush=True))
    for name, feature in sorted(payload["features"].items()):
        summary = feature["summary"]
        print(f"{name:16s} dfps {summary['mean_delta_fps_pct']:+7.1f}% "
              f"importance {summary['importance']:.3f} "
              f"{'OK' if summary['all_validate_ok'] else 'INVALID'}")
    return payload


def _envelope(section, body):
    schemas = {
        "engine": "repro-perf-report/1",
        "comparison": "repro-backend-comparison/1",
        "lint": "repro-lint-report/1",
        "serve": "repro-serve-loadtest/1",
        "ablation": "repro-ablation-report/1",
    }
    report = {
        "schema": schemas[section],
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if section == "engine":
        report.update(body)
    else:
        report[section] = body
    return report


def check_trajectory(trajectory_path, directory, update=False):
    """Gate (or rebuild) the committed trajectory; returns exit code."""
    from repro.ablation import trajectory as traj

    if update:
        doc = traj.build_trajectory(directory, settings={
            "scale": os.environ.get("REPRO_BENCH_SCALE", "0.03"),
            "frames": os.environ.get("REPRO_BENCH_FRAMES", "2"),
        })
        traj.save(doc, trajectory_path)
        print(f"wrote {trajectory_path} "
              f"({len(doc['metrics'])} metrics from "
              f"{', '.join(doc['sources'])})")
        return 0

    doc = traj.load(trajectory_path)
    results = traj.check_directory(doc, directory)
    failures = [r for r in results if not r.ok]
    for r in results:
        status = "PASS" if r.ok else "FAIL"
        print(f"{status} {r.id}: {r.detail}")
    print(f"perf-gate: {len(results) - len(failures)}/{len(results)} "
          f"metrics within tolerance"
          + (f", {len(failures)} REGRESSED" if failures else ""))
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="output path for a single-mode run "
                             "(overrides --out-dir)")
    parser.add_argument("--out-dir", default="results/bench",
                        help="directory BENCH files land in (used by "
                             "--all, or when --out is not given)")
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get(
                            "REPRO_BENCH_SCALE", "0.03")))
    parser.add_argument("--frames", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_FRAMES", "2")))
    parser.add_argument("--compare-backends", action="store_true",
                        help="emit the scalar/numpy/BatchWorld frame-"
                             "time comparison (BENCH_6) instead of the"
                             " kernel microbench snapshot (BENCH_5)")
    parser.add_argument("--lint", action="store_true",
                        help="emit the PaxLint finding-count snapshot"
                             " (BENCH_8) instead of timings")
    parser.add_argument("--serve", action="store_true",
                        help="emit the sharded-service load-test "
                             "snapshot (BENCH_9): throughput, p95 "
                             "frame time, migration bit-identity")
    parser.add_argument("--ablation", action="store_true",
                        help="emit the feature-ablation importance "
                             "matrix (BENCH_10)")
    parser.add_argument("--all", action="store_true",
                        help="emit BENCH_5/6/8/10 in one process "
                             "under --out-dir")
    parser.add_argument("--check", action="store_true",
                        help="compare fresh BENCH files in --dir "
                             "against --trajectory; exit nonzero on "
                             "any out-of-band metric")
    parser.add_argument("--update-trajectory", action="store_true",
                        help="rebuild --trajectory from the BENCH "
                             "files in --dir")
    parser.add_argument("--dir", default="results/bench",
                        help="directory of BENCH files for --check / "
                             "--update-trajectory")
    parser.add_argument("--trajectory",
                        default="results/bench/trajectory.json")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for --ablation")
    parser.add_argument("--serve-sessions", type=int,
                        default=int(os.environ.get(
                            "REPRO_SERVE_SESSIONS", "24")))
    parser.add_argument("--serve-workers", type=int,
                        default=int(os.environ.get(
                            "REPRO_SERVE_WORKERS", "2")))
    parser.add_argument("--serve-frames", type=int,
                        default=int(os.environ.get(
                            "REPRO_SERVE_FRAMES", "6")))
    parser.add_argument("--repeats", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_REPEATS", "2")))
    parser.add_argument("--batch-n", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_BATCH", "32")))
    args = parser.parse_args(argv)

    if args.check or args.update_trajectory:
        return check_trajectory(args.trajectory, args.dir,
                                update=args.update_trajectory)

    def perf_body():
        return {"engine_microbench_seconds": engine_microbench(),
                "modeled": modeled_phases(args.scale, args.frames)}

    emitters = {
        "BENCH_5.json": ("engine", perf_body),
        "BENCH_6.json": ("comparison", lambda: backend_comparison(
            args.scale, args.frames, args.repeats, args.batch_n)),
        "BENCH_8.json": ("lint", lint_snapshot),
        "BENCH_9.json": ("serve", lambda: serve_snapshot(
            args.serve_sessions, args.serve_workers,
            args.serve_frames)),
        "BENCH_10.json": ("ablation", lambda: ablation_snapshot(
            args.scale, args.frames, args.jobs)),
    }
    if args.all:
        # Everything except serve, which CI runs in its own job with
        # event-loop isolation.
        selected = ["BENCH_5.json", "BENCH_6.json", "BENCH_8.json",
                    "BENCH_10.json"]
    elif args.serve:
        selected = ["BENCH_9.json"]
    elif args.lint:
        selected = ["BENCH_8.json"]
    elif args.compare_backends:
        selected = ["BENCH_6.json"]
    elif args.ablation:
        selected = ["BENCH_10.json"]
    else:
        selected = ["BENCH_5.json"]

    for filename in selected:
        section, build = emitters[filename]
        report = _envelope(section, build())
        if args.out and not args.all:
            out = args.out
        else:
            out = os.path.join(args.out_dir, filename)
        out_dir = os.path.dirname(out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
