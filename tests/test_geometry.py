"""AABB and shape tests."""

import math

from repro.geometry import AABB, Box, Capsule, Heightfield, Plane, Sphere
from repro.math3d import Quaternion, Transform, Vec3


class TestAABB:
    def test_overlaps_symmetric(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        b = AABB(Vec3(0.5, 0.5, 0.5), Vec3(2, 2, 2))
        c = AABB(Vec3(3, 3, 3), Vec3(4, 4, 4))
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)

    def test_touching_boxes_overlap(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        b = AABB(Vec3(1, 0, 0), Vec3(2, 1, 1))
        assert a.overlaps(b)

    def test_separated_on_one_axis_only(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        # Overlapping in x and y but not z.
        b = AABB(Vec3(0, 0, 5), Vec3(1, 1, 6))
        assert not a.overlaps(b)

    def test_contains_point(self):
        a = AABB(Vec3(-1, -1, -1), Vec3(1, 1, 1))
        assert a.contains_point(Vec3(0, 0, 0))
        assert not a.contains_point(Vec3(0, 2, 0))

    def test_merged_covers_both(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        b = AABB(Vec3(2, -3, 0), Vec3(4, 0, 1))
        m = a.merged(b)
        assert m.min == Vec3(0, -3, 0)
        assert m.max == Vec3(4, 1, 1)

    def test_expanded(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)).expanded(0.5)
        assert a.min == Vec3(-0.5, -0.5, -0.5)
        assert a.max == Vec3(1.5, 1.5, 1.5)


class TestShapes:
    def test_sphere_aabb(self):
        box = Sphere(2.0).aabb(Transform(Vec3(1, 2, 3)))
        assert box.min == Vec3(-1, 0, 1)
        assert box.max == Vec3(3, 4, 5)

    def test_box_aabb_rotation_invariant_bound(self):
        shape = Box(Vec3(1, 0.5, 0.25))
        t = Transform(Vec3(), Quaternion.from_axis_angle(Vec3(0, 0, 1),
                                                         math.pi / 4))
        box = shape.aabb(t).expanded(1e-9)  # epsilon for fp rounding
        # Every rotated corner must be inside the AABB.
        for corner in shape.corners():
            p = t.apply(corner)
            assert box.contains_point(p)

    def test_box_corners(self):
        corners = Box(Vec3(1, 2, 3)).corners()
        assert len(corners) == 8
        assert Vec3(1, 2, 3) in corners and Vec3(-1, -2, -3) in corners

    def test_plane_signed_distance(self):
        plane = Plane(Vec3(0, 1, 0), 0.0)
        assert plane.signed_distance(Vec3(0, 2, 0)) == 2.0
        assert plane.signed_distance(Vec3(5, -1, 5)) == -1.0

    def test_heightfield_sampling(self):
        # Flat field at height 2 everywhere.
        hf = Heightfield(10.0, [[2.0] * 4 for _ in range(4)])
        assert abs(hf.height_at(0.0, 0.0) - 2.0) < 1e-12
        assert abs(hf.height_at(3.3, -4.7) - 2.0) < 1e-12
        n = hf.normal_at(0.0, 0.0)
        assert n.distance_to(Vec3(0, 1, 0)) < 1e-9

    def test_heightfield_bilinear(self):
        # Ramp in x: height == x/extent scaled across samples.
        hf = Heightfield(1.0, [[0.0, 1.0], [0.0, 1.0]])
        h_mid = hf.height_at(0.0, 0.0)
        assert abs(h_mid - 0.5) < 1e-9

    def test_bounding_radius(self):
        assert Sphere(1.5).bounding_radius() == 1.5
        assert abs(Box(Vec3(1, 1, 1)).bounding_radius()
                   - math.sqrt(3.0)) < 1e-12
        assert Capsule(0.5, 2.0).bounding_radius() == 1.5
