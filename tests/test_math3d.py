"""Unit tests for the math3d primitives."""

import math

import pytest

from repro.math3d import (
    Mat3,
    Quaternion,
    Transform,
    Vec3,
    box_inertia,
    rotate_inertia,
    shape_mass_inertia,
    sphere_inertia,
)
from repro.geometry import Box, Sphere


class TestVec3:
    def test_arithmetic(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 5, 6)
        assert a + b == Vec3(5, 7, 9)
        assert b - a == Vec3(3, 3, 3)
        assert a * 2 == Vec3(2, 4, 6)
        assert -a == Vec3(-1, -2, -3)
        assert a.dot(b) == 32.0

    def test_cross_right_handed(self):
        assert Vec3(1, 0, 0).cross(Vec3(0, 1, 0)) == Vec3(0, 0, 1)
        assert Vec3(0, 1, 0).cross(Vec3(0, 0, 1)) == Vec3(1, 0, 0)

    def test_length_and_normalized(self):
        v = Vec3(3, 4, 0)
        assert v.length() == 5.0
        n = v.normalized()
        assert abs(n.length() - 1.0) < 1e-12
        # Degenerate input must not blow up.
        assert Vec3().normalized().is_finite()

    def test_any_orthonormal(self):
        for v in (Vec3(1, 0, 0), Vec3(0, 1, 0), Vec3(0.3, -2.0, 5.0)):
            o = v.any_orthonormal()
            assert abs(o.length() - 1.0) < 1e-12
            assert abs(o.dot(v)) < 1e-9


class TestQuaternion:
    def test_normalized_has_unit_norm(self):
        q = Quaternion(2.0, -3.0, 0.5, 1.25).normalized()
        assert abs(q.norm() - 1.0) < 1e-12

    def test_rotation_round_trip(self):
        q = Quaternion.from_axis_angle(Vec3(1, 2, 3).normalized(), 1.1)
        v = Vec3(0.4, -7.0, 2.5)
        back = q.rotate_inverse(q.rotate(v))
        assert back.distance_to(v) < 1e-12

    def test_axis_angle_round_trip(self):
        axis = Vec3(0, 1, 0)
        q = Quaternion.from_axis_angle(axis, math.pi / 3)
        out_axis, out_angle = q.to_axis_angle()
        assert abs(out_angle - math.pi / 3) < 1e-12
        assert out_axis.distance_to(axis) < 1e-12

    def test_rotate_matches_matrix(self):
        q = Quaternion.from_euler(yaw=0.7, pitch=-0.3, roll=1.9)
        v = Vec3(1.5, -2.0, 0.25)
        assert q.rotate(v).distance_to(q.to_mat3() * v) < 1e-12

    def test_composition(self):
        qa = Quaternion.from_axis_angle(Vec3(0, 0, 1), 0.5)
        qb = Quaternion.from_axis_angle(Vec3(1, 0, 0), -0.9)
        v = Vec3(2, 3, 4)
        assert (qa * qb).rotate(v).distance_to(qa.rotate(qb.rotate(v))) < 1e-12

    def test_integrated_stays_normalized(self):
        q = Quaternion.identity()
        for _ in range(100):
            q = q.integrated(Vec3(3.0, -5.0, 1.0), 0.01)
        assert abs(q.norm() - 1.0) < 1e-9

    def test_integrated_small_step_matches_axis_angle(self):
        omega = Vec3(0, 2.0, 0)
        q = Quaternion.identity().integrated(omega, 1e-4)
        expected = Quaternion.from_axis_angle(Vec3(0, 1, 0), 2.0 * 1e-4)
        v = Vec3(1, 0, 0)
        assert q.rotate(v).distance_to(expected.rotate(v)) < 1e-8


class TestTransform:
    def test_apply_inverse_round_trip(self):
        t = Transform(Vec3(1, 2, 3),
                      Quaternion.from_axis_angle(Vec3(0, 1, 0), 0.8))
        p = Vec3(-4, 0.5, 9)
        assert t.apply_inverse(t.apply(p)).distance_to(p) < 1e-12

    def test_apply_vector_ignores_translation(self):
        t = Transform(Vec3(100, 100, 100), Quaternion.identity())
        assert t.apply_vector(Vec3(1, 0, 0)) == Vec3(1, 0, 0)


class TestInertia:
    def test_sphere_inertia_formula(self):
        mass, inertia = sphere_inertia(0.5, 1000.0)
        expected_mass = 1000.0 * (4.0 / 3.0) * math.pi * 0.5 ** 3
        assert abs(mass - expected_mass) < 1e-9
        expected_i = 0.4 * expected_mass * 0.5 ** 2
        assert abs(inertia.m[0][0] - expected_i) < 1e-9
        # Spherical symmetry: diagonal and isotropic.
        assert inertia.m[0][0] == inertia.m[1][1] == inertia.m[2][2]
        assert inertia.m[0][1] == 0.0

    def test_box_inertia_formula(self):
        half = Vec3(0.5, 1.0, 1.5)
        mass, inertia = box_inertia(half, 2.0)
        assert abs(mass - 2.0 * 1.0 * 2.0 * 3.0) < 1e-12
        # Ixx = m/12 * (ly^2 + lz^2) with full extents.
        expected_ixx = mass / 12.0 * (2.0 ** 2 + 3.0 ** 2)
        assert abs(inertia.m[0][0] - expected_ixx) < 1e-9
        # The longest axis has the smallest moment.
        assert inertia.m[2][2] < inertia.m[1][1] < inertia.m[0][0]

    def test_shape_mass_inertia_dispatch(self):
        m_sphere, _ = shape_mass_inertia(Sphere(0.5), 1000.0)
        assert abs(m_sphere - sphere_inertia(0.5, 1000.0)[0]) < 1e-12
        m_box, _ = shape_mass_inertia(Box(Vec3(0.5, 0.5, 0.5)), 1000.0)
        assert abs(m_box - 1000.0) < 1e-9

    def test_rotate_inertia_preserves_trace(self):
        _, inertia = box_inertia(Vec3(0.2, 0.7, 0.4), 500.0)
        rot = Quaternion.from_euler(yaw=0.4, pitch=1.1, roll=-0.6).to_mat3()
        rotated = rotate_inertia(inertia, rot)
        trace = sum(inertia.m[i][i] for i in range(3))
        rotated_trace = sum(rotated.m[i][i] for i in range(3))
        assert abs(trace - rotated_trace) < 1e-9


class TestMat3:
    def test_inverse(self):
        m = Quaternion.from_euler(yaw=0.3, pitch=0.2, roll=0.1).to_mat3()
        prod = m * m.inverse()
        for i in range(3):
            for j in range(3):
                assert abs(prod.m[i][j] - (1.0 if i == j else 0.0)) < 1e-12

    def test_skew_matches_cross(self):
        a, b = Vec3(1, -2, 3), Vec3(0.5, 4, -1)
        assert (Mat3.skew(a) * b).distance_to(a.cross(b)) < 1e-12


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
