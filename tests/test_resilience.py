"""Resilience layer: checkpoint determinism and the step watchdog.

The contract under test: a :class:`WorldSnapshot` captured mid-run and
restored later replays the remaining steps *bit-identically* — same
positions, same orientations, same spawned uids — and survives a JSON
round-trip unchanged. The watchdog stays silent on healthy runs and the
pruning/joint-skip fixes hold.
"""

import math

import pytest

from repro.dynamics import Body
from repro.engine import World, WorldConfig
from repro.engine.recorder import TrajectoryRecorder, trajectory_divergence
from repro.geometry import Box, Plane, Sphere
from repro.math3d import Vec3
from repro.resilience import (
    SnapshotMismatchError,
    StepWatchdog,
    WorldSnapshot,
)
from repro.workloads import get_benchmark


def _drive(world, driver, steps):
    for _ in range(steps):
        if driver is not None:
            driver()
        world.step()


def _record(world, driver, steps):
    """Per-step full-state fingerprints (uid-inclusive: within one
    world, restore rewinds the uid counters so uids must replay too)."""
    frames = []
    for _ in range(steps):
        if driver is not None:
            driver()
        world.step()
        frame = []
        for b in world.bodies:
            p, q, v, w = (b.position, b.orientation,
                          b.linear_velocity, b.angular_velocity)
            frame.append((b.uid, b.enabled, b.sleeping,
                          p.x, p.y, p.z, q.w, q.x, q.y, q.z,
                          v.x, v.y, v.z, w.x, w.y, w.z))
        for cloth in world.cloths:
            frame.append(cloth.positions.tobytes())
        frames.append(tuple(frame))
    return frames


# Benchmarks covering every stateful subsystem: joints + breaking,
# cloth, explosions + prefracture, cannon actor, high-speed CCD.
REPLAY_BENCHMARKS = ["ragdoll", "breakable", "deformable", "explosions",
                     "highspeed", "mix"]


class TestCheckpointReplay:
    @pytest.mark.parametrize("name", REPLAY_BENCHMARKS)
    def test_restore_replays_bit_identical(self, name):
        world, driver = get_benchmark(name).build(scale=0.08, seed=5)
        _drive(world, driver, 6)
        snapshot = WorldSnapshot.capture(world)
        reference = _record(world, driver, 8)
        snapshot.restore(world)
        replay = _record(world, driver, 8)
        assert replay == reference

    def test_restore_matches_uninterrupted_run(self):
        bench = get_benchmark("explosions")
        world_a, driver_a = bench.build(scale=0.08, seed=9)
        reference = _record(world_a, driver_a, 14)

        world_b, driver_b = bench.build(scale=0.08, seed=9)
        interrupted = _record(world_b, driver_b, 6)
        snapshot = WorldSnapshot.capture(world_b)
        _drive(world_b, driver_b, 5)  # throwaway detour
        snapshot.restore(world_b)
        interrupted += _record(world_b, driver_b, 8)

        # uids differ between separately-built worlds (global counter),
        # so compare the uid-agnostic tail of each fingerprint.
        strip = [tuple(s[1:] if isinstance(s, tuple) else s
                       for s in frame) for frame in interrupted]
        strip_ref = [tuple(s[1:] if isinstance(s, tuple) else s
                           for s in frame) for frame in reference]
        assert strip == strip_ref

    def test_restored_run_spawns_identical_uids(self):
        """The uid counters rewind, so post-restore spawns (cannon
        shells, debris) get the same uids as the first pass."""
        world, driver = get_benchmark("breakable").build(scale=0.1, seed=2)
        _drive(world, driver, 4)
        snapshot = WorldSnapshot.capture(world)
        _drive(world, driver, 10)
        first_pass = [b.uid for b in world.bodies]
        snapshot.restore(world)
        _drive(world, driver, 10)
        assert [b.uid for b in world.bodies] == first_pass


class TestSnapshotSerialization:
    def _snapshot(self):
        world, driver = get_benchmark("explosions").build(scale=0.08,
                                                         seed=3)
        _drive(world, driver, 5)
        return world, driver, WorldSnapshot.capture(world)

    def test_json_round_trip_is_lossless(self):
        _, _, snapshot = self._snapshot()
        again = WorldSnapshot.from_json(snapshot.to_json())
        assert again == snapshot

    def test_json_restored_snapshot_replays_identically(self):
        world, driver, snapshot = self._snapshot()
        reference = _record(world, driver, 6)
        WorldSnapshot.from_json(snapshot.to_json()).restore(world)
        assert _record(world, driver, 6) == reference

    def test_save_load_file(self, tmp_path):
        world, driver, snapshot = self._snapshot()
        path = tmp_path / "ckpt.json"
        snapshot.save(path)
        assert WorldSnapshot.load(path) == snapshot

    def test_restore_into_wrong_world_raises(self):
        _, _, snapshot = self._snapshot()
        other, _ = get_benchmark("ragdoll").build(scale=0.1, seed=3)
        with pytest.raises(SnapshotMismatchError):
            snapshot.restore(other)

    def test_dict_payload_is_json_native(self):
        import json
        _, _, snapshot = self._snapshot()
        json.dumps(snapshot.to_dict())  # must not need a custom encoder


class TestWatchdogHealthyRun:
    def test_clean_run_records_no_incidents(self):
        world, driver = get_benchmark("periodic").build(scale=0.1, seed=1)
        guard = StepWatchdog(world)
        for _ in range(3):
            guard.step_frame(driver)
        assert len(guard.health) == 0
        assert guard.health.unrecovered == 0
        # health only attaches to the frame report when an incident
        # actually happens — clean frames carry no resilience baggage.
        assert world.report.health is None

    def test_guarded_run_matches_unguarded(self):
        """An incident-free watchdog is a bit-exact no-op."""
        bench = get_benchmark("ragdoll")
        world_a, driver_a = bench.build(scale=0.1, seed=4)
        rec_a = TrajectoryRecorder(world_a).record(4, driver_a)
        world_b, driver_b = bench.build(scale=0.1, seed=4)
        guard = StepWatchdog(world_b)
        rec_b = TrajectoryRecorder(world_b).record(4, driver_b,
                                                   stepper=guard.step)
        assert trajectory_divergence(rec_a, rec_b) == 0.0


class TestSolverResidual:
    def test_residual_reported_and_finite(self):
        world, driver = get_benchmark("periodic").build(scale=0.1, seed=1)
        _drive(world, driver, 3)
        assert math.isfinite(world.last_solver_residual)
        assert world.last_island_residuals  # (residual, uids) per island


class TestHousekeepingFixes:
    def test_inactive_explosions_pruned(self):
        world = World(WorldConfig())
        world.add_static_geom(Plane(Vec3(0, 1, 0), 0.0))
        body = Body(position=Vec3(0, 2, 0))
        world.attach(body, Sphere(0.5), density=500.0)
        world.explode(Vec3(0, 0, 0), radius=5.0, impulse=10.0,
                      duration_steps=2)
        assert world.explosions
        for _ in range(4):
            world.step()
        assert world.explosions == []

    def test_triggered_prefracture_pruned_but_registry_kept(self):
        world, driver = get_benchmark("explosions").build(scale=0.1,
                                                          seed=2)
        registry_size = len(world.prefracture_registry)
        _drive(world, driver, 35)
        assert any(pf.broken for pf in world.prefracture_registry)
        assert all(not pf.broken for pf in world.prefractured)
        assert len(world.prefracture_registry) == registry_size

    def test_joint_with_disabled_body_is_skipped(self):
        from repro.dynamics.joints import BallJoint
        world = World(WorldConfig())
        a = Body(position=Vec3(0, 5, 0))
        b = Body(position=Vec3(1, 5, 0))
        world.attach(a, Box(Vec3(0.3, 0.3, 0.3)), density=500.0)
        world.attach(b, Box(Vec3(0.3, 0.3, 0.3)), density=500.0)
        world.add_joint(BallJoint(a, b, Vec3(0.5, 5, 0)))
        b.enabled = False
        before = (a.position.x, a.position.y, a.position.z)
        world.step()
        # The joint exerted nothing: a free-falls straight down.
        assert a.position.x == before[0]
        assert a.position.z == before[2]
        assert a.position.y < before[1]
