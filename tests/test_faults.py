"""Fault injection: prove every recovery rung fires and the guarded
engine survives the ISSUE acceptance gauntlet.

All tests here carry the ``faults`` marker (run with ``-m faults``);
CI runs them as a separate step after tier-1.
"""

import pytest

from repro.resilience import (
    Fault,
    FaultSchedule,
    FAULT_KINDS,
    WatchdogConfig,
)
from repro.workloads import BENCHMARKS, run_benchmark, validate_world

pytestmark = pytest.mark.faults


def _world_is_finite(world):
    import numpy as np
    for body in world.bodies:
        if body.enabled and not body.is_finite():
            return False
    for cloth in world.cloths:
        if not np.isfinite(cloth.positions).all():
            return False
    return True


class TestFaultsTriggerAndRecover:
    @pytest.mark.parametrize("workload", ["explosions", "breakable"])
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_each_fault_recovers(self, workload, kind):
        schedule = FaultSchedule([Fault(6, kind)])
        run = run_benchmark(workload, scale=0.08, frames=10, seed=1,
                            watchdog=True, fault_schedule=schedule)
        assert run.injector.injected, "fault never landed"
        assert len(run.health) >= 1, "watchdog never triggered"
        assert run.health.unrecovered == 0
        rungs = run.health.rungs_fired()
        assert rungs and all(r in WatchdogConfig().ladder for r in rungs)
        report = validate_world(run.world, health=run.health)
        assert report.ok, report.summary()

    def test_unguarded_fault_corrupts_the_world(self):
        """The injector has teeth: without the watchdog the same fault
        leaves NaNs for the validator to find."""
        schedule = FaultSchedule([Fault(6, "nan_position")])
        run = run_benchmark("explosions", scale=0.08, frames=10, seed=1,
                            watchdog=False, fault_schedule=schedule)
        report = validate_world(run.world)
        assert not report.ok


class TestEscalationLadder:
    """Pin each rung to a fault profile that defeats the rungs below it.

    Transient faults vanish after rollback, so rung 1 always wins;
    persistent faults re-inject on every retry of the step, forcing
    escalation until a rung actually contains the damage."""

    def test_transient_fault_recovers_at_double_iterations(self):
        schedule = FaultSchedule([Fault(6, "huge_impulse")])
        run = run_benchmark("explosions", scale=0.08, frames=10, seed=1,
                            watchdog=True, fault_schedule=schedule)
        assert run.health.rungs_fired() == ["double_iterations"]

    def test_half_dt_rung_fires_when_first_offered(self):
        cfg = WatchdogConfig(ladder=("half_dt", "clamp_velocities",
                                     "quarantine"))
        schedule = FaultSchedule([Fault(6, "huge_impulse")])
        run = run_benchmark("explosions", scale=0.08, frames=10, seed=1,
                            watchdog=True, watchdog_config=cfg,
                            fault_schedule=schedule)
        assert run.health.rungs_fired() == ["half_dt"]
        assert run.health.unrecovered == 0

    def test_persistent_impulse_escalates_to_clamp(self):
        schedule = FaultSchedule([Fault(6, "huge_impulse",
                                        persistent=True)])
        run = run_benchmark("explosions", scale=0.08, frames=10, seed=1,
                            watchdog=True, fault_schedule=schedule)
        assert "clamp_velocities" in run.health.rungs_fired()
        assert run.health.unrecovered == 0

    def test_persistent_nan_escalates_to_quarantine(self):
        schedule = FaultSchedule([Fault(6, "nan_position",
                                        persistent=True)])
        run = run_benchmark("explosions", scale=0.08, frames=10, seed=1,
                            watchdog=True, fault_schedule=schedule)
        assert "quarantine" in run.health.rungs_fired()
        assert run.health.unrecovered == 0
        event = run.health.events[-1]
        assert event.quarantined_uids
        report = validate_world(run.world, health=run.health)
        assert report.ok, report.summary()


class TestDeterminism:
    def test_seeded_schedule_is_reproducible(self):
        a = FaultSchedule.seeded(42, steps=30)
        b = FaultSchedule.seeded(42, steps=30)
        assert [(f.step, f.kind) for f in a] == \
               [(f.step, f.kind) for f in b]
        c = FaultSchedule.seeded(43, steps=30)
        assert [(f.step, f.kind) for f in a] != \
               [(f.step, f.kind) for f in c]

    def test_injection_log_is_reproducible(self):
        logs = []
        for _ in range(2):
            schedule = FaultSchedule.seeded(7, steps=18, count=3)
            run = run_benchmark("explosions", scale=0.08, frames=6,
                                seed=7, watchdog=True,
                                fault_schedule=schedule)
            # uids differ across builds (global counter); compare the
            # deterministic (step, kind) stream.
            logs.append([(s, k) for s, k, _ in run.injector.injected])
        assert logs[0] == logs[1]
        assert logs[0]


class TestAcceptanceGauntlet:
    """ISSUE gate: every Table 3 workload completes 30 frames under a
    seeded fault schedule with zero uncaught exceptions and zero NaNs
    in the final state."""

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_workload_survives_seeded_faults(self, name):
        schedule = FaultSchedule.seeded(11, steps=30 * 3, count=4)
        run = run_benchmark(name, scale=0.05, frames=30, seed=11,
                            watchdog=True, fault_schedule=schedule)
        assert run.health.unrecovered == 0
        assert _world_is_finite(run.world)
        report = validate_world(run.world, health=run.health)
        assert report.non_finite_bodies == 0
        assert report.non_finite_cloth_vertices == 0
        assert report.unrecovered_incidents == 0


class TestNumpyBackendWatchdog:
    """The escalation ladder must keep firing with backend="numpy":
    the vectorized solver reports the same residuals, so divergence
    detection and recovery behave exactly as on the scalar path."""

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_each_fault_recovers_on_numpy(self, kind):
        schedule = FaultSchedule([Fault(6, kind)])
        run = run_benchmark("explosions", scale=0.08, frames=10, seed=1,
                            watchdog=True, fault_schedule=schedule,
                            backend="numpy")
        assert run.world.backend == "numpy"
        assert run.injector.injected, "fault never landed"
        assert len(run.health) >= 1, "watchdog never triggered"
        assert run.health.unrecovered == 0
        rungs = run.health.rungs_fired()
        assert rungs and all(r in WatchdogConfig().ladder for r in rungs)
        report = validate_world(run.world, health=run.health)
        assert report.ok, report.summary()

    def test_ladder_fires_identically_on_both_backends(self):
        """Same seeded gauntlet, same incident log, either backend."""
        fired = {}
        for backend in ("scalar", "numpy"):
            schedule = FaultSchedule.seeded(11, steps=10 * 3, count=3)
            run = run_benchmark("explosions", scale=0.08, frames=10,
                                seed=11, watchdog=True,
                                fault_schedule=schedule,
                                backend=backend)
            assert run.health.unrecovered == 0
            fired[backend] = run.health.rungs_fired()
        assert fired["scalar"] == fired["numpy"]
