"""World pipeline, frame reports, breakable joints, prefracture."""

from repro.engine import World, WorldConfig
from repro.dynamics import Body, FixedJoint
from repro.geometry import Box, Plane, Sphere
from repro.math3d import Vec3
from repro.profiling import PARALLEL_PHASES, PHASES


def _world_with_ground(**kwargs):
    world = World(WorldConfig(**kwargs))
    world.add_static_geom(Plane(Vec3(0, 1, 0), 0.0))
    return world


class TestWorldPipeline:
    def test_phase_names(self):
        assert PHASES == ("broadphase", "narrowphase", "island_creation",
                          "island_processing", "cloth")
        assert set(PARALLEL_PHASES) < set(PHASES)

    def test_step_frame_reports_all_phases(self):
        world = _world_with_ground()
        body = Body(position=Vec3(0, 0.4, 0))
        world.attach(body, Sphere(0.5), density=1000.0)
        report = world.step_frame()
        for phase in PHASES:
            assert phase in report
        assert report["broadphase"].get("pairs") >= 1
        assert report["narrowphase"].get("contacts") >= 1
        assert report["island_creation"].get("islands") >= 1

    def test_missing_counter_defaults_to_zero(self):
        world = _world_with_ground()
        report = world.step_frame()  # empty world: nothing to count
        assert report["broadphase"].get("pairs") == 0
        assert report["cloth"].get("vertices") == 0

    def test_substeps_per_frame(self):
        cfg = WorldConfig()
        assert cfg.dt == 0.01
        assert cfg.substeps_per_frame == 3  # 30 FPS frame, paper cadence

    def test_broadphase_selection(self):
        for name in ("brute", "sap", "hash"):
            world = World(WorldConfig(broadphase=name))
            world.add_static_geom(Plane(Vec3(0, 1, 0), 0.0))
            body = Body(position=Vec3(0, 0.4, 0))
            world.attach(body, Sphere(0.5), density=1000.0)
            world.step()
            assert body.is_finite()

    def test_no_collide_filter_for_jointed_bodies(self):
        world = _world_with_ground()
        a = Body(position=Vec3(0, 2, 0))
        b = Body(position=Vec3(0.4, 2, 0))  # overlapping spheres
        world.attach(a, Sphere(0.5), density=500.0)
        world.attach(b, Sphere(0.5), density=500.0)
        from repro.dynamics import BallJoint
        world.add_joint(BallJoint(a, b, Vec3(0.2, 2, 0)))
        report = world.step_frame()
        # The jointed pair produces no contacts with each other; any
        # contacts would be with the ground after falling.
        assert report["narrowphase"].get("contacts") == 0


class TestKillBounds:
    def test_runaway_body_is_culled(self):
        world = World(WorldConfig(world_bounds=50.0))
        bullet = Body(position=Vec3(0, 10, 0))
        bullet.gravity_scale = 0.0
        bullet.linear_velocity = Vec3(200.0, 0, 0)
        world.attach(bullet, Sphere(0.2), density=1000.0)
        for _ in range(100):
            world.step()
        assert not bullet.enabled
        assert world.culled == 1

    def test_bodies_inside_bounds_untouched(self):
        world = _world_with_ground(world_bounds=50.0)
        body = Body(position=Vec3(0, 1, 0))
        world.attach(body, Sphere(0.5), density=1000.0)
        for _ in range(50):
            world.step()
        assert body.enabled
        assert world.culled == 0


class TestBreakableJoints:
    def test_mortar_breaks_under_impact(self):
        world = _world_with_ground()
        base = Body(position=Vec3(0, 0.5, 0))
        top = Body(position=Vec3(0, 1.5, 0))
        world.attach(base, Box(Vec3(0.5, 0.5, 0.5)), density=500.0)
        world.attach(top, Box(Vec3(0.5, 0.5, 0.5)), density=500.0)
        bond = FixedJoint(base, top, break_threshold=10.0)  # weak mortar
        world.add_joint(bond)
        # Hammer blow.
        hammer = Body(position=Vec3(0, 6.0, 0))
        hammer.linear_velocity = Vec3(0, -20.0, 0)
        world.attach(hammer, Sphere(0.4), density=4000.0)
        for _ in range(120):
            world.step()
        assert bond.broken

    def test_strong_bond_holds(self):
        world = _world_with_ground()
        base = Body(position=Vec3(0, 0.5, 0))
        top = Body(position=Vec3(0, 1.5, 0))
        world.attach(base, Box(Vec3(0.5, 0.5, 0.5)), density=500.0)
        world.attach(top, Box(Vec3(0.5, 0.5, 0.5)), density=500.0)
        bond = FixedJoint(base, top, break_threshold=1e9)
        world.add_joint(bond)
        for _ in range(60):
            world.step()
        assert not bond.broken
        # Bond held: top box still sits on the base.
        assert abs(top.position.y - 1.5) < 0.1


class TestPrefracture:
    def test_debris_disabled_until_shatter(self):
        world = _world_with_ground()
        brick = Body(position=Vec3(0, 2, 0))
        brick_geom = world.attach(brick, Box(Vec3(0.3, 0.15, 0.15)),
                                  density=500.0)
        pieces = [Body(position=Vec3(dx, 0, 0))
                  for dx in (-0.15, 0.15)]
        piece_geoms = []
        for piece in pieces:
            piece.enabled = False
            geom = world.attach(piece, Box(Vec3(0.15, 0.15, 0.15)),
                                density=500.0)
            piece_geoms.append(geom)
        pf = world.add_prefractured(brick, brick_geom,
                                    list(zip(pieces, piece_geoms)))
        world.step()
        assert all(not p.enabled for p in pieces)
        pf.fracture()
        assert not brick.enabled
        assert all(p.enabled for p in pieces)
        world.step()  # debris simulates without blowing up
        assert all(p.is_finite() for p in pieces)
