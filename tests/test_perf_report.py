"""Tests for ``scripts/perf_report.py`` and the trajectory gate.

The heavy emitters (microbench, backend comparison, ablation matrix)
are exercised by their own suites; here we pin the *gate* semantics:
schema round-trips, tolerance-band edge cases, the committed
``results/bench`` directory passing its own trajectory, and synthetic
regressions exiting nonzero.
"""

import importlib.util
import json
import os
import shutil

import pytest

from repro.ablation import trajectory as traj

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO, "results", "bench")
TRAJECTORY = os.path.join(BENCH_DIR, "trajectory.json")


def _load_perf_report():
    spec = importlib.util.spec_from_file_location(
        "perf_report", os.path.join(REPO, "scripts", "perf_report.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


perf_report = _load_perf_report()


# ---------------------------------------------------------------------------
# tolerance bands


class TestCompare:
    def test_exact(self):
        ok, _ = traj._compare({"kind": "exact"}, 0, 0)
        assert ok
        ok, _ = traj._compare({"kind": "exact"}, 0, 1)
        assert not ok

    def test_exact_bool(self):
        ok, _ = traj._compare({"kind": "exact"}, True, True)
        assert ok
        ok, _ = traj._compare({"kind": "exact"}, True, False)
        assert not ok

    def test_rel_lower_bound_boundary(self):
        band = {"kind": "rel", "min_ratio": 0.85}
        assert traj._compare(band, 100.0, 85.0)[0]        # exactly -15%
        assert not traj._compare(band, 100.0, 84.999)[0]  # just below
        assert traj._compare(band, 100.0, 1000.0)[0]      # faster: fine

    def test_rel_upper_bound(self):
        band = {"kind": "rel", "min_ratio": 0.5, "max_ratio": 2.0}
        assert traj._compare(band, 10.0, 20.0)[0]
        assert not traj._compare(band, 10.0, 20.001)[0]

    def test_rel_zero_expected_is_failure(self):
        ok, detail = traj._compare({"kind": "rel", "min_ratio": 0.85},
                                   0.0, 1.0)
        assert not ok and "undefined" in detail

    def test_abs_boundary(self):
        # Binary-exact values so the boundary comparison is not at the
        # mercy of float rounding.
        band = {"kind": "abs", "max_delta": 0.25}
        assert traj._compare(band, 1.0, 1.25)[0]
        assert traj._compare(band, 1.0, 0.75)[0]
        assert not traj._compare(band, 1.0, 1.3)[0]

    def test_min_max_floors_and_ceilings(self):
        assert traj._compare({"kind": "min"}, 1.35, 1.35)[0]
        assert not traj._compare({"kind": "min"}, 1.35, 1.34)[0]
        assert traj._compare({"kind": "max"}, 5.0, 5.0)[0]
        assert not traj._compare({"kind": "max"}, 5.0, 5.1)[0]

    def test_unknown_kind_is_failure(self):
        ok, detail = traj._compare({"kind": "fuzzy"}, 1, 1)
        assert not ok and "unknown tolerance kind" in detail


class TestExtract:
    def test_walks_dotted_path(self):
        doc = {"a": {"b": {"c": 3}}}
        assert traj.extract(doc, "a.b.c") == 3

    def test_missing_path_raises(self):
        with pytest.raises(KeyError):
            traj.extract({"a": {}}, "a.b")


# ---------------------------------------------------------------------------
# schema round-trips


class TestSchema:
    def test_trajectory_round_trip(self, tmp_path):
        doc = {"schema": traj.SCHEMA, "sources": [], "settings": {},
               "metrics": []}
        path = str(tmp_path / "t.json")
        traj.save(doc, path)
        assert traj.load(path) == doc

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = str(tmp_path / "t.json")
        with open(path, "w") as fh:
            json.dump({"schema": "something-else/9"}, fh)
        with pytest.raises(ValueError, match="expected schema"):
            traj.load(path)

    def test_envelope_schemas(self):
        for section, schema in (
                ("lint", "repro-lint-report/1"),
                ("serve", "repro-serve-loadtest/1"),
                ("comparison", "repro-backend-comparison/1"),
                ("ablation", "repro-ablation-report/1")):
            report = perf_report._envelope(section, {"x": 1})
            assert report["schema"] == schema
            assert report[section] == {"x": 1}
            assert "python" in report and "platform" in report

    def test_engine_envelope_merges_body(self):
        report = perf_report._envelope("engine", {"modeled": {}})
        assert report["schema"] == "repro-perf-report/1"
        assert "modeled" in report


# ---------------------------------------------------------------------------
# the committed gate


class TestCommittedTrajectory:
    def test_committed_dir_passes_its_own_gate(self):
        doc = traj.load(TRAJECTORY)
        results = traj.check_directory(doc, BENCH_DIR)
        failures = [r for r in results if not r.ok]
        assert results and not failures, failures

    def test_committed_gate_via_cli(self):
        assert perf_report.main([
            "--check", "--dir", BENCH_DIR,
            "--trajectory", TRAJECTORY]) == 0

    def test_trajectory_covers_all_bench_sources(self):
        doc = traj.load(TRAJECTORY)
        assert set(doc["sources"]) == {"BENCH_6.json", "BENCH_8.json",
                                       "BENCH_9.json", "BENCH_10.json"}

    def test_gates_at_least_eight_features(self):
        doc = traj.load(TRAJECTORY)
        features = {m["id"].split(".")[2] for m in doc["metrics"]
                    if m["id"].startswith("ablation.features.")}
        assert len(features) >= 8


class TestSyntheticRegression:
    @pytest.fixture()
    def fresh_dir(self, tmp_path):
        fresh = tmp_path / "fresh"
        shutil.copytree(BENCH_DIR, fresh)
        os.remove(str(fresh / "trajectory.json"))
        return fresh

    def _edit(self, fresh, name, mutate):
        path = str(fresh / name)
        with open(path) as fh:
            doc = json.load(fh)
        mutate(doc)
        with open(path, "w") as fh:
            json.dump(doc, fh)

    def _check(self, fresh):
        return perf_report.main([
            "--check", "--dir", str(fresh),
            "--trajectory", TRAJECTORY])

    def test_unmodified_copy_passes(self, fresh_dir):
        assert self._check(fresh_dir) == 0

    def test_lint_regression_fails(self, fresh_dir):
        self._edit(fresh_dir, "BENCH_8.json",
                   lambda d: d["lint"].update(new_findings=5))
        assert self._check(fresh_dir) == 1

    def test_fps_regression_fails(self, fresh_dir):
        def slow_down(doc):
            for metrics in doc["ablation"]["baseline"].values():
                metrics["fps"] *= 0.5
        self._edit(fresh_dir, "BENCH_10.json", slow_down)
        assert self._check(fresh_dir) == 1

    def test_migration_divergence_fails(self, fresh_dir):
        self._edit(fresh_dir, "BENCH_9.json",
                   lambda d: d["migration"].update(divergence=1e-9))
        assert self._check(fresh_dir) == 1

    def test_digest_flip_fails(self, fresh_dir):
        def flip(doc):
            cells = doc["ablation"]["features"]["ccd"]["workloads"]
            for cell in cells.values():
                cell["digest_changed"] = not cell["digest_changed"]
        self._edit(fresh_dir, "BENCH_10.json", flip)
        assert self._check(fresh_dir) == 1

    def test_missing_source_file_fails(self, fresh_dir):
        os.remove(str(fresh_dir / "BENCH_10.json"))
        assert self._check(fresh_dir) == 1

    def test_missing_path_fails(self, fresh_dir):
        self._edit(fresh_dir, "BENCH_8.json",
                   lambda d: d["lint"].pop("exit_code"))
        assert self._check(fresh_dir) == 1

    def test_sources_found_in_nested_layout(self, fresh_dir, tmp_path):
        # CI artifact downloads flatten unpredictably; the checker must
        # find sources anywhere under the directory.
        nested = tmp_path / "outer"
        (nested / "deep").mkdir(parents=True)
        for name in os.listdir(str(fresh_dir)):
            shutil.move(str(fresh_dir / name), str(nested / "deep" / name))
        assert perf_report.main([
            "--check", "--dir", str(nested),
            "--trajectory", TRAJECTORY]) == 0


class TestUpdateTrajectory:
    def test_rebuild_round_trips(self, tmp_path):
        out = str(tmp_path / "t.json")
        assert perf_report.main([
            "--update-trajectory", "--dir", BENCH_DIR,
            "--trajectory", out]) == 0
        doc = traj.load(out)
        results = traj.check_directory(doc, BENCH_DIR)
        assert results and all(r.ok for r in results)

    def test_empty_dir_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            traj.build_trajectory(str(tmp_path))
