"""Broadphase agreement and narrowphase contact tests."""

import random

import pytest

from repro.collision import (
    BROADPHASES,
    BruteForceBroadphase,
    SpatialHashBroadphase,
    SweepAndPrune,
    Geom,
    collide,
)
from repro.dynamics import Body
from repro.geometry import Box, Plane, Sphere
from repro.math3d import Quaternion, Transform, Vec3


def _random_geoms(n, seed, spread=10.0):
    rng = random.Random(seed)
    geoms = []
    for i in range(n):
        body = Body(position=Vec3(rng.uniform(-spread, spread),
                                  rng.uniform(-spread, spread),
                                  rng.uniform(-spread, spread)))
        if i % 2:
            shape = Sphere(rng.uniform(0.3, 1.5))
        else:
            shape = Box(Vec3(rng.uniform(0.3, 1.2),
                             rng.uniform(0.3, 1.2),
                             rng.uniform(0.3, 1.2)))
        g = Geom(shape, body=body)
        g.index = i
        geoms.append(g)
    return geoms


def _pair_set(pairs):
    return {tuple(sorted((ga.index, gb.index))) for ga, gb in pairs}


class TestBroadphaseAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_sap_matches_brute_force(self, seed):
        geoms = _random_geoms(40, seed)
        brute = _pair_set(BruteForceBroadphase().pairs(geoms))
        sap = _pair_set(SweepAndPrune().pairs(geoms))
        assert sap == brute
        assert brute  # the scene is dense enough that some pairs exist

    @pytest.mark.parametrize("seed", [0, 5])
    def test_spatial_hash_matches_brute_force(self, seed):
        geoms = _random_geoms(40, seed)
        brute = _pair_set(BruteForceBroadphase().pairs(geoms))
        hashed = _pair_set(SpatialHashBroadphase().pairs(geoms))
        assert hashed == brute

    def test_incremental_sap_tracks_motion(self):
        geoms = _random_geoms(30, seed=7)
        sap = SweepAndPrune()
        rng = random.Random(99)
        for _ in range(5):  # persistent sorted order across frames
            for g in geoms:
                g.body.position += Vec3(rng.uniform(-1, 1),
                                        rng.uniform(-1, 1),
                                        rng.uniform(-1, 1))
            brute = _pair_set(BruteForceBroadphase().pairs(geoms))
            assert _pair_set(sap.pairs(geoms)) == brute

    def test_deterministic_pair_order(self):
        geoms = _random_geoms(25, seed=3)
        first = [(ga.index, gb.index)
                 for ga, gb in SweepAndPrune().pairs(geoms)]
        second = [(ga.index, gb.index)
                  for ga, gb in SweepAndPrune().pairs(geoms)]
        assert first == second

    def test_static_static_pairs_skipped(self):
        geoms = []
        for i in range(3):  # overlapping static geoms
            g = Geom(Sphere(2.0), transform=Transform(Vec3(i * 0.1, 0, 0)))
            g.index = i
            geoms.append(g)
        for cls in (BruteForceBroadphase, SweepAndPrune,
                    SpatialHashBroadphase):
            assert _pair_set(cls().pairs(geoms)) == set()

    def test_registry(self):
        assert set(BROADPHASES) >= {"brute", "sap", "hash"}


class TestNarrowphase:
    def _geom(self, shape, pos, orientation=None):
        body = Body(position=pos, orientation=orientation)
        return Geom(shape, body=body)

    def test_sphere_sphere_contact(self):
        a = self._geom(Sphere(1.0), Vec3(0, 0, 0))
        b = self._geom(Sphere(1.0), Vec3(1.5, 0, 0))
        contacts = collide(a, b)
        assert len(contacts) == 1
        c = contacts[0]
        assert abs(c.depth - 0.5) < 1e-9
        # Normal points from b toward a.
        assert c.normal.distance_to(Vec3(-1, 0, 0)) < 1e-9

    def test_sphere_sphere_separated(self):
        a = self._geom(Sphere(1.0), Vec3(0, 0, 0))
        b = self._geom(Sphere(1.0), Vec3(5, 0, 0))
        assert collide(a, b) == []

    def test_sphere_plane(self):
        plane = Geom(Plane(Vec3(0, 1, 0), 0.0))
        ball = self._geom(Sphere(1.0), Vec3(0, 0.5, 0))
        contacts = collide(ball, plane)
        assert len(contacts) == 1
        c = contacts[0]
        assert abs(c.depth - 0.5) < 1e-9
        assert c.normal.distance_to(Vec3(0, 1, 0)) < 1e-9

    def test_box_plane_manifold(self):
        plane = Geom(Plane(Vec3(0, 1, 0), 0.0))
        box = self._geom(Box(Vec3(0.5, 0.5, 0.5)), Vec3(0, 0.4, 0))
        contacts = collide(box, plane)
        # The whole bottom face penetrates: a multi-point manifold.
        assert len(contacts) >= 3
        for c in contacts:
            assert abs(c.depth - 0.1) < 1e-6
            assert c.normal.distance_to(Vec3(0, 1, 0)) < 1e-9

    def test_box_box_face_contact(self):
        a = self._geom(Box(Vec3(0.5, 0.5, 0.5)), Vec3(0, 0, 0))
        b = self._geom(Box(Vec3(0.5, 0.5, 0.5)), Vec3(0, 0.9, 0))
        contacts = collide(a, b)
        assert contacts
        for c in contacts:
            assert abs(abs(c.normal.y) - 1.0) < 1e-9
            assert 0.0 <= c.depth <= 0.11

    def test_box_box_rotated(self):
        a = self._geom(Box(Vec3(1, 1, 1)), Vec3(0, 0, 0))
        b = self._geom(Box(Vec3(1, 1, 1)), Vec3(0, 1.8, 0),
                       Quaternion.from_axis_angle(Vec3(0, 1, 0), 0.4))
        contacts = collide(a, b)
        assert contacts
        for c in contacts:
            assert c.normal.is_finite()
            assert c.depth >= 0.0

    def test_symmetric_dispatch(self):
        """collide(a, b) and collide(b, a) find the same penetration."""
        plane = Geom(Plane(Vec3(0, 1, 0), 0.0))
        ball = self._geom(Sphere(1.0), Vec3(0, 0.5, 0))
        depth_ab = collide(ball, plane)[0].depth
        depth_ba = collide(plane, ball)[0].depth
        assert abs(depth_ab - depth_ba) < 1e-12

    def test_contact_counters(self):
        geoms = _random_geoms(20, seed=11)
        bp = SweepAndPrune()
        bp.pairs(geoms)
        assert bp.tests >= 0
