"""Session migration: checkpoint -> wire encoding -> restore into a
fresh build, in-process and cross-process, must replay bit-identically
against a twin that never migrated."""

import json
import multiprocessing

import pytest

from repro.api import Session, SessionSpec

# Three Table 3 workloads with different rebuild stress: explosions
# spawns bodies mid-run (debris), breakable rewrites constraints,
# continuous has a driver and fast movers.
WORKLOADS = ["explosions", "breakable", "continuous", "mix"]


def spec(name, **kw):
    kw.setdefault("scale", 0.05)
    kw.setdefault("backend", "numpy")
    return SessionSpec(name, **kw)


def wire_round_trip(payload: dict) -> dict:
    """The serve wire discipline: everything JSON-native."""
    return json.loads(json.dumps(payload))


@pytest.mark.parametrize("name", WORKLOADS)
def test_migrated_session_replays_bit_identically(name):
    twin = Session.create(spec(name))
    twin.step(4)

    source = Session.create(spec(name))
    source.step(4)
    payload = wire_round_trip(source.checkpoint())
    source.close()

    migrated = Session.restore(payload)
    assert migrated.state_digest() == twin.state_digest()

    migrated.step(4)
    twin.step(4)
    assert migrated.state_digest() == twin.state_digest()


def test_checkpoint_payload_is_json_native():
    session = Session.create(spec("explosions"))
    session.step(3)
    payload = session.checkpoint()
    encoded = json.dumps(payload)
    decoded = json.loads(encoded)
    assert decoded["spec"]["scenario"] == "explosions"
    assert decoded["uid_base"] == [0, 0]
    assert decoded["snapshot"]["version"] == 2


def _restore_and_step(payload, frames, pipe):
    session = Session.restore(payload)
    session.step(frames)
    pipe.send(session.state_digest())
    pipe.close()


def test_cross_process_restore_bit_identical():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    ctx = multiprocessing.get_context("fork")

    source = Session.create(spec("explosions"))
    source.step(4)
    payload = wire_round_trip(source.checkpoint())

    parent_end, child_end = ctx.Pipe()
    proc = ctx.Process(target=_restore_and_step,
                       args=(payload, 4, child_end))
    proc.start()
    remote_digest = parent_end.recv()
    proc.join(timeout=60)

    source.step(4)  # the unmigrated continuation
    assert remote_digest == source.state_digest()


def test_restore_rejects_wrong_world_shape():
    from repro.resilience import SnapshotMismatchError

    payload = Session.create(spec("periodic")).checkpoint()
    foreign = payload["spec"]
    foreign["scenario"] = "explosions"  # rebuild won't match snapshot
    with pytest.raises(SnapshotMismatchError):
        Session.restore(payload)
