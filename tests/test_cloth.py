"""Cloth: constraint convergence, pinning, collision projection."""

import numpy as np

from repro.cloth import Cloth
from repro.math3d import Vec3

GRAVITY = Vec3(0, -9.81, 0)


class TestClothBasics:
    def test_vertex_layout(self):
        cloth = Cloth(5, 4, 0.1, Vec3(0, 2, 0))
        assert cloth.positions.shape == (20, 3)
        assert np.allclose(cloth.positions[0], [0, 2, 0])
        # Row-major: vertex (i=1, j=0) sits one spacing along +x.
        assert np.allclose(cloth.positions[1], [0.1, 2, 0])

    def test_step_stats(self):
        cloth = Cloth(25, 25, 0.1, Vec3(0, 5, 0), pin_top_row=True)
        stats = cloth.step(0.01, GRAVITY)
        assert stats["vertices"] == 625

    def test_pinned_vertices_do_not_move(self):
        cloth = Cloth(10, 10, 0.1, Vec3(0, 5, 0), pin_top_row=True)
        pinned_before = cloth.positions[:10].copy()
        for _ in range(50):
            cloth.step(0.01, GRAVITY)
        assert np.allclose(cloth.positions[:10], pinned_before)

    def test_unpinned_cloth_falls(self):
        cloth = Cloth(6, 6, 0.1, Vec3(0, 5, 0))
        y0 = cloth.positions[:, 1].mean()
        for _ in range(30):
            cloth.step(0.01, GRAVITY)
        assert cloth.positions[:, 1].mean() < y0 - 0.2


class TestClothConvergence:
    def test_constraints_converge_to_rest_length(self):
        """With no external force, a uniformly stretched cloth relaxes
        back to rest length (Jakobsen relaxation converges)."""
        cloth = Cloth(10, 10, 0.1, Vec3(0, 5, 0))
        cloth.positions *= 1.2  # 20% uniform stretch
        cloth.prev_positions = cloth.positions.copy()  # zero velocity
        assert cloth.max_stretch() > 0.15
        for _ in range(200):
            cloth.step(0.01, Vec3(0, 0, 0))
        assert cloth.max_stretch() < 0.01

    def test_hanging_stretch_bounded(self):
        """Under gravity the worst constraint error stays bounded (the
        averaged-Jacobi scheme equilibrates rather than creeping)."""
        cloth = Cloth(12, 12, 0.1, Vec3(0, 5, 0), pin_top_row=True)
        for _ in range(400):
            cloth.step(0.01, GRAVITY)
        assert cloth.max_stretch() < 0.15

    def test_settles_to_quiescence(self):
        cloth = Cloth(8, 8, 0.1, Vec3(0, 5, 0), pin_top_row=True)
        for _ in range(500):
            cloth.step(0.01, GRAVITY)
        speed = np.abs(cloth.positions - cloth.prev_positions).max() / 0.01
        assert speed < 0.2  # effectively at rest

    def test_stays_finite_under_large_step(self):
        cloth = Cloth(8, 8, 0.1, Vec3(0, 5, 0), pin_top_row=True)
        for _ in range(100):
            cloth.step(0.02, Vec3(0, -30.0, 0))
        assert np.isfinite(cloth.positions).all()


class TestClothCollision:
    def test_ground_projection(self):
        """Falling cloth must land on the floor, not pass through."""
        cloth = Cloth(8, 8, 0.1, Vec3(0, 0.5, 0))
        cloth.ground_height = 0.0
        for _ in range(200):
            cloth.step(0.01, GRAVITY)
        assert cloth.positions[:, 1].min() > -1e-6

    def test_sphere_projection(self):
        """Cloth dropped onto a sphere drapes around it, no vertex
        left inside."""
        from repro.collision import Geom
        from repro.geometry import Sphere
        from repro.math3d import Transform

        ball = Geom(Sphere(0.3), transform=Transform(Vec3(0.35, 0.0, 0.0)))
        cloth = Cloth(8, 8, 0.1, Vec3(0, 0.8, 0))
        for _ in range(150):
            cloth.step(0.01, GRAVITY, colliders=[ball])
        center = np.array([0.35, 0.0, 0.0])
        dist = np.sqrt(((cloth.positions - center) ** 2).sum(axis=1))
        assert dist.min() > 0.3 - 1e-6
