"""The sharded simulation service: routing, metrics, protocol units,
cluster lifecycle end-to-end, migration bit-identity through the
service, backpressure, quarantine, and the asyncio front-end."""

import asyncio
import json

import pytest

from repro.api import Session, SessionSpec
from repro.serve import (BackpressureError, FrameTimeHistogram,
                         RoutingTable, SessionExistsError, ShardOptions,
                         ShardWorker, SimCluster, SimService,
                         UnknownSessionError, merge_snapshots,
                         serve_tcp, shard_for)
from repro.serve import protocol


def spec(name="periodic", **kw):
    kw.setdefault("scale", 0.02)
    kw.setdefault("backend", "numpy")
    return SessionSpec(name, **kw)


# -- units: routing ------------------------------------------------------
class TestRouting:
    def test_shard_for_is_stable_and_in_range(self):
        for n in (1, 2, 5):
            for sid in ("a", "session-42", "s00099"):
                first = shard_for(sid, n)
                assert 0 <= first < n
                assert shard_for(sid, n) == first

    def test_overrides_layer_over_hash_placement(self):
        table = RoutingTable(4)
        sid = "mover"
        home = table.shard_of(sid)
        target = (home + 1) % 4
        table.assign(sid, target)
        assert table.shard_of(sid) == target
        table.assign(sid, home)  # back home drops the override
        assert table.overrides == {}
        table.assign(sid, target)
        table.forget(sid)
        assert table.shard_of(sid) == home

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            shard_for("x", 0)
        with pytest.raises(ValueError):
            RoutingTable(2).assign("x", 5)


# -- units: metrics ------------------------------------------------------
class TestMetrics:
    def test_histogram_percentiles_bracket_the_data(self):
        hist = FrameTimeHistogram()
        for _ in range(90):
            hist.record(0.001)
        for _ in range(10):
            hist.record(0.5)
        assert 0.0005 < hist.percentile(50) < 0.002
        assert 0.25 < hist.percentile(95) < 1.0
        assert hist.max == 0.5
        assert hist.total == 100

    def test_merge_and_serialization_round_trip(self):
        a, b = FrameTimeHistogram(), FrameTimeHistogram()
        a.record(0.01)
        b.record(0.02)
        b.record(0.04)
        a.merge(FrameTimeHistogram.from_dict(
            json.loads(json.dumps(b.to_dict()))))
        assert a.total == 3
        assert a.max == 0.04

    def test_merge_snapshots_folds_counters(self):
        from repro.serve import ShardMetrics
        m0, m1 = ShardMetrics(0), ShardMetrics(1)
        m0.observe_frame("a", 0.01, batched=True)
        m1.observe_frame("b", 0.02, batched=False)
        m1.count("quarantines")
        merged = merge_snapshots([m0.snapshot(), m1.snapshot()])
        assert merged["counters"]["frames"] == 2
        assert merged["counters"]["batched_frames"] == 1
        assert merged["counters"]["quarantines"] == 1
        assert merged["frame_time_summary"]["count"] == 2


# -- units: protocol -----------------------------------------------------
class TestProtocol:
    def test_typed_error_survives_the_wire(self):
        reply = json.loads(json.dumps(protocol.error_reply(
            7, UnknownSessionError("nope"))))
        with pytest.raises(UnknownSessionError, match="nope"):
            protocol.raise_if_error(reply)

    def test_foreign_exception_becomes_worker_error(self):
        reply = protocol.error_reply(1, KeyError("boom"))
        assert reply["error"]["type"] == "WorkerError"
        with pytest.raises(protocol.WorkerError, match="KeyError"):
            protocol.raise_if_error(reply)

    def test_unknown_error_type_degrades_to_worker_error(self):
        reply = {"req_id": 1, "ok": False,
                 "error": {"type": "FutureError", "message": "m"}}
        with pytest.raises(protocol.WorkerError):
            protocol.raise_if_error(reply)

    def test_ok_reply_passes_result_through(self):
        assert protocol.raise_if_error(
            protocol.ok_reply(3, {"x": 1})) == {"x": 1}


# -- units: quarantine ladder -------------------------------------------
class TestQuarantineLadder:
    def test_streaks_drive_quarantine_and_release(self):
        from repro.serve.shard import SessionRuntime
        worker = ShardWorker(0, ShardOptions(slow_frame_seconds=0.1,
                                             quarantine_after=2,
                                             release_after=2))
        runtime = SessionRuntime("s", session=None)
        worker._update_quarantine(runtime, 0.5)
        assert not runtime.quarantined
        worker._update_quarantine(runtime, 0.5)
        assert runtime.quarantined
        worker._update_quarantine(runtime, 0.01)
        assert runtime.quarantined
        worker._update_quarantine(runtime, 0.01)
        assert not runtime.quarantined
        assert worker.metrics.counters["quarantines"] == 1
        assert worker.metrics.counters["quarantine_releases"] == 1

    def test_slow_streak_resets_on_fast_frame(self):
        from repro.serve.shard import SessionRuntime
        worker = ShardWorker(0, ShardOptions(slow_frame_seconds=0.1,
                                             quarantine_after=3))
        runtime = SessionRuntime("s", session=None)
        for seconds in (0.5, 0.5, 0.01, 0.5, 0.5):
            worker._update_quarantine(runtime, seconds)
        assert not runtime.quarantined


# -- end-to-end: cluster -------------------------------------------------
class TestCluster:
    def test_lifecycle_and_typed_errors(self):
        with SimCluster(n_shards=2, backlog=16) as cluster:
            cluster.create_session("a", spec(seed=0))
            with pytest.raises(SessionExistsError):
                cluster.create_session("a", spec(seed=0))
            result = cluster.step("a", frames=3)
            assert result["frame_index"] == 3
            status = cluster.query("a")
            assert status["frame_index"] == 3
            assert len(status["digest"]) == 64
            with pytest.raises(UnknownSessionError):
                cluster.step("ghost")
            cluster.destroy("a")
            with pytest.raises(UnknownSessionError):
                cluster.query("a")

    def test_serve_matches_local_session(self):
        with SimCluster(n_shards=2) as cluster:
            cluster.create_session("x", spec(seed=4))
            cluster.step("x", frames=5)
            served = cluster.query("x")["digest"]
        local = Session.create(spec(seed=4))
        local.step(5)
        assert served == local.state_digest()

    def test_migration_is_bit_identical(self):
        with SimCluster(n_shards=2) as cluster:
            cluster.create_session("m", spec("explosions", scale=0.05))
            cluster.step("m", frames=4)
            source = cluster.routing.shard_of("m")
            target = (source + 1) % 2
            moved = cluster.migrate("m", target)
            assert moved["shard_id"] == target
            assert cluster.routing.shard_of("m") == target
            cluster.step("m", frames=4)
            served = cluster.query("m")["digest"]
            stats = cluster.stats()
            assert stats["counters"]["sessions_restored"] == 1
        twin = Session.create(spec("explosions", scale=0.05))
        twin.step(8)
        assert served == twin.state_digest()

    def test_full_inbox_raises_backpressure(self):
        with SimCluster(n_shards=1, backlog=1) as cluster:
            cluster.create_session("busy", spec(scale=0.05))
            futures = [cluster.submit(0, "step", "busy", frames=30)]
            with pytest.raises(BackpressureError):
                for _ in range(500):
                    futures.append(cluster.submit(0, "query", "busy"))
            for future in futures:
                protocol.raise_if_error(future.result(timeout=120))

    def test_slow_session_is_quarantined_but_completes(self):
        options = ShardOptions(slow_frame_seconds=0.0,
                               quarantine_after=2,
                               quarantine_backoff=2)
        with SimCluster(n_shards=1, shard_options=options) as cluster:
            cluster.create_session("slow", spec(seed=1))
            result = cluster.step("slow", frames=6)
            assert result["frame_index"] == 6
            assert result["quarantined"]
            stats = cluster.shard_stats(0)
            assert stats["counters"]["quarantines"] >= 1

    def test_watchdog_session_reports_events(self):
        faults = [{"step": 3, "kind": "huge_impulse",
                   "persistent": False}]
        with SimCluster(n_shards=1) as cluster:
            cluster.create_session(
                "w", spec(scale=0.05, watchdog=True, faults=faults))
            result = cluster.step("w", frames=4)
            assert result["watchdog_events"] >= 1
            stats = cluster.shard_stats(0)
            assert stats["counters"]["watchdog_events"] >= 1
            assert stats["counters"]["solo_frames"] == 4


# -- end-to-end: asyncio front-end --------------------------------------
class TestService:
    def test_async_verbs_and_stats(self):
        async def scenario():
            service = SimService.start(n_shards=2, backlog=32)
            try:
                await asyncio.gather(*(
                    service.create_session(f"s{i}", spec(seed=i))
                    for i in range(6)))
                await asyncio.gather(*(
                    service.step(f"s{i}", frames=3)
                    for i in range(6)))
                status = await service.query("s0")
                stats = await service.stats()
                await asyncio.gather(*(
                    service.destroy(f"s{i}") for i in range(6)))
                return status, stats
            finally:
                await service.close()

        status, stats = asyncio.run(scenario())
        assert status["frame_index"] == 3
        assert stats["counters"]["frames"] == 18
        # Concurrent sessions on one shard pack into batched rounds.
        assert stats["counters"]["batched_frames"] > 0

    def test_async_migration_matches_twin(self):
        async def scenario():
            service = SimService.start(n_shards=2)
            try:
                await service.create_session("m", spec(seed=9))
                await service.step("m", frames=3)
                source = service.cluster.routing.shard_of("m")
                await service.migrate("m", (source + 1) % 2)
                await service.step("m", frames=3)
                return (await service.query("m"))["digest"]
            finally:
                await service.close()

        served = asyncio.run(scenario())
        twin = Session.create(spec(seed=9))
        twin.step(6)
        assert served == twin.state_digest()

    def test_tcp_json_lines_round_trip(self):
        async def scenario():
            service = SimService.start(n_shards=1)
            server = await serve_tcp(service)
            try:
                host, port = server.sockets[0].getsockname()[:2]
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                for req in (
                    {"req_id": 1, "verb": "create",
                     "session_id": "net",
                     "args": {"spec": spec(seed=2).to_dict()}},
                    {"req_id": 2, "verb": "step", "session_id": "net",
                     "args": {"frames": 2}},
                    {"req_id": 3, "verb": "query",
                     "session_id": "net"},
                    {"req_id": 4, "verb": "destroy",
                     "session_id": "net"},
                ):
                    writer.write(json.dumps(req).encode() + b"\n")
                await writer.drain()
                replies = {}
                for _ in range(4):
                    line = await asyncio.wait_for(reader.readline(),
                                                  timeout=60)
                    reply = json.loads(line)
                    replies[reply["req_id"]] = reply
                writer.close()
                return replies
            finally:
                server.close()
                await server.wait_closed()
                await service.close()

        replies = asyncio.run(scenario())
        assert all(r["ok"] for r in replies.values())
        assert replies[3]["result"]["frame_index"] == 2
        assert len(replies[3]["result"]["digest"]) == 64


# -- end-to-end: load-test harness --------------------------------------
def test_loadtest_micro_run(tmp_path):
    from repro.serve.loadtest import build_parser, run_loadtest

    out = tmp_path / "BENCH_9.json"
    opts = build_parser().parse_args([
        "--sessions", "8", "--workers", "2", "--frames", "4",
        "--round-frames", "2", "--migrate", "1", "--verify", "2",
        "--out", str(out)])
    report = asyncio.run(run_loadtest(opts))
    out.write_text(json.dumps(report))

    assert report["frames_total"] == 32
    assert report["throughput_fps"] > 0
    assert report["counters"]["frames"] == 32
    assert report["migration"]["count"] == 1
    assert report["migration"]["verified"]
    assert report["migration"]["divergence"] == 0.0
    assert report["frame_time_summary"]["p95_s"] > 0
    assert len(report["shards"]) == 2
