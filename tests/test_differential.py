"""Differential oracle: backend="numpy" must be bit-identical to scalar.

The scalar pipeline is the reference implementation; every fastpath
kernel claims to be a pure restatement of it.  This harness holds the
kernels to that claim: each Table 3 workload is stepped on both
backends and the trajectories must agree to the last bit
(``trajectory_divergence == 0.0``, not merely "close").  Bit-identity
is what keeps the resilience layer's divergence detection meaningful —
a tolerance here would become an undetectable drift budget there.
"""

import os

import pytest

from repro.engine.recorder import TrajectoryRecorder, trajectory_divergence
from repro.fastpath import BatchWorld, default_backend
from repro.workloads.benchmarks import BENCHMARKS

# Small scale keeps the eight double runs affordable; 60 frames is long
# enough for cannons, explosion schedules and sleep/wake transitions in
# every workload to fire (see the drivers in repro.workloads).
SCALE = float(os.environ.get("REPRO_DIFF_SCALE", "0.03"))
FRAMES = int(os.environ.get("REPRO_DIFF_FRAMES", "60"))


def _run(name, backend, frames=FRAMES, scale=SCALE, seed=0):
    with default_backend(backend):
        world, driver = BENCHMARKS[name].build(scale=scale, seed=seed)
    assert world.backend == backend
    rec = TrajectoryRecorder(world).record(frames, driver)
    return rec, world


def _island_key(world):
    index = {body.uid: i for i, body in enumerate(world.bodies)}
    return sorted((res, tuple(index[u] for u in uids))
                  for res, uids in world.last_island_residuals)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_backend_trajectories_bit_identical(name):
    rec_s, world_s = _run(name, "scalar")
    rec_n, world_n = _run(name, "numpy")
    div = trajectory_divergence(rec_s, rec_n)
    assert div == 0.0, f"{name}: backends diverged by {div}"
    # The watchdog's divergence detection keys off solver residuals, so
    # those must survive the backend swap bit-for-bit too.  Islands may
    # be *enumerated* in a different order (the batched narrowphase
    # groups pairs by shape kind before emitting contacts), but the
    # watchdog folds residuals with a max, so the per-island values as
    # a multiset are what has to match.
    # Body uids are allocated from a process-global counter, so two
    # separately built worlds get disjoint uid ranges; normalize to
    # body-list indices before comparing island membership.
    assert world_s.last_solver_residual == world_n.last_solver_residual
    assert _island_key(world_s) == _island_key(world_n)


def _build_fleet(n, backend="numpy", scale=0.03):
    worlds, drivers = [], []
    for seed in range(n):
        with default_backend(backend):
            world, driver = BENCHMARKS["ragdoll"].build(scale=scale,
                                                        seed=seed)
        worlds.append(world)
        drivers.append(driver)
    return worlds, drivers


def _record_batch(batch, drivers, frames):
    recs = [TrajectoryRecorder(w) for w in batch.worlds]
    for rec in recs:
        rec.snapshot()
    for _ in range(frames):
        batch.step_frame(drivers)
        for rec in recs:
            rec.snapshot()
    return recs


def test_batch_world_matches_solo_stepping():
    """Packing N worlds into one solve must not change any of them."""
    frames = 12
    solo = []
    for seed in range(4):
        with default_backend("numpy"):
            world, driver = BENCHMARKS["ragdoll"].build(scale=0.03,
                                                        seed=seed)
        solo.append(TrajectoryRecorder(world).record(frames, driver))

    worlds, drivers = _build_fleet(4)
    batch = BatchWorld(worlds)
    assert batch._batchable()
    recs = _record_batch(batch, drivers, frames)
    for seed, (a, b) in enumerate(zip(solo, recs)):
        div = trajectory_divergence(a, b)
        assert div == 0.0, f"world seed={seed} diverged by {div}"


def test_batch_world_mixed_backends_falls_back():
    """A fleet that can't pack still steps every world correctly."""
    frames = 6
    solo = []
    for seed, backend in enumerate(["scalar", "numpy"]):
        with default_backend(backend):
            world, driver = BENCHMARKS["ragdoll"].build(scale=0.03,
                                                        seed=seed)
        solo.append(TrajectoryRecorder(world).record(frames, driver))

    worlds, drivers = [], []
    for seed, backend in enumerate(["scalar", "numpy"]):
        with default_backend(backend):
            world, driver = BENCHMARKS["ragdoll"].build(scale=0.03,
                                                        seed=seed)
        worlds.append(world)
        drivers.append(driver)
    batch = BatchWorld(worlds)
    assert not batch._batchable()
    recs = _record_batch(batch, drivers, frames)
    for a, b in zip(solo, recs):
        assert trajectory_divergence(a, b) == 0.0
