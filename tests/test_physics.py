"""Physics-correctness tests: resting contact, stack stability under
warm starting, energy behaviour."""

from repro.engine import World, WorldConfig
from repro.dynamics import Body
from repro.geometry import Box, Plane, Sphere
from repro.math3d import Vec3


def _ground_world(**config_kwargs):
    world = World(WorldConfig(**config_kwargs))
    world.add_static_geom(Plane(Vec3(0, 1, 0), 0.0), friction=0.8)
    return world


class TestRestingContact:
    def test_sphere_comes_to_rest_on_plane(self):
        world = _ground_world()
        ball = Body(position=Vec3(0, 2.0, 0))
        world.attach(ball, Sphere(0.5), density=1000.0)

        for _ in range(300):  # 3 simulated seconds
            world.step()

        # At rest on the plane: center ~ radius above it, tiny velocity,
        # penetration below tolerance.
        assert abs(ball.position.y - 0.5) < 0.01
        penetration = max(0.0, 0.5 - ball.position.y)
        assert penetration < 0.01
        assert ball.linear_velocity.length() < 0.05
        assert ball.kinetic_energy() < 1.0

    def test_energy_decays_after_drop(self):
        world = _ground_world()
        ball = Body(position=Vec3(0, 3.0, 0))
        world.attach(ball, Sphere(0.5), density=1000.0)

        energies = []
        for _ in range(400):
            world.step()
            # Total mechanical energy (KE + PE above the plane).
            pe = ball.mass * 9.81 * ball.position.y
            energies.append(ball.kinetic_energy() + pe)

        # Inelastic contact bleeds energy: the tail must sit far below
        # the early peak and be essentially flat.
        assert energies[-1] < 0.25 * max(energies[:50])
        tail = energies[-50:]
        assert max(tail) - min(tail) < 1.0

    def test_sphere_does_not_tunnel(self):
        world = _ground_world()
        ball = Body(position=Vec3(0, 1.0, 0))
        ball.linear_velocity = Vec3(0, -8.0, 0)
        world.attach(ball, Sphere(0.5), density=1000.0)
        for _ in range(200):
            world.step()
            assert ball.position.y > 0.0  # never below the plane


class TestStackStability:
    def _build_stack(self, warm_starting):
        world = _ground_world(warm_starting=warm_starting)
        half = Vec3(0.5, 0.5, 0.5)
        boxes = []
        for k in range(4):
            body = Body(position=Vec3(0, 0.5 + k * 1.0, 0))
            world.attach(body, Box(half), density=500.0, friction=0.8)
            boxes.append(body)
        return world, boxes

    def test_stack_stable_with_warm_starting(self):
        world, boxes = self._build_stack(warm_starting=True)
        start_x = [b.position.x for b in boxes]
        for _ in range(300):
            world.step()
        for body, x0 in zip(boxes, start_x):
            # Nothing toppled or drifted sideways.
            assert abs(body.position.x - x0) < 0.1
            assert abs(body.position.z) < 0.1
            assert body.linear_velocity.length() < 0.2
        # Heights preserved (no sinking through, no launch).
        tops = sorted(b.position.y for b in boxes)
        for k, y in enumerate(tops):
            assert abs(y - (0.5 + k * 1.0)) < 0.08

    def test_warm_starting_reduces_jitter(self):
        """Warm-started stacks should settle at least as well as cold
        ones; this guards the impulse cache from regressing."""
        def settled_speed(warm):
            world, boxes = self._build_stack(warm_starting=warm)
            for _ in range(240):
                world.step()
            return max(b.linear_velocity.length() for b in boxes)

        warm = settled_speed(True)
        assert warm < 0.2  # warm-started stack is quiescent

    def test_single_box_rests_flush(self):
        world = _ground_world()
        body = Body(position=Vec3(0, 0.6, 0))
        world.attach(body, Box(Vec3(0.5, 0.5, 0.5)), density=500.0)
        for _ in range(200):
            world.step()
        assert abs(body.position.y - 0.5) < 0.01
        # Orientation stays upright: local up maps near world up.
        up = body.orientation.rotate(Vec3(0, 1, 0))
        assert up.distance_to(Vec3(0, 1, 0)) < 0.02


class TestImpulsesAndExplosions:
    def test_explosion_pushes_bodies_outward(self):
        world = _ground_world()
        left = Body(position=Vec3(-1.0, 0.5, 0))
        right = Body(position=Vec3(1.0, 0.5, 0))
        world.attach(left, Sphere(0.5), density=500.0)
        world.attach(right, Sphere(0.5), density=500.0)
        world.explode(Vec3(0, 0.5, 0), radius=5.0, impulse=200.0)
        world.step()
        assert left.linear_velocity.x < -0.1
        assert right.linear_velocity.x > 0.1

    def test_explosion_falloff_with_distance(self):
        world = _ground_world()
        near = Body(position=Vec3(1.0, 0.5, 0))
        far = Body(position=Vec3(4.0, 0.5, 0))
        world.attach(near, Sphere(0.5), density=500.0)
        world.attach(far, Sphere(0.5), density=500.0)
        world.explode(Vec3(0, 0.5, 0), radius=6.0, impulse=200.0)
        world.step()
        assert near.linear_velocity.length() > far.linear_velocity.length()
