"""Unit tests for the architecture models against hand-computed traces."""

import math

import pytest

from repro.arch import (
    CacheSim,
    DESIGNS,
    HTX,
    INTERCONNECTS,
    L2Partitioning,
    ONCHIP_MESH,
    PCIE,
    ParallaxConfig,
    ParallaxMachine,
    StaticPredictor,
    WayPartitionedCache,
    YagsPredictor,
    simulate_noc,
)
from repro.arch import arbiter, area, model2, osmodel
from repro.arch.kernels import Instr
from repro.arch.pipeline import simulate_ipc

MB = 1024 * 1024


# -- cache -------------------------------------------------------------

def test_cache_direct_mapped_known_stream():
    # capacity 128B, 1 way, 64B lines -> 2 direct-mapped sets.
    # Blocks 0 and 2 conflict in set 0; block 1 lives in set 1.
    sim = CacheSim(128, ways=1).run([0, 1, 0, 2, 0])
    # miss(0), miss(1), hit(0), miss(2 evicts 0), miss(0)
    assert sim.hits == 1
    assert sim.misses == 4


def test_cache_lru_within_set():
    # One fully-associative set with 2 ways.
    sim = CacheSim(128, ways=2).run([0, 1, 0, 2, 1])
    # miss(0), miss(1), hit(0), miss(2 evicts LRU=1), miss(1)
    assert sim.hits == 1
    assert sim.misses == 4


def test_cache_streaming_prefetch():
    sim = CacheSim(64 * MB, ways=8, prefetch_depth=4)
    sim.run(range(100))
    # A linear stream is almost fully covered after the first miss.
    assert sim.misses < 100 * 0.3
    assert sim.prefetch_hits > 100 * 0.7


def test_waypart_strict_allocation():
    # 2 owners x 1 way, 1 set each: owners never evict each other.
    cache = WayPartitionedCache(
        128, ways=2, allocation={"a": 1, "b": 1})
    cache.access(0, "a")
    cache.access(0, "b")      # miss: b cannot see a's ways
    cache.access(0, "a")      # hit in a's partition
    assert cache.hits == {"a": 1, "b": 0}
    assert cache.misses == {"a": 1, "b": 1}


# -- branch prediction -------------------------------------------------

def test_yags_learns_biased_branch():
    p = YagsPredictor()
    for i in range(1000):
        p.update(0x40, i % 10 != 0)  # 90% taken
    assert p.accuracy() > 0.8


def test_yags_learns_alternating_pattern():
    # Global history disambiguates a strict T/NT alternation.
    p = YagsPredictor()
    for i in range(2000):
        p.update(0x80, i % 2 == 0)
    assert p.accuracy() > 0.7


def test_static_predictor_counts_taken_branches():
    p = StaticPredictor()
    for _ in range(10):
        p.update(0x10, True)
    assert not p.predict(0x10)
    assert p.mispredicts == 10


# -- pipeline ----------------------------------------------------------

def _chain(n, op="int"):
    return [Instr(op, (i - 1,) if i else (), 0, False)
            for i in range(n)]


def _independent(n, op="int"):
    return [Instr(op, (), 0, False) for i in range(n)]


def test_ipc_dependent_chain_is_serial():
    ipc = simulate_ipc(_chain(64), DESIGNS["desktop"])
    assert 0.8 <= ipc <= 1.05


def test_ipc_independent_ops_fill_the_width():
    ipc = simulate_ipc(_independent(256), DESIGNS["desktop"])
    assert ipc > 3.0


def test_ipc_fdiv_chain_pays_full_latency():
    # Dependent 12-cycle divides: ~1/12 IPC.
    ipc = simulate_ipc(_chain(32, op="fdiv"), DESIGNS["desktop"])
    assert ipc < 0.15


def test_ipc_in_order_width_one_cap():
    ipc = simulate_ipc(_independent(256), DESIGNS["shader"])
    assert 0.5 < ipc <= 1.0


# -- arbiter -----------------------------------------------------------

def test_arbiter_round_trip_adds_tree_hops():
    # 2 levels x 4 cycles each way on top of the link round trip.
    assert arbiter.round_trip_cycles(ONCHIP_MESH) == 40 + 16
    assert arbiter.round_trip_cycles(HTX) == 240 + 16
    assert arbiter.round_trip_cycles(PCIE) == 2400 + 16


def test_arbiter_tasks_in_flight_per_link():
    # One core, 56-cycle tasks: on-chip needs 1 + ceil(56/56) = 2.
    assert arbiter.tasks_in_flight_required(1, 56, ONCHIP_MESH) == 2
    # Longer round trips need deeper queues, monotonically per link.
    depths = [arbiter.tasks_in_flight_required(8, 500, link)
              for link in (ONCHIP_MESH, HTX, PCIE)]
    assert depths == sorted(depths)
    assert math.isinf(arbiter.tasks_in_flight_required(4, 0, HTX))


def test_arbiter_bandwidth_feasibility():
    # 1 core, 2000-cycle tasks @2GHz = 1M tasks/s; 100B/task = 100MB/s.
    assert arbiter.bandwidth_feasible(1, 2000, 100, PCIE)
    # 150 cores pulling 1KB every 100 cycles = 3TB/s: nothing fits.
    assert not arbiter.bandwidth_feasible(150, 100, 1000, ONCHIP_MESH)


def test_static_mapping_overhead():
    assert arbiter.static_mapping_overhead([1, 1, 1, 1], 4) == 0.0
    # One dominant island: the thread that drew it bounds the frame.
    skew = arbiter.static_mapping_overhead([8, 1, 1, 1], 4)
    assert skew == pytest.approx(4 * 8 / 11 - 1)


# -- interconnect ------------------------------------------------------

def test_interconnect_transfer_seconds():
    assert PCIE.transfer_seconds(2.0e9) == pytest.approx(3e-6 + 1.0)
    assert ONCHIP_MESH.transfer_seconds(0) == 0.0
    assert set(INTERCONNECTS) == {"onchip-mesh", "htx", "pcie"}


def test_noc_delivers_every_packet():
    out = simulate_noc("mesh", packets=64)
    assert out["delivered"] == 64
    assert out["avg_latency"] > 0


def test_noc_hotspot_contention():
    uniform = simulate_noc("mesh", packets=256)
    hot = simulate_noc("mesh", packets=256, hotspot=True)
    assert hot["avg_latency"] > uniform["avg_latency"]


# -- OS model, area, model2 --------------------------------------------

def test_os_kernel_misses_jump_past_four_threads():
    # 12MB / 4 threads = 3MB slice > 850KB footprint: no re-streaming.
    assert osmodel.kernel_overhead_misses(4, 12 * MB) == 0.0
    # 8 threads: 1.5MB slice < 5MB footprint -> misses appear.
    assert osmodel.kernel_overhead_misses(8, 12 * MB) > 1e6
    assert osmodel.sync_instructions(1) == 0.0
    assert osmodel.sync_instructions(4) > osmodel.sync_instructions(2)


def test_area_pool_ordering():
    # Paper 8.2.1: shader pool is the smallest for its core count.
    pools = {d: area.fg_pool_area(d, area.PAPER_POOL_CORES[d])
             for d in ("desktop", "console", "shader")}
    assert pools["shader"] < pools["console"] < pools["desktop"]


def test_model2_paper_example():
    assert model2.paper_example_seconds() == pytest.approx(6e-5, rel=0.2)


# -- machine API -------------------------------------------------------

def test_l2_partitioning_slices():
    part = L2Partitioning.paper_scheme()
    assert part.total_bytes == 12 * MB
    group, nbytes = part.slice_for("island_creation")
    assert "broadphase" in group and nbytes == 4 * MB
    shared = L2Partitioning.shared(16 * MB)
    group, nbytes = shared.slice_for("cloth")
    assert nbytes == 16 * MB

    ded = L2Partitioning.dedicated("narrowphase", 2 * MB)
    assert ded.slice_for("narrowphase") == (("narrowphase",), 2 * MB)
    rest, _ = ded.slice_for("cloth")
    assert "narrowphase" not in rest


def test_machine_default_config():
    machine = ParallaxMachine()
    assert machine.config.cg_cores == 1
    assert machine.config.l2.total_bytes == MB
    assert ParallaxConfig(cg_cores=4).cg_cores == 4
