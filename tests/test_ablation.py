"""Unit tests for the feature-ablation framework (``repro.ablation``).

Covers the registry contract (patch validation, selection), matrix
generation with memoized dedup, the runner end-to-end at tiny scale,
the batch-packing digest identity the framework is built on, and the
byte-compatibility of the extracted single-mechanism studies with the
committed ``results/ablation_*.txt`` artifacts.
"""

import os

import pytest

from repro.ablation import (
    AblationConfig,
    AblationRunner,
    Feature,
    FeatureRegistry,
    TABLE3_WORKLOADS,
    default_registry,
    make_report,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ---------------------------------------------------------------------------
# registry


class TestFeatureRegistry:
    def test_default_registry_has_at_least_eight_features(self):
        assert len(default_registry()) >= 8

    def test_default_registry_names(self):
        names = default_registry().names()
        for expected in ("warm_start", "autosleep", "ccd",
                         "broadphase_sap", "numpy_fastpath",
                         "batch_packing", "watchdog", "l2_partitioning",
                         "prefetch"):
            assert expected in names

    def test_unknown_patch_key_rejected(self):
        with pytest.raises(ValueError, match="unknown patch keys"):
            Feature("bad", "d", patch={"solver": "off"})

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ValueError, match="unknown WorldConfig"):
            Feature("bad", "d", patch={"config": {"not_a_field": 1}})

    def test_arch_feature_requires_arch_keys(self):
        with pytest.raises(ValueError, match="needs arch_keys"):
            Feature("bad", "d", kind="arch")

    def test_non_arch_feature_rejects_arch_keys(self):
        with pytest.raises(ValueError, match="arch-only"):
            Feature("bad", "d", arch_keys=("a", "b"))

    def test_batch_feature_requires_batch_key(self):
        with pytest.raises(ValueError, match="'batch' patch key"):
            Feature("bad", "d", kind="batch",
                    patch={"backend": "numpy"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown feature kind"):
            Feature("bad", "d", kind="quantum")

    def test_duplicate_registration_rejected(self):
        reg = FeatureRegistry([Feature("f", "d")])
        with pytest.raises(ValueError, match="already registered"):
            reg.register(Feature("f", "d2"))

    def test_select_comma_string_and_all(self):
        reg = default_registry()
        assert [f.name for f in reg.select("ccd, warm_start")] \
            == ["ccd", "warm_start"]
        assert len(reg.select("all")) == len(reg)
        assert len(reg.select(None)) == len(reg)

    def test_select_unknown_name(self):
        with pytest.raises(KeyError, match="unknown feature"):
            default_registry().select("not_a_feature")

    def test_workload_applicability(self):
        f = Feature("f", "d", workloads=("mix",))
        assert f.applicable("mix") and not f.applicable("periodic")
        assert Feature("g", "d").applicable("anything")

    def test_to_dict_round_trips_fields(self):
        f = default_registry().get("batch_packing")
        d = f.to_dict()
        assert d["kind"] == "batch"
        assert d["patch"]["batch"] is True
        assert d["base_patch"] == {"backend": "numpy"}


# ---------------------------------------------------------------------------
# matrix generation


class TestMatrix:
    def test_baseline_shared_across_features(self):
        cfg = AblationConfig(workloads="periodic", jobs=1)
        cells, requests = AblationRunner(cfg).build_matrix()
        # Every engine feature with an empty base patch shares the
        # baseline request; arch features add no cells at all.
        assert cells[(None, "periodic", "baseline")] \
            == cells[("ccd", "periodic", "base")] \
            == cells[("warm_start", "periodic", "base")]
        assert ("l2_partitioning", "periodic", "base") not in cells
        assert len(requests) < len(cells)

    def test_batch_base_dedups_against_numpy_toggle(self):
        cfg = AblationConfig(workloads="periodic", jobs=1)
        cells, _requests = AblationRunner(cfg).build_matrix()
        assert cells[("batch_packing", "periodic", "base")] \
            == cells[("numpy_fastpath", "periodic", "toggled")]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workloads"):
            AblationConfig(workloads="periodic,atlantis")

    def test_table3_workloads_resolve(self):
        assert AblationConfig(workloads="table3").workloads \
            == list(TABLE3_WORKLOADS)

    def test_pairwise_adds_merged_cells(self):
        cfg = AblationConfig(workloads="periodic", pairwise=True,
                             features="warm_start,ccd", jobs=1)
        cells, _ = AblationRunner(cfg).build_matrix()
        assert ("warm_start+ccd", "periodic", "pair") in cells

    def test_merge_patches_conflict_returns_none(self):
        merge = AblationRunner._merge_patches
        assert merge({"backend": "numpy"}, {"backend": "scalar"}) is None
        assert merge({"config": {"ccd": False}},
                     {"config": {"ccd": True}}) is None
        merged = merge({"config": {"ccd": False}},
                       {"config": {"warm_starting": False}})
        assert merged == {"config": {"ccd": False,
                                     "warm_starting": False}}


# ---------------------------------------------------------------------------
# runner (tiny end-to-end)


class TestRunner:
    @pytest.fixture(scope="class")
    def payload(self):
        cfg = AblationConfig(workloads="continuous", scale=0.02,
                             frames=2, jobs=1, batch_worlds=2)
        return AblationRunner(cfg).run()

    def test_every_feature_scored(self, payload):
        assert len(payload["features"]) >= 8
        for feature in payload["features"].values():
            summary = feature["summary"]
            assert "importance" in summary
            assert summary["workloads"] == 1

    def test_toggling_keeps_world_valid(self, payload):
        for name, feature in payload["features"].items():
            assert feature["summary"]["all_validate_ok"], name

    def test_matrix_memoization_reported(self, payload):
        matrix = payload["matrix"]
        assert matrix["unique_runs"] < matrix["total_cells"]
        assert matrix["memo_hits"] \
            == matrix["total_cells"] - matrix["unique_runs"]

    def test_numpy_fastpath_digest_unchanged(self, payload):
        # The numpy backend is bit-identical to the scalar oracle by
        # contract, so toggling it must not move the trajectory.
        cell = payload["features"]["numpy_fastpath"]["workloads"][
            "continuous"]
        assert cell["digest_changed"] is False

    def test_arch_features_priced_from_baseline(self, payload):
        modeled = payload["baseline"]["continuous"]["modeled"]
        cell = payload["features"]["l2_partitioning"]["workloads"][
            "continuous"]
        assert cell["base_fps"] == modeled["modeled_fps_paper"]
        assert cell["toggled_fps"] == modeled["modeled_fps_shared_l2"]
        assert cell["digest_changed"] is False

    def test_report_envelope(self, payload):
        report = make_report(payload)
        assert report["schema"] == "repro-ablation-report/1"
        assert report["ablation"] is payload


def test_batch_packing_is_bit_identical_across_worlds():
    """Packing N worlds must not perturb any member's trajectory —
    including worlds whose bodies share uid values (uid scopes are
    per-session, so cross-world uid collisions are the normal case)."""
    from repro.api import Session, SessionGroup, SessionSpec

    def spec(seed):
        return SessionSpec("highspeed", scale=0.02, seed=seed,
                           backend="numpy")

    solo = [Session.create(spec(s)) for s in range(2)]
    for s in solo:
        s.step(2)
    packed = [Session.create(spec(s)) for s in range(2)]
    SessionGroup(packed).step(2)
    for a, b in zip(solo, packed):
        assert a.state_digest() == b.state_digest()


# ---------------------------------------------------------------------------
# studies


class TestStudies:
    def test_studies_match_committed_artifacts(self):
        from repro.ablation.studies import STUDIES

        for name, fn in STUDIES.items():
            path = os.path.join(REPO, "results", f"{name}.txt")
            with open(path, encoding="utf-8") as fh:
                committed = fh.read()
            _rows, text = fn()
            assert text + "\n" == committed, (
                f"{name} drifted from results/{name}.txt; regenerate "
                f"with: python -m repro.analysis --experiments {name}")

    def test_ccd_config_toggle_matches_threshold_ablation(self):
        """WorldConfig.ccd=False reproduces the old module-threshold
        monkeypatch: the fast bullet tunnels, the slow one cannot."""
        from repro.ablation.studies import _tunnel_test

        assert _tunnel_test(30.0, False)        # too slow to tunnel
        assert not _tunnel_test(288.0, False)   # tunnels without CCD
        assert _tunnel_test(288.0, True)        # CCD stops it
