"""Benchmark construction, running, validation, and the cost model."""

import pytest

from repro.profiling import PARALLEL_PHASES, mean_report
from repro.profiling.tasks import cg_speedup
from repro.workloads import (
    BENCHMARKS,
    get_benchmark,
    run_benchmark,
    validate_world,
)

# Paper Table 3 benchmark set (reduced scale in tests).
EXPECTED_BENCHMARKS = {"periodic", "ragdoll", "breakable", "deformable",
                       "explosions"}


class TestBenchmarkRegistry:
    def test_paper_benchmarks_present(self):
        assert EXPECTED_BENCHMARKS <= set(BENCHMARKS)

    def test_get_benchmark_unknown_name(self):
        with pytest.raises(KeyError):
            get_benchmark("definitely-not-a-benchmark")

    def test_build_returns_world_and_driver(self):
        world, driver = get_benchmark("periodic").build(scale=0.05, seed=1)
        assert world.bodies
        world.step()  # usable immediately


class TestBenchmarkRuns:
    @pytest.mark.parametrize("name", sorted(EXPECTED_BENCHMARKS))
    def test_runs_clean_at_reduced_scale(self, name):
        run = run_benchmark(name, scale=0.05, frames=2, seed=3)
        report = validate_world(run.world)
        assert report.ok, report.summary()

    def test_periodic_acceptance_case(self):
        """The ISSUE acceptance criterion, verbatim."""
        run = run_benchmark("periodic", scale=0.1, frames=3)
        assert len(run.reports) == 3
        assert validate_world(run.world).ok

    def test_table4_row_fields(self):
        run = run_benchmark("ragdoll", scale=0.05, frames=2)
        row = run.table4_row()
        assert row["benchmark"] == "ragdoll"
        assert row["objects"] > 0
        assert row["obj_pairs"] >= 0
        assert row["islands"] >= 1

    def test_deformable_has_cloth(self):
        run = run_benchmark("deformable", scale=0.05, frames=2)
        row = run.table4_row()
        assert row["cloth_objects"] >= 1
        assert row["cloth_vertices"] > 0

    def test_measured_is_mean_of_tail(self):
        run = run_benchmark("periodic", scale=0.05, frames=3,
                            measure_from=1)
        manual = mean_report(run.reports[1:])
        assert (run.measured.total_instructions()
                == manual.total_instructions())


class TestCostModel:
    def _report(self):
        return run_benchmark("ragdoll", scale=0.05, frames=2).measured

    def test_instructions_positive_for_active_phases(self):
        per_phase = self._report().phase_instructions()
        assert per_phase["narrowphase"] > 0
        assert per_phase["island_processing"] > 0

    def test_cg_speedup_monotone_in_cores(self):
        report = self._report()
        s1 = cg_speedup(report, 1)
        s4 = cg_speedup(report, 4)
        s16 = cg_speedup(report, 16)
        assert s1 == pytest.approx(1.0)
        assert s1 <= s4 <= s16

    def test_cg_speedup_bounded_by_amdahl(self):
        """Serial phases cap the speedup below the core count."""
        report = self._report()
        assert cg_speedup(report, 64) < 64.0

    def test_parallel_phases_match_paper(self):
        assert PARALLEL_PHASES == ("narrowphase", "island_processing",
                                   "cloth")
