"""PaxLint: per-rule fixtures, suppression/baseline mechanics, the
self-lint gate, and the PAX201/PAX202 contract-regression demos.

Every rule gets at least one snippet that must trigger and one that
must not.  Snippets are written into a throwaway ``repro`` package
tree because the determinism rules are scoped to the simulation
packages by module path.
"""

import json
import os
import shutil
import textwrap

import pytest

from repro.lint import all_rules, lint_paths
from repro.lint.baseline import Baseline
from repro.lint.cli import main as lint_main

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def write_module(root, relpath, code):
    """Write ``code`` at ``root/relpath``, creating package inits."""
    path = os.path.join(root, relpath)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    cur = os.path.join(root, relpath.split("/")[0])
    for part in relpath.split("/")[1:-1]:
        init = os.path.join(cur, "__init__.py")
        if not os.path.exists(init):
            open(init, "w").close()
        cur = os.path.join(cur, part)
    init = os.path.join(cur, "__init__.py")
    if not os.path.exists(init) and relpath.endswith(".py") \
            and os.path.basename(relpath) != "__init__.py":
        open(init, "w").close()
    with open(path, "w") as fh:
        fh.write(textwrap.dedent(code))
    return path


def lint_snippet(tmp_path, code, select,
                 relpath="repro/engine/mod.py"):
    root = str(tmp_path)
    write_module(root, "repro/__init__.py", "")
    write_module(root, relpath, code)
    result = lint_paths([os.path.join(root, "repro")], select=[select])
    return [f for f in result.findings if f.rule == select]


def active(findings):
    return [f for f in findings if not f.suppressed]


# -- PAX101: unordered iteration ----------------------------------------

def test_pax101_triggers_on_set_for_loop(tmp_path):
    hits = lint_snippet(tmp_path, """\
        bodies = {1, 2, 3}
        out = []
        for b in bodies:
            out.append(b)
        """, "PAX101")
    assert len(hits) == 1 and hits[0].line == 3


def test_pax101_triggers_on_listcomp_from_set(tmp_path):
    hits = lint_snippet(tmp_path, """\
        seen = set()
        order = [x for x in seen]
        """, "PAX101")
    assert len(hits) == 1


def test_pax101_ignores_sorted_and_reductions(tmp_path):
    hits = lint_snippet(tmp_path, """\
        bodies = {1, 2, 3}
        out = []
        for b in sorted(bodies):
            out.append(b)
        n = len(bodies)
        top = max(b for b in bodies)
        ok = any(b > 1 for b in bodies)
        """, "PAX101")
    assert hits == []


def test_pax101_ignores_non_sim_modules(tmp_path):
    hits = lint_snippet(tmp_path, """\
        bodies = {1, 2, 3}
        out = [b for b in bodies]
        """, "PAX101", relpath="repro/analysis/mod.py")
    assert hits == []


# -- PAX102: id() -------------------------------------------------------

def test_pax102_triggers_on_id(tmp_path):
    hits = lint_snippet(tmp_path, """\
        def key_of(geom):
            return id(geom)
        """, "PAX102")
    assert len(hits) == 1


def test_pax102_ignores_uid_and_non_sim(tmp_path):
    assert lint_snippet(tmp_path, """\
        def key_of(geom):
            return geom.uid
        """, "PAX102") == []
    assert lint_snippet(tmp_path, "x = id(object())\n", "PAX102",
                        relpath="repro/workloads/mod.py") == []


# -- PAX103: unseeded RNG -----------------------------------------------

def test_pax103_triggers_on_global_rng(tmp_path):
    hits = lint_snippet(tmp_path, """\
        import random
        import numpy as np

        def jitter():
            a = random.random()
            b = np.random.rand(3)
            rng = np.random.default_rng()
            return a, b, rng
        """, "PAX103")
    assert len(hits) == 3


def test_pax103_allows_seeded_rng(tmp_path):
    hits = lint_snippet(tmp_path, """\
        import random
        import numpy as np

        def jitter(seed):
            rng = random.Random(seed)
            gen = np.random.default_rng(seed)
            return rng.random() + gen.standard_normal()
        """, "PAX103")
    assert hits == []


# -- PAX104: wall clock -------------------------------------------------

def test_pax104_triggers_on_wall_clock(tmp_path):
    hits = lint_snippet(tmp_path, """\
        import time
        from time import perf_counter
        from datetime import datetime

        def stamp(world):
            world.t0 = time.time()
            world.t1 = perf_counter()
            world.t2 = datetime.now()
        """, "PAX104")
    assert len(hits) == 3


def test_pax104_ignores_profiling_and_sim_time(tmp_path):
    assert lint_snippet(tmp_path, """\
        def stamp(world, dt):
            world.time += dt
        """, "PAX104") == []
    assert lint_snippet(tmp_path, """\
        import time

        def measure():
            return time.perf_counter()
        """, "PAX104", relpath="repro/profiling/mod.py") == []


# -- PAX105: unordered accumulation -------------------------------------

def test_pax105_triggers_on_sum_over_set(tmp_path):
    hits = lint_snippet(tmp_path, """\
        energies = {1.0, 2.0}
        total = sum(energies)
        also = sum(e * 2.0 for e in energies)
        """, "PAX105")
    assert len(hits) == 2


def test_pax105_triggers_on_augassign_in_set_loop(tmp_path):
    hits = lint_snippet(tmp_path, """\
        energies = {1.0, 2.0}
        total = 0.0
        for e in energies:
            total += e
        """, "PAX105")
    assert len(hits) == 1


def test_pax105_ignores_ordered_sum(tmp_path):
    hits = lint_snippet(tmp_path, """\
        energies = [1.0, 2.0]
        total = sum(energies)
        srt = sum(sorted({3.0, 4.0}))
        """, "PAX105")
    # sum over a list is ordered; sum(sorted(...)) is ordered too
    assert [h.line for h in hits] == []


# -- PAX106: swallowed exceptions ---------------------------------------

def test_pax106_triggers_on_bare_and_silent_except(tmp_path):
    hits = lint_snippet(tmp_path, """\
        def step(world):
            try:
                world.advance()
            except:
                pass

        def step2(world):
            try:
                world.advance()
            except Exception:
                pass
        """, "PAX106")
    assert len(hits) == 2


def test_pax106_allows_specific_or_handled(tmp_path):
    hits = lint_snippet(tmp_path, """\
        def step(world):
            try:
                world.advance()
            except ValueError:
                pass

        def step2(world):
            try:
                world.advance()
            except Exception:
                world.health = "bad"
                raise
        """, "PAX106")
    assert hits == []


# -- PAX107: mutable shared state ---------------------------------------

def test_pax107_triggers_on_module_mutable_and_default(tmp_path):
    hits = lint_snippet(tmp_path, """\
        cache = {}

        def step(world, pending=[]):
            pending.append(world)
        """, "PAX107")
    assert len(hits) == 2


def test_pax107_allows_constants_and_immutable_defaults(tmp_path):
    hits = lint_snippet(tmp_path, """\
        DISPATCH = {"a": 1}
        NAMES = ["x", "y"]

        def step(world, pending=(), scale=1.0):
            return pending, scale
        """, "PAX107")
    assert hits == []


# -- PAX201: snapshot completeness --------------------------------------

BODY_OK = """\
    class Body:
        def __init__(self):
            self.position = 0.0
            self.velocity = 0.0

        def snapshot_state(self):
            return {"position": self.position,
                    "velocity": self.velocity}

        def restore_state(self, state):
            self.position = state["position"]
            self.velocity = state["velocity"]
    """


def test_pax201_clean_body_passes(tmp_path):
    hits = lint_snippet(tmp_path, BODY_OK, "PAX201",
                        relpath="repro/dynamics/body.py")
    assert hits == []


def test_pax201_triggers_on_unsnapshotted_field(tmp_path):
    code = BODY_OK.replace(
        '"velocity": self.velocity}', '}').replace(
        'self.velocity = state["velocity"]', 'pass')
    hits = lint_snippet(tmp_path, code, "PAX201",
                        relpath="repro/dynamics/body.py")
    assert len(hits) == 1
    assert "velocity" in hits[0].message
    assert hits[0].line == 4  # the self.velocity = ... declaration


def test_pax201_demo_deleting_snapshot_field_fails_lint(tmp_path):
    """Acceptance demo: drop one line from the real Body.snapshot_state
    and the real tree stops linting clean."""
    root = str(tmp_path / "demo")
    shutil.copytree(os.path.join(REPO_SRC, "repro"),
                    os.path.join(root, "repro"))
    body_py = os.path.join(root, "repro", "dynamics", "body.py")
    with open(body_py) as fh:
        text = fh.read()
    assert '"sleep_timer": self.sleep_timer,' in text
    with open(body_py, "w") as fh:
        fh.write(text.replace('"sleep_timer": self.sleep_timer,', ""))
    result = lint_paths([os.path.join(root, "repro")],
                        select=["PAX201"])
    msgs = [f.message for f in active(result.findings)]
    assert any("sleep_timer" in m for m in msgs)


def test_pax201_demo_deleting_world_capture_field_fails_lint(tmp_path):
    root = str(tmp_path / "demo")
    shutil.copytree(os.path.join(REPO_SRC, "repro"),
                    os.path.join(root, "repro"))
    snap_py = os.path.join(root, "repro", "resilience", "checkpoint.py")
    with open(snap_py) as fh:
        text = fh.read()
    assert '"culled": world.culled,' in text
    with open(snap_py, "w") as fh:
        fh.write(text.replace('"culled": world.culled,', ""))
    result = lint_paths([os.path.join(root, "repro")],
                        select=["PAX201"])
    msgs = [f.message for f in active(result.findings)]
    assert any("culled" in m for m in msgs)


# -- PAX202: fastpath kernel coverage -----------------------------------

def _mini_fastpath(tmp_path, registry, kernel="def warp(x):\n"
                                              "    return x\n"):
    root = str(tmp_path)
    write_module(root, "repro/__init__.py", "")
    write_module(root, "repro/dynamics/solver.py",
                 "def solve_island(rows, iters):\n    return rows\n")
    write_module(root, "repro/fastpath/kernels.py", kernel)
    write_module(root, "repro/fastpath/__init__.py",
                 f"SCALAR_COUNTERPARTS = {registry!r}\n")
    result = lint_paths([os.path.join(root, "repro")],
                        select=["PAX202"])
    return active(result.findings)


def test_pax202_clean_registry_passes(tmp_path):
    hits = _mini_fastpath(
        tmp_path,
        {"kernels.warp": "repro.dynamics.solver.solve_island"})
    assert hits == []


def test_pax202_triggers_on_unmapped_kernel(tmp_path):
    hits = _mini_fastpath(tmp_path, {})
    assert len(hits) == 1 and "no scalar counterpart" in hits[0].message


def test_pax202_triggers_on_dangling_key_and_value(tmp_path):
    hits = _mini_fastpath(
        tmp_path,
        {"kernels.warp": "repro.dynamics.solver.gone",
         "kernels.vanished": "repro.dynamics.solver.solve_island"})
    messages = " | ".join(f.message for f in hits)
    assert "does not resolve" in messages
    assert "unknown kernel 'kernels.vanished'" in messages


def test_pax202_demo_renaming_kernel_fails_lint(tmp_path):
    """Acceptance demo: rename a real fastpath kernel and the registry
    cross-check fails on the stale entry."""
    root = str(tmp_path / "demo")
    shutil.copytree(os.path.join(REPO_SRC, "repro"),
                    os.path.join(root, "repro"))
    solver_py = os.path.join(root, "repro", "fastpath", "solver.py")
    with open(solver_py) as fh:
        text = fh.read()
    assert "def solve_islands(" in text
    with open(solver_py, "w") as fh:
        fh.write(text.replace("def solve_islands(",
                              "def solve_islands_v2("))
    result = lint_paths([os.path.join(root, "repro")],
                        select=["PAX202"])
    msgs = [f.message for f in active(result.findings)]
    assert any("solver.solve_islands" in m and "renamed" in m
               for m in msgs)
    assert any("solver.solve_islands_v2" in m for m in msgs)


# -- suppressions & PAX001 ----------------------------------------------

def test_suppression_with_reason_silences(tmp_path):
    hits = lint_snippet(tmp_path, """\
        def key_of(geom):
            return id(geom)  # pax: ignore[PAX102]: stable in-process
        """, "PAX102")
    assert len(hits) == 1 and hits[0].suppressed
    assert hits[0].suppress_reason == "stable in-process"


def test_suppression_on_preceding_line_silences(tmp_path):
    hits = lint_snippet(tmp_path, """\
        def key_of(geom):
            # pax: ignore[PAX102]: debugging aid, not used in ordering
            return id(geom)
        """, "PAX102")
    assert len(hits) == 1 and hits[0].suppressed


def test_pax001_on_reasonless_or_unknown_suppression(tmp_path):
    hits = lint_snippet(tmp_path, """\
        x = 1  # pax: ignore[PAX102]
        y = 2  # pax: ignore[PAX999]: no such rule
        """, "PAX001")
    assert len(hits) == 2
    assert "no reason" in hits[0].message
    assert "unknown rule" in hits[1].message


def test_reasonless_suppression_does_not_silence(tmp_path):
    hits = lint_snippet(tmp_path, """\
        def key_of(geom):
            return id(geom)  # pax: ignore[PAX102]
        """, "PAX102")
    assert len(hits) == 1 and not hits[0].suppressed


# -- baseline -----------------------------------------------------------

def test_baseline_absorbs_known_findings(tmp_path):
    root = str(tmp_path)
    write_module(root, "repro/__init__.py", "")
    write_module(root, "repro/engine/mod.py",
                 "def f(g):\n    return id(g)\n")
    pkg = os.path.join(root, "repro")
    first = lint_paths([pkg], select=["PAX102"])
    assert len(active(first.findings)) == 1
    base = Baseline.from_findings(first.findings)
    second = lint_paths([pkg], select=["PAX102"], baseline=base)
    assert second.exit_code == 0
    assert len(second.baselined) == 1
    # a *new* finding still fails
    write_module(root, "repro/engine/mod.py",
                 "def f(g):\n    return id(g)\n\n"
                 "def h(g):\n    return id(g) + 1\n")
    third = lint_paths([pkg], select=["PAX102"], baseline=base)
    assert third.exit_code == 1
    assert len(third.active) == 1


def test_baseline_roundtrip(tmp_path):
    path = str(tmp_path / "base.json")
    finding_src = str(tmp_path)
    write_module(finding_src, "repro/__init__.py", "")
    write_module(finding_src, "repro/engine/mod.py",
                 "bad = id(object())\n")
    result = lint_paths([os.path.join(finding_src, "repro")],
                        select=["PAX102"])
    Baseline.from_findings(result.findings).save(path)
    loaded = Baseline.load(path)
    assert sum(loaded.counts.values()) == 1


# -- CLI ----------------------------------------------------------------

def test_cli_explain_covers_every_rule(capsys):
    for rule in all_rules():
        assert lint_main(["--explain", rule.code]) == 0
        out = capsys.readouterr().out
        assert rule.code in out
        assert len(out.strip().splitlines()) >= 3  # has a rationale


def test_cli_json_format_and_exit_codes(tmp_path, capsys):
    root = str(tmp_path)
    write_module(root, "repro/__init__.py", "")
    write_module(root, "repro/engine/mod.py",
                 "bad = id(object())\n")
    pkg = os.path.join(root, "repro")
    code = lint_main([pkg, "--format", "json", "--no-baseline",
                      "--select", "PAX102"])
    data = json.loads(capsys.readouterr().out)
    assert code == 1
    assert data["counts"]["new"] == 1
    assert data["findings"][0]["rule"] == "PAX102"


def test_cli_select_unknown_rule_is_usage_error(tmp_path, capsys):
    root = str(tmp_path)
    write_module(root, "repro/__init__.py", "")
    write_module(root, "repro/engine/mod.py", "x = 1\n")
    code = lint_main([os.path.join(root, "repro"),
                      "--select", "PAX9"])
    assert code == 2
    assert "matches no rule" in capsys.readouterr().err


# -- the repo itself ----------------------------------------------------

def test_self_lint_repo_is_clean():
    """`python -m repro.lint src/repro` must exit 0: every finding in
    the tree is either fixed or carries a justified suppression."""
    result = lint_paths([os.path.join(REPO_SRC, "repro")])
    assert active(result.findings) == [], [
        f.render() for f in active(result.findings)]


def test_self_lint_cli_exit_zero(capsys):
    assert lint_main([os.path.join(REPO_SRC, "repro")]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_every_rule_has_fixture_coverage():
    """Meta-test: every shipped rule code appears in at least one
    triggering test above (grep this file)."""
    with open(__file__) as fh:
        text = fh.read()
    for rule in all_rules():
        assert text.count(rule.code) >= 2, rule.code


@pytest.mark.parametrize("code", [r.code for r in all_rules()])
def test_rationales_are_substantial(code):
    from repro.lint import get_rule
    rule = get_rule(code)
    assert len(rule.rationale) > 120
    assert rule.name
