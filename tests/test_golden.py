"""Golden-trajectory regression fixtures.

Three Table 3 workloads have their full state trajectories checked in
under ``tests/fixtures/``.  The test replays each workload under the
session's active backend (``REPRO_BACKEND``; the CI matrix runs both)
and demands *exact* equality with the fixture — JSON round-trips
doubles through ``repr``, so equality here is bit-equality.  Any
change to stepping arithmetic, on either backend, trips these.

Regenerate deliberately with::

    python -m pytest tests/test_golden.py --regen-golden
"""

import os

import pytest

from repro.engine.recorder import TrajectoryRecorder
from repro.workloads.benchmarks import BENCHMARKS

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")
GOLDEN = ("periodic", "ragdoll", "continuous")
FRAMES = 8
SCALE = 0.03


def _record(name):
    world, driver = BENCHMARKS[name].build(scale=SCALE, seed=0)
    return TrajectoryRecorder(world).record(FRAMES, driver)


def _normalized(trajectory):
    """Rebase body uids on the recording's first body.

    Uids come from a process-global counter, so their absolute values
    depend on how many bodies earlier tests created; the offsets
    within one recording are deterministic.
    """
    if not trajectory or not trajectory[0]:
        return trajectory
    base = trajectory[0][0][0]
    return [[[state[0] - base] + list(state[1:]) for state in frame]
            for frame in trajectory]


@pytest.mark.parametrize("name", GOLDEN)
def test_golden_trajectory(name, request):
    path = os.path.join(FIXTURES, f"{name}.json")
    rec = _record(name)
    if request.config.getoption("--regen-golden"):
        os.makedirs(FIXTURES, exist_ok=True)
        rec.save_json(path)
        pytest.skip(f"regenerated {path}")
    assert os.path.exists(path), (
        f"missing fixture {path}; run pytest --regen-golden")
    golden = TrajectoryRecorder.load_json(path)
    got = _normalized([[list(state) for state in frame]
                       for frame in rec.frames])
    assert golden["frames"] == len(rec.frames)
    assert got == _normalized(golden["trajectory"]), (
        f"{name}: trajectory deviates from golden fixture; if the "
        f"change is intended, rerun with --regen-golden")
