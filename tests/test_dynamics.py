"""Solver, island, and joint unit tests."""

from repro.dynamics import (
    BallJoint,
    Body,
    ContactJoint,
    FixedJoint,
    Row,
    UnionFind,
    build_islands,
    solve_island,
)
from repro.collision import Geom, collide
from repro.geometry import Sphere
from repro.math3d import Vec3


def _dynamic_body(pos, mass=1.0):
    body = Body(position=pos)
    body.set_mass_from_shape(Sphere(0.5), density=mass / 0.5236)
    return body


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind(6)
        assert uf.union(0, 1)
        assert uf.union(2, 3)
        assert not uf.union(1, 0)  # already merged
        assert uf.find(0) == uf.find(1)
        assert uf.find(2) == uf.find(3)
        assert uf.find(0) != uf.find(4)

    def test_transitive(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)


class TestIslands:
    def test_two_disjoint_islands(self):
        bodies = [_dynamic_body(Vec3(i, 0, 0)) for i in range(4)]
        for i, b in enumerate(bodies):
            b.index = i
        j01 = BallJoint(bodies[0], bodies[1], Vec3(0.5, 0, 0))
        j23 = BallJoint(bodies[2], bodies[3], Vec3(2.5, 0, 0))
        islands, merges = build_islands(bodies, [], [j01, j23])
        with_constraints = [isl for isl in islands if isl.joints]
        assert len(with_constraints) == 2
        assert merges >= 2

    def test_static_does_not_merge(self):
        """Two dynamic bodies touching the same static geom must stay in
        separate islands (the paper's island definition excludes
        statics)."""
        a = _dynamic_body(Vec3(0, 1, 0))
        b = _dynamic_body(Vec3(10, 1, 0))
        a.index, b.index = 0, 1
        static_geom = Geom(Sphere(0.5))

        class FakeContactJoint:
            def __init__(self, body):
                self._body = body
                self.enabled = True
                self.broken = False

            def connected_bodies(self):
                return (self._body, None)

        islands, _ = build_islands(
            [a, b], [FakeContactJoint(a), FakeContactJoint(b)], [])
        populated = [isl for isl in islands if isl.contact_joints]
        assert len(populated) == 2

    def test_island_order_deterministic(self):
        bodies = [_dynamic_body(Vec3(i, 0, 0)) for i in range(6)]
        for i, b in enumerate(bodies):
            b.index = i
        joints = [BallJoint(bodies[4], bodies[5], Vec3(4.5, 0, 0)),
                  BallJoint(bodies[0], bodies[1], Vec3(0.5, 0, 0))]
        islands, _ = build_islands(bodies, [], joints)
        populated = [isl for isl in islands if isl.joints]
        firsts = [min(b.index for b in isl.bodies) for isl in populated]
        assert firsts == sorted(firsts)


class TestSolver:
    def test_row_updates_accounting(self):
        a = _dynamic_body(Vec3(0, 0, 0))
        b = _dynamic_body(Vec3(1, 0, 0))
        rows = [Row(a, b, Vec3(1, 0, 0), Vec3(), Vec3(-1, 0, 0), Vec3(),
                    rhs=0.0) for _ in range(3)]
        stats = solve_island(rows, 20)
        assert stats.row_updates == 20 * len(rows)
        assert stats.iterations == 20

    def test_normal_row_stops_approach(self):
        """A contact-like row should cancel the approach velocity."""
        a = _dynamic_body(Vec3(0, 0, 0))
        b = _dynamic_body(Vec3(1, 0, 0))
        a.linear_velocity = Vec3(1, 0, 0)   # a moving toward b
        n = Vec3(-1, 0, 0)                  # normal from b toward a
        row = Row(a, b, n, Vec3(), -n, Vec3(), rhs=0.0, lo=0.0, hi=1e18)
        solve_island([row], 20)
        rel = (a.linear_velocity - b.linear_velocity).dot(n)
        assert rel >= -1e-9  # no longer approaching

    def test_impulse_clamped_to_bounds(self):
        a = _dynamic_body(Vec3(0, 0, 0))
        b = _dynamic_body(Vec3(1, 0, 0))
        a.linear_velocity = Vec3(10, 0, 0)
        n = Vec3(-1, 0, 0)
        row = Row(a, b, n, Vec3(), -n, Vec3(), rhs=0.0, lo=-0.1, hi=0.1)
        solve_island([row], 20)
        assert -0.1 - 1e-12 <= row.impulse <= 0.1 + 1e-12


class TestJoints:
    def test_contact_joint_builds_three_rows(self):
        a = Geom(Sphere(1.0), body=_dynamic_body(Vec3(0, 0, 0)))
        b = Geom(Sphere(1.0), body=_dynamic_body(Vec3(1.5, 0, 0)))
        contact = collide(a, b)[0]
        joint = ContactJoint(contact)
        rows = joint.begin_step(0.01, 0.2)
        assert len(rows) == 3  # one normal + two friction rows
        normal_row, f1, f2 = rows
        assert normal_row.lo == 0.0  # contacts push, never pull
        # Friction rows reference the normal row for the cone clamp.
        assert f1.friction_of is normal_row
        assert f2.friction_of is normal_row

    def test_ball_joint_anchor_error(self):
        a = _dynamic_body(Vec3(0, 0, 0))
        b = _dynamic_body(Vec3(1, 0, 0))
        joint = BallJoint(a, b, Vec3(0.5, 0, 0))
        assert joint.anchor_error() < 1e-12
        b.position = Vec3(1, 0.3, 0)  # drift apart
        assert abs(joint.anchor_error() - 0.3) < 1e-9

    def test_fixed_joint_breaks_over_threshold(self):
        a = _dynamic_body(Vec3(0, 0, 0))
        b = _dynamic_body(Vec3(1, 0, 0))
        joint = FixedJoint(a, b, break_threshold=1e-6)
        rows = joint.begin_step(0.01, 0.2)
        for row in rows:
            row.impulse = 10.0  # huge reaction
        joint.end_step(0.01)
        assert joint.broken

    def test_fixed_joint_survives_under_threshold(self):
        a = _dynamic_body(Vec3(0, 0, 0))
        b = _dynamic_body(Vec3(1, 0, 0))
        joint = FixedJoint(a, b, break_threshold=1e9)
        joint.begin_step(0.01, 0.2)
        joint.end_step(0.01)
        assert not joint.broken
