"""Hypothesis property tests for the fastpath kernels.

Randomized agreement checks between the vectorized kernels and their
scalar oracles: SAP pair sets against brute force, PGS impulses and
stats against the scalar solver, cloth relaxation against the
reference ``Cloth``.  Marked ``property`` so the fast tier-1 run can
exclude them (``-m "not property"``); CI runs them in their own step.
"""

import math
import random

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cloth import Cloth
from repro.collision import BruteForceBroadphase, Geom, SweepAndPrune
from repro.dynamics import Body
from repro.dynamics.solver import Row, solve_island
from repro.fastpath import cloth as fp_cloth
from repro.fastpath.broadphase import VectorSweepAndPrune
from repro.fastpath.solver import solve_island_soa
from repro.geometry import Sphere
from repro.math3d import Vec3

pytestmark = pytest.mark.property

RELAXED = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


# -- broadphase ---------------------------------------------------------

_coord = st.floats(-15.0, 15.0, allow_nan=False, allow_infinity=False)
_radius = st.floats(0.1, 4.0, allow_nan=False, allow_infinity=False)
_geom_specs = st.lists(
    st.tuples(_coord, _coord, _coord, _radius, st.booleans()),
    min_size=0, max_size=40)


def _make_geoms(specs):
    geoms = []
    for i, (x, y, z, r, static) in enumerate(specs):
        body = Body(position=Vec3(x, y, z),
                    mass=0.0 if static else 1.0)
        g = Geom(Sphere(r), body=body)
        g.index = i
        geoms.append(g)
    return geoms


def _pair_set(pairs):
    return {tuple(sorted((ga.index, gb.index))) for ga, gb in pairs}


@RELAXED
@given(specs=_geom_specs, moves=st.lists(st.tuples(_coord, _coord,
                                                   _coord),
                                         min_size=0, max_size=40))
def test_sap_pairs_match_brute_force(specs, moves):
    """Vectorized SAP emits exactly the brute-force AABB overlap set
    (minus static-static), including on incremental re-sweeps."""
    geoms = _make_geoms(specs)
    fast = VectorSweepAndPrune()
    scalar = SweepAndPrune()
    for frame in range(2):
        brute = _pair_set(BruteForceBroadphase().pairs(geoms))
        assert _pair_set(fast.pairs(geoms)) == brute
        assert _pair_set(scalar.pairs(geoms)) == brute
        # Second frame exercises the incremental near-sorted path.
        for g, (dx, dy, dz) in zip(geoms, moves):
            g.body.position += Vec3(dx * 0.1, dy * 0.1, dz * 0.1)


# -- PGS solver ---------------------------------------------------------

def _build_island(seed, n_bodies, n_rows):
    """Random bodies + rows; same seed -> bit-identical island."""
    rng = random.Random(seed)
    bodies = []
    for _ in range(n_bodies):
        mass = 0.0 if rng.random() < 0.2 else rng.uniform(0.5, 5.0)
        b = Body(position=Vec3(rng.uniform(-2, 2), rng.uniform(-2, 2),
                               rng.uniform(-2, 2)), mass=mass)
        b.linear_velocity = Vec3(rng.uniform(-3, 3), rng.uniform(-3, 3),
                                 rng.uniform(-3, 3))
        b.angular_velocity = Vec3(rng.uniform(-2, 2),
                                  rng.uniform(-2, 2),
                                  rng.uniform(-2, 2))
        bodies.append(b)

    def vec():
        return Vec3(rng.uniform(-1, 1), rng.uniform(-1, 1),
                    rng.uniform(-1, 1))

    rows = []
    for _ in range(n_rows):
        ia, ib = rng.sample(range(n_bodies), 2)
        kind = rng.random()
        if kind < 0.5:
            # Contact normal + optional friction pair.
            normal = Row(bodies[ia], bodies[ib], vec(), vec(), vec(),
                         vec(), rhs=rng.uniform(-1, 1), lo=0.0,
                         hi=float("inf"), cfm=rng.uniform(0.0, 1e-6))
            rows.append(normal)
            if rng.random() < 0.7:
                rows.append(Row(bodies[ia], bodies[ib], vec(), vec(),
                                vec(), vec(), rhs=0.0,
                                friction_of=normal,
                                friction_coeff=rng.uniform(0.1, 1.0)))
        elif kind < 0.8:
            # Bilateral (joint-style) row.
            rows.append(Row(bodies[ia], bodies[ib], vec(), vec(),
                            vec(), vec(), rhs=rng.uniform(-1, 1),
                            cfm=rng.uniform(0.0, 1e-6)))
        else:
            lo = rng.uniform(-2, 0)
            rows.append(Row(bodies[ia], bodies[ib], vec(), vec(),
                            vec(), vec(), rhs=rng.uniform(-1, 1),
                            lo=lo, hi=lo + rng.uniform(0.0, 3.0)))
    return bodies, rows


@RELAXED
@given(seed=st.integers(0, 2**31 - 1), n_bodies=st.integers(2, 10),
       n_rows=st.integers(0, 30), iterations=st.integers(1, 12),
       strategy=st.sampled_from(["flat", "levels"]))
def test_pgs_soa_matches_scalar(seed, n_bodies, n_rows, iterations,
                                strategy):
    """Both SoA strategies reproduce the scalar PGS sweep exactly:
    same impulses, same body velocities, same SolveStats."""
    bodies_s, rows_s = _build_island(seed, n_bodies, n_rows)
    bodies_f, rows_f = _build_island(seed, n_bodies, n_rows)

    stats_s = solve_island(rows_s, iterations)
    stats_f = solve_island_soa(rows_f, iterations, strategy=strategy)

    assert stats_s.rows == stats_f.rows
    assert stats_s.iterations == stats_f.iterations
    assert stats_s.row_updates == stats_f.row_updates
    assert stats_s.max_delta == stats_f.max_delta
    assert stats_s.residual == stats_f.residual
    for rs, rf in zip(rows_s, rows_f):
        assert rs.impulse == rf.impulse
    for bs, bf in zip(bodies_s, bodies_f):
        assert (bs.linear_velocity.x, bs.linear_velocity.y,
                bs.linear_velocity.z) == (bf.linear_velocity.x,
                                          bf.linear_velocity.y,
                                          bf.linear_velocity.z)
        assert (bs.angular_velocity.x, bs.angular_velocity.y,
                bs.angular_velocity.z) == (bf.angular_velocity.x,
                                           bf.angular_velocity.y,
                                           bf.angular_velocity.z)


@RELAXED
@given(seed=st.integers(0, 2**31 - 1), n_bodies=st.integers(2, 8),
       n_rows=st.integers(1, 20), iterations=st.integers(1, 10))
def test_pgs_impulses_respect_bounds(seed, n_bodies, n_rows,
                                     iterations):
    """Projected impulses stay inside [lo, hi]; friction magnitudes
    stay inside the cone set by their normal row's final impulse."""
    _, rows = _build_island(seed, n_bodies, n_rows)
    solve_island_soa(rows, iterations)
    for row in rows:
        if row.inv_k == 0.0:
            # Degenerate row (e.g. static-static pair): solve_once
            # bails before projecting, so impulse stays 0 even when
            # 0 is outside [lo, hi].  Both backends agree on this.
            assert row.impulse == 0.0
            continue
        if row.friction_of is not None:
            bound = row.friction_coeff * row.friction_of.impulse
            assert abs(row.impulse) <= bound + 1e-9
        else:
            assert row.lo - 1e-12 <= row.impulse <= row.hi + 1e-12
        assert math.isfinite(row.impulse)


# -- cloth --------------------------------------------------------------

def _noisy_cloth(nx, ny, spacing, seed, pin):
    cloth = Cloth(nx, ny, spacing, Vec3(0.0, 2.0, 0.0),
                  pin_top_row=pin)
    rng = random.Random(seed)
    noise = np.array([[rng.uniform(-0.3, 0.3) * spacing
                       for _ in range(3)]
                      for _ in range(nx * ny)])
    cloth.positions = cloth.positions + noise
    return cloth


@RELAXED
@given(nx=st.integers(2, 7), ny=st.integers(2, 7),
       spacing=st.floats(0.1, 0.5, allow_nan=False),
       seed=st.integers(0, 2**31 - 1), pin=st.booleans())
def test_cloth_relaxation_residual_non_increasing(nx, ny, spacing,
                                                  seed, pin):
    """A relaxation pass never worsens the worst constraint error."""
    cloth = _noisy_cloth(nx, ny, spacing, seed, pin)
    before = cloth.max_stretch()
    for _ in range(cloth.ITERATIONS):
        cloth._relax_once()
    assert cloth.max_stretch() <= before + 1e-12


@RELAXED
@given(nx=st.integers(2, 7), ny=st.integers(2, 7),
       spacing=st.floats(0.1, 0.5, allow_nan=False),
       seed=st.integers(0, 2**31 - 1), pin=st.booleans())
def test_fastpath_cloth_step_bit_identical(nx, ny, spacing, seed, pin):
    """fastpath.step_cloth reproduces Cloth.step to the last bit."""
    a = _noisy_cloth(nx, ny, spacing, seed, pin)
    b = _noisy_cloth(nx, ny, spacing, seed, pin)
    a.ground_height = b.ground_height = 1.0
    gravity = Vec3(0.0, -9.81, 0.0)
    for _ in range(3):
        stats_a = a.step(1.0 / 240.0, gravity)
        stats_b = fp_cloth.step_cloth(b, 1.0 / 240.0, gravity)
        assert stats_a == stats_b
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.prev_positions, b.prev_positions)
