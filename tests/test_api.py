"""The session-first public API: SessionSpec, Session, SessionGroup,
the legacy deprecation shims, and dynamic BatchWorld membership."""

import json
import warnings

import pytest

from repro.api import Session, SessionGroup, SessionSpec, run_scenario
from repro.engine import World, WorldConfig
from repro.workloads import run_benchmark


def spec(name="periodic", **kw):
    kw.setdefault("scale", 0.05)
    kw.setdefault("backend", "numpy")
    return SessionSpec(name, **kw)


class TestSessionSpec:
    def test_json_round_trip(self):
        original = spec("explosions", seed=7,
                        config=WorldConfig(gravity=(0.0, -5.0, 0.0)),
                        watchdog=True,
                        faults=[{"step": 4, "kind": "huge_impulse",
                                 "persistent": False}])
        wire = json.loads(json.dumps(original.to_dict()))
        assert SessionSpec.from_dict(wire) == original

    def test_resolved_pins_backend(self):
        unpinned = SessionSpec("periodic")
        assert unpinned.resolved().backend in ("numpy", "scalar")

    def test_unknown_config_field_rejected(self):
        with pytest.raises(TypeError):
            WorldConfig().replace(not_a_field=1.0)


class TestDeprecationShims:
    def test_world_kwargs_warn_but_apply(self):
        with pytest.warns(DeprecationWarning,
                          match=r"World\(\*\*tunables\) is "
                                r"deprecated"):
            world = World(gravity=(0.0, -3.0, 0.0), dt=0.002)
        assert world.config.gravity == (0.0, -3.0, 0.0)
        assert world.config.dt == 0.002

    def test_world_kwargs_alongside_config_rejected(self):
        with pytest.raises(TypeError):
            World(config=WorldConfig(), dt=0.001)

    def test_world_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError):
            World(gravityy=(0.0, 0.0, 0.0))

    def test_run_benchmark_warns_and_matches_run_scenario(self):
        with pytest.warns(DeprecationWarning,
                          match="run_benchmark.. is deprecated"):
            legacy = run_benchmark("periodic", frames=3, scale=0.05,
                                   backend="numpy")
        modern = run_scenario(spec(), frames=3)
        assert legacy.total_instructions() == \
            modern.total_instructions()
        assert len(legacy.reports) == len(modern.reports)

    def test_config_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            World(config=WorldConfig(dt=0.004))


class TestSession:
    def test_two_sessions_same_spec_same_digest(self):
        a = Session.create(spec())
        b = Session.create(spec())
        a.step(4)
        b.step(4)
        assert a.state_digest() == b.state_digest()

    def test_describe_is_json_native(self):
        session = Session.create(spec())
        session.step(2)
        status = json.loads(json.dumps(session.describe()))
        assert status["frame_index"] == 2
        assert status["scenario"] == "periodic"
        assert len(status["digest"]) == 64

    def test_closed_session_refuses_steps(self):
        session = Session.create(spec())
        session.close()
        with pytest.raises(RuntimeError):
            session.step()

    def test_seed_changes_trajectory(self):
        a = Session.create(spec("periodic", seed=0))
        b = Session.create(spec("periodic", seed=1))
        a.step(3)
        b.step(3)
        assert a.state_digest() != b.state_digest()


class TestSessionGroup:
    def test_dynamic_membership_matches_solo(self):
        solos = [Session.create(spec(seed=i)) for i in range(3)]
        grouped = [Session.create(spec(seed=i)) for i in range(3)]

        group = SessionGroup(grouped[:2])
        group.step(2)
        group.add(grouped[2])  # joins mid-flight
        for solo in solos[:2]:
            solo.step(2)
        group.step(3)
        for solo in solos[:2]:
            solo.step(3)
        solos[2].step(3)

        removed = grouped[1]
        group.remove(removed)
        group.step(2)
        solos[0].step(2)
        solos[2].step(2)

        assert grouped[0].state_digest() == solos[0].state_digest()
        assert removed.state_digest() == solos[1].state_digest()
        assert grouped[2].state_digest() == solos[2].state_digest()

    def test_batchworld_rejects_duplicate_membership(self):
        from repro.fastpath import BatchWorld
        session = Session.create(spec())
        batch = BatchWorld([session.world])
        with pytest.raises(ValueError):
            batch.add_world(session.world)

    def test_guarded_session_steps_solo_but_identically(self):
        guarded = Session.create(spec(watchdog=True))
        solo = Session.create(spec(watchdog=True))
        plain = Session.create(spec(seed=3))
        group = SessionGroup([guarded, plain])
        group.step(4)
        solo.step(4)
        assert guarded.state_digest() == solo.state_digest()
