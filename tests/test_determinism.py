"""Determinism: two seeded runs must produce bit-identical
trajectories."""

import pytest

from repro.engine import World, WorldConfig
from repro.engine.recorder import (
    TrajectoryRecorder,
    assert_deterministic,
    trajectory_divergence,
)
from repro.dynamics import Body
from repro.geometry import Box, Plane, Sphere
from repro.math3d import Vec3
from repro.workloads import get_benchmark


def _build_mixed_scene():
    """A seeded scene touching most subsystems: stacks, spheres,
    friction, multi-island contacts."""
    import random
    rng = random.Random(1234)
    world = World(WorldConfig())
    world.add_static_geom(Plane(Vec3(0, 1, 0), 0.0))
    for k in range(3):
        body = Body(position=Vec3(0, 0.5 + k, 0))
        world.attach(body, Box(Vec3(0.5, 0.5, 0.5)), density=500.0)
    for _ in range(6):
        body = Body(position=Vec3(rng.uniform(-3, 3), rng.uniform(1, 3),
                                  rng.uniform(-3, 3)))
        world.attach(body, Sphere(rng.uniform(0.2, 0.5)), density=800.0)
    return world, None


class TestDeterminism:
    def test_mixed_scene_bit_identical(self):
        divergence = assert_deterministic(_build_mixed_scene, frames=6)
        assert divergence == 0.0

    @pytest.mark.parametrize("name", ["periodic", "ragdoll", "breakable"])
    def test_benchmarks_bit_identical(self, name):
        bench = get_benchmark(name)
        divergence = assert_deterministic(
            lambda: bench.build(scale=0.05, seed=7), frames=3)
        assert divergence == 0.0

    def test_divergence_detects_difference(self):
        """The checker is not vacuous: perturbed runs report nonzero
        divergence."""
        world_a, _ = _build_mixed_scene()
        world_b, _ = _build_mixed_scene()
        world_b.bodies[0].position += Vec3(1e-6, 0, 0)
        rec_a = TrajectoryRecorder(world_a).record(3)
        rec_b = TrajectoryRecorder(world_b).record(3)
        assert trajectory_divergence(rec_a, rec_b) > 0.0

    def test_assert_deterministic_raises_on_nondeterminism(self):
        import itertools
        counter = itertools.count()

        def build_unstable():
            world, _ = _build_mixed_scene()
            # Different initial state on each call.
            world.bodies[0].position += Vec3(1e-3 * next(counter), 0, 0)
            return world, None

        with pytest.raises(AssertionError):
            assert_deterministic(build_unstable, frames=2)


class TestRecorder:
    def test_positions_array_shape(self):
        world, _ = _build_mixed_scene()
        rec = TrajectoryRecorder(world).record(4)
        arr = rec.positions_array()
        assert arr.shape == (5, len(world.bodies), 3)  # frames+initial

    def test_mid_run_spawns_backfilled(self):
        """Bodies attached while recording pad earlier frames with their
        spawn position, keeping the tensor rectangular."""
        world, _ = _build_mixed_scene()
        rec = TrajectoryRecorder(world)
        n0 = len(world.bodies)
        spawned = []

        def driver():
            if not spawned:
                body = Body(position=Vec3(8.0, 4.0, 8.0))
                world.attach(body, Sphere(0.3), density=500.0)
                spawned.append(body)

        rec.record(3, driver)
        arr = rec.positions_array()
        assert arr.shape == (4, n0 + 1, 3)
        # Frame 0 predates the spawn: backfilled with first-seen state.
        assert arr[0, n0, 0] == arr[1, n0, 0]

    def test_save_and_load_json(self, tmp_path):
        world, _ = _build_mixed_scene()
        rec = TrajectoryRecorder(world).record(2)
        path = str(tmp_path / "traj.json")
        rec.save_json(path)
        data = TrajectoryRecorder.load_json(path)
        assert data["frames"] == 3
        assert len(data["trajectory"]) == 3
