"""Make ``src/`` importable whether or not PYTHONPATH is set, and pin
the Hypothesis execution profiles."""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

try:
    from hypothesis import settings
    from hypothesis import Verbosity
except ImportError:  # property tests are skipped without hypothesis
    settings = None

if settings is not None:
    # CI must be reproducible run-to-run: derandomize derives every
    # example from the test body itself, so a red CI run is replayable
    # locally with no seed hunting.  Locally we keep true randomness
    # for coverage, but print the failing example blob so a repro is
    # one @reproduce_failure away.
    settings.register_profile("ci", derandomize=True,
                              print_blob=True, max_examples=100)
    settings.register_profile("dev", print_blob=True,
                              verbosity=Verbosity.normal)
    settings.load_profile(
        "ci" if os.environ.get("CI") else
        os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite the golden trajectory fixtures under "
             "tests/fixtures/ instead of comparing against them")
