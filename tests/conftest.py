"""Make ``src/`` importable whether or not PYTHONPATH is set."""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite the golden trajectory fixtures under "
             "tests/fixtures/ instead of comparing against them")
