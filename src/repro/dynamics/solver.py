"""Velocity-level constraint rows and the projected Gauss-Seidel solver.

Every joint (including contacts) compiles to one or more :class:`Row`
objects each step. A row is the scalar constraint

    J v = [lin_a ang_a lin_b ang_b] . [va wa vb wb] -> rhs

with the impulse accumulated over iterations clamped to [lo, hi]
(projected GS / sequential impulses, i.e. ODE's quickstep). Friction
rows reference their normal row so the friction cone is re-clamped with
the current normal impulse every iteration.
"""

from __future__ import annotations

from ..math3d import Vec3


class Row:
    __slots__ = (
        "body_a", "body_b", "lin_a", "ang_a", "lin_b", "ang_b",
        "rhs", "cfm", "lo", "hi", "impulse", "inv_k",
        "friction_of", "friction_coeff", "joint",
    )

    def __init__(self, body_a, body_b, lin_a: Vec3, ang_a: Vec3,
                 lin_b: Vec3, ang_b: Vec3, rhs: float = 0.0,
                 lo: float = float("-inf"), hi: float = float("inf"),
                 cfm: float = 0.0, friction_of: "Row" = None,
                 friction_coeff: float = 0.0, joint=None):
        self.body_a = body_a
        self.body_b = body_b
        self.lin_a = lin_a
        self.ang_a = ang_a
        self.lin_b = lin_b
        self.ang_b = ang_b
        self.rhs = rhs
        self.cfm = cfm
        self.lo = lo
        self.hi = hi
        self.impulse = 0.0
        self.friction_of = friction_of
        self.friction_coeff = friction_coeff
        self.joint = joint
        self.inv_k = self._effective_mass_inv()

    def _effective_mass_inv(self) -> float:
        k = self.cfm
        a, b = self.body_a, self.body_b
        if a is not None and not a.is_static:
            k += a.inv_mass * self.lin_a.length_squared()
            k += self.ang_a.dot(a.inv_inertia_world * self.ang_a)
        if b is not None and not b.is_static:
            k += b.inv_mass * self.lin_b.length_squared()
            k += self.ang_b.dot(b.inv_inertia_world * self.ang_b)
        if k < 1e-12:
            return 0.0
        return 1.0 / k

    def relative_velocity(self) -> float:
        v = 0.0
        a, b = self.body_a, self.body_b
        if a is not None:
            v += self.lin_a.dot(a.linear_velocity)
            v += self.ang_a.dot(a.angular_velocity)
        if b is not None:
            v += self.lin_b.dot(b.linear_velocity)
            v += self.ang_b.dot(b.angular_velocity)
        return v

    def apply_impulse(self, d_lambda: float):
        a, b = self.body_a, self.body_b
        if a is not None and not a.is_static:
            a.linear_velocity = a.linear_velocity + (
                self.lin_a * (d_lambda * a.inv_mass))
            a.angular_velocity = a.angular_velocity + (
                a.inv_inertia_world * (self.ang_a * d_lambda))
        if b is not None and not b.is_static:
            b.linear_velocity = b.linear_velocity + (
                self.lin_b * (d_lambda * b.inv_mass))
            b.angular_velocity = b.angular_velocity + (
                b.inv_inertia_world * (self.ang_b * d_lambda))

    def warm_start(self, impulse: float):
        """Seed the accumulated impulse from the previous step's value."""
        self.impulse = impulse
        if impulse != 0.0:
            self.apply_impulse(impulse)

    def solve_once(self):
        if self.inv_k == 0.0:
            return 0.0
        lo, hi = self.lo, self.hi
        if self.friction_of is not None:
            bound = self.friction_coeff * max(0.0, self.friction_of.impulse)
            lo, hi = -bound, bound
        d = (self.rhs - self.relative_velocity()
             - self.cfm * self.impulse) * self.inv_k
        new_impulse = min(max(self.impulse + d, lo), hi)
        d = new_impulse - self.impulse
        self.impulse = new_impulse
        if d != 0.0:
            self.apply_impulse(d)
        return d


class SolveStats:
    __slots__ = ("rows", "iterations", "row_updates", "max_delta",
                 "residual")

    def __init__(self, rows: int, iterations: int, row_updates: int,
                 max_delta: float, residual: float = 0.0):
        self.rows = rows
        self.iterations = iterations
        self.row_updates = row_updates
        self.max_delta = max_delta
        # Largest impulse change during the *final* iteration: a
        # converged island drives this toward zero, a diverging one
        # keeps it large. The step watchdog reads it as the PGS
        # non-convergence signal.
        self.residual = residual

    def __repr__(self):
        return (f"SolveStats(rows={self.rows}, iters={self.iterations},"
                f" updates={self.row_updates},"
                f" max_delta={self.max_delta:.3g},"
                f" residual={self.residual:.3g})")


def solve_island(rows, iterations: int = 20) -> SolveStats:
    """Run projected Gauss-Seidel over one island's rows.

    A fixed iteration count (no early-out) keeps the work — and thus the
    modeled instruction counts — a deterministic function of the scene,
    matching how the paper characterizes Island Processing.
    """
    rows = list(rows)
    max_delta = 0.0
    residual = 0.0
    last_iteration = iterations - 1
    for it in range(iterations):
        for row in rows:
            d = row.solve_once()
            if d < 0.0:
                d = -d
            if d > max_delta:
                max_delta = d
            if it == last_iteration and d > residual:
                residual = d
    return SolveStats(len(rows), iterations, iterations * len(rows),
                      max_delta, residual)
