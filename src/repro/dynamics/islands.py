"""Island discovery: union-find over the constraint graph.

Bodies connected (transitively) through contacts or joints must be
solved together; disconnected groups are independent LCPs — the paper's
Island Processing phase parallelizes across exactly these islands.
Static bodies (and static geoms) never merge islands.
"""

from __future__ import annotations


class UnionFind:
    __slots__ = ("parent", "rank", "merges")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.rank = [0] * n
        self.merges = 0

    def find(self, i: int) -> int:
        parent = self.parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:  # path compression
            parent[i], i = root, parent[i]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.merges += 1
        return True


class Island:
    __slots__ = ("bodies", "contact_joints", "joints")

    def __init__(self):
        self.bodies = []
        self.contact_joints = []
        self.joints = []

    def constraint_count(self) -> int:
        return len(self.contact_joints) + len(self.joints)


def build_islands(bodies, contact_joints, joints):
    """Partition dynamic bodies + constraints into islands.

    ``bodies`` must have dense ``index`` fields (the world assigns them).
    Constraints touching only static anchors still form a (single-body)
    island through their dynamic endpoint. Returns islands ordered by
    their lowest body index, so iteration order is deterministic.
    """
    n = len(bodies)
    uf = UnionFind(n)

    def endpoints(j):
        a, b = j.connected_bodies()
        ia = a.index if (a is not None and not a.is_static) else -1
        ib = b.index if (b is not None and not b.is_static) else -1
        return ia, ib

    for joint_list in (contact_joints, joints):
        for j in joint_list:
            ia, ib = endpoints(j)
            if ia >= 0 and ib >= 0:
                uf.union(ia, ib)

    islands_by_root = {}
    for body in bodies:
        if body.is_static or not body.enabled:
            continue
        root = uf.find(body.index)
        island = islands_by_root.get(root)
        if island is None:
            island = islands_by_root[root] = Island()
        island.bodies.append(body)

    def attach(j, bucket_name):
        ia, ib = endpoints(j)
        anchor = ia if ia >= 0 else ib
        if anchor < 0:
            return
        island = islands_by_root.get(uf.find(anchor))
        if island is not None:
            getattr(island, bucket_name).append(j)

    for j in contact_joints:
        attach(j, "contact_joints")
    for j in joints:
        attach(j, "joints")

    ordered = sorted(islands_by_root.values(),
                     key=lambda isl: isl.bodies[0].index)
    return ordered, uf.merges
