"""Joints: constraints compiled to solver rows each step.

All joints follow the same protocol the island processor drives:

* ``begin_step(dt, erp)`` — build and return this step's :class:`Row`
  list (world-space Jacobians + Baumgarte bias from position error);
* ``end_step(dt)`` — inspect accumulated impulses (breakage checks).

Contact normals point from ``body_b`` toward ``body_a``.
"""

from __future__ import annotations

import math

from ..math3d import Vec3
from .solver import Row


class Joint:
    def __init__(self, body_a, body_b):
        self.body_a = body_a
        self.body_b = body_b
        self.enabled = True
        self.broken = False
        self.break_threshold = None  # max reaction force (N), or None
        self.rows = []

    def connected_bodies(self):
        return (self.body_a, self.body_b)

    def begin_step(self, dt: float, erp: float = 0.2):
        raise NotImplementedError

    def end_step(self, dt: float):
        if self.break_threshold is None or self.broken:
            return
        force = self.reaction_force(dt)
        if force > self.break_threshold:
            self.broken = True
            self.enabled = False

    def reaction_force(self, dt: float) -> float:
        """Magnitude of the constraint force from the last solve."""
        if dt <= 0.0 or not self.rows:
            return 0.0
        total = 0.0
        for row in self.rows:
            total += row.impulse * row.impulse
        return math.sqrt(total) / dt

    # -- checkpointing --------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-native dynamic state. ``impulses`` (the accumulated
        impulses of the last solve) are recorded for forensics; rows are
        rebuilt from scratch each ``begin_step`` so they need no
        restoring."""
        return {
            "enabled": self.enabled,
            "broken": self.broken,
            "impulses": [row.impulse for row in self.rows],
        }

    def restore_state(self, state: dict):
        self.enabled = state["enabled"]
        self.broken = state["broken"]
        return self

    def _anchor_rows(self, dt, erp, anchor_local_a, anchor_local_b):
        """Three rows pinning a local point of each body together."""
        a, b = self.body_a, self.body_b
        ra = a.orientation.rotate(anchor_local_a)
        rb = b.orientation.rotate(anchor_local_b)
        world_a = a.position + ra
        world_b = b.position + rb
        error = world_a - world_b
        rows = []
        beta = erp / dt
        for axis in (Vec3(1, 0, 0), Vec3(0, 1, 0), Vec3(0, 0, 1)):
            rows.append(Row(
                a, b,
                lin_a=axis, ang_a=ra.cross(axis),
                lin_b=-axis, ang_b=-(rb.cross(axis)),
                rhs=-beta * error.dot(axis),
                joint=self,
            ))
        return rows


class ContactJoint(Joint):
    """One contact point: a unilateral normal row + two friction rows."""

    # Restitution only kicks in above this approach speed (m/s), so
    # resting contacts don't jitter.
    RESTITUTION_THRESHOLD = 1.0
    PENETRATION_SLOP = 0.005
    MAX_BIAS_VELOCITY = 4.0

    def __init__(self, contact, friction: float = None,
                 restitution: float = None):
        geom_a, geom_b = contact.geom_a, contact.geom_b
        super().__init__(geom_a.body, geom_b.body)
        self.contact = contact
        if friction is None:
            friction = math.sqrt(
                max(0.0, geom_a.friction * geom_b.friction))
        if restitution is None:
            restitution = max(geom_a.restitution, geom_b.restitution)
        self.friction = friction
        self.restitution = restitution
        self.normal_row = None
        self.tangent_rows = ()

    @property
    def cache_key(self):
        c = self.contact
        return (c.geom_a.index, c.geom_b.index, c.feature)

    def begin_step(self, dt: float, erp: float = 0.2):
        c = self.contact
        a, b = self.body_a, self.body_b
        n = c.normal
        ra = c.position - a.position if a is not None else Vec3()
        rb = c.position - b.position if b is not None else Vec3()

        # Normal row: push apart; Baumgarte bias for penetration depth.
        bias = min(
            erp / dt * max(0.0, c.depth - self.PENETRATION_SLOP),
            self.MAX_BIAS_VELOCITY,
        )
        rhs = bias
        vn = self._normal_velocity(n, ra, rb)
        if self.restitution > 0.0 and vn < -self.RESTITUTION_THRESHOLD:
            rhs = max(rhs, -self.restitution * vn)
        self.normal_row = Row(
            a, b,
            lin_a=n, ang_a=ra.cross(n),
            lin_b=-n, ang_b=-(rb.cross(n)),
            rhs=rhs, lo=0.0, hi=float("inf"),
            joint=self,
        )

        rows = [self.normal_row]
        if self.friction > 0.0:
            t1 = n.any_orthonormal()
            t2 = n.cross(t1)
            tangents = []
            for t in (t1, t2):
                tangents.append(Row(
                    a, b,
                    lin_a=t, ang_a=ra.cross(t),
                    lin_b=-t, ang_b=-(rb.cross(t)),
                    rhs=0.0,
                    friction_of=self.normal_row,
                    friction_coeff=self.friction,
                    joint=self,
                ))
            self.tangent_rows = tuple(tangents)
            rows.extend(tangents)
        self.rows = rows
        return rows

    def _normal_velocity(self, n, ra, rb) -> float:
        v = Vec3()
        if self.body_a is not None:
            v = v + self.body_a.linear_velocity \
                + self.body_a.angular_velocity.cross(ra)
        if self.body_b is not None:
            v = v - self.body_b.linear_velocity \
                - self.body_b.angular_velocity.cross(rb)
        return n.dot(v)

    def end_step(self, dt: float):
        pass  # contacts never break


class BallJoint(Joint):
    """Point-to-point constraint (shoulders, hips, chain links)."""

    def __init__(self, body_a, body_b, anchor_world: Vec3):
        super().__init__(body_a, body_b)
        self.anchor_local_a = body_a.orientation.rotate_inverse(
            anchor_world - body_a.position)
        self.anchor_local_b = body_b.orientation.rotate_inverse(
            anchor_world - body_b.position)

    def anchor_world(self) -> Vec3:
        return self.body_a.transform.apply(self.anchor_local_a)

    def anchor_error(self) -> float:
        wa = self.body_a.transform.apply(self.anchor_local_a)
        wb = self.body_b.transform.apply(self.anchor_local_b)
        return wa.distance_to(wb)

    def begin_step(self, dt: float, erp: float = 0.2):
        self.rows = self._anchor_rows(dt, erp, self.anchor_local_a,
                                      self.anchor_local_b)
        return self.rows


class HingeJoint(Joint):
    """Ball joint + axis alignment, with optional motor and stops."""

    def __init__(self, body_a, body_b, anchor_world: Vec3,
                 axis_world: Vec3):
        super().__init__(body_a, body_b)
        axis_world = axis_world.normalized()
        self.anchor_local_a = body_a.orientation.rotate_inverse(
            anchor_world - body_a.position)
        self.anchor_local_b = body_b.orientation.rotate_inverse(
            anchor_world - body_b.position)
        self.axis_local_a = body_a.orientation.rotate_inverse(axis_world)
        self.axis_local_b = body_b.orientation.rotate_inverse(axis_world)
        # Reference perpendicular (for measuring the hinge angle).
        ref = axis_world.any_orthonormal()
        self.ref_local_a = body_a.orientation.rotate_inverse(ref)
        self.ref_local_b = body_b.orientation.rotate_inverse(ref)
        self.motor_velocity = None
        self.motor_max_force = 0.0
        self.limit_lo = None
        self.limit_hi = None

    def set_motor(self, target_velocity: float, max_force: float):
        self.motor_velocity = target_velocity
        self.motor_max_force = max_force

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["motor_velocity"] = self.motor_velocity
        state["motor_max_force"] = self.motor_max_force
        state["limit_lo"] = self.limit_lo
        state["limit_hi"] = self.limit_hi
        return state

    def restore_state(self, state: dict):
        super().restore_state(state)
        self.motor_velocity = state["motor_velocity"]
        self.motor_max_force = state["motor_max_force"]
        self.limit_lo = state["limit_lo"]
        self.limit_hi = state["limit_hi"]
        return self

    def clear_motor(self):
        self.motor_velocity = None

    def set_limits(self, lo: float, hi: float):
        self.limit_lo = lo
        self.limit_hi = hi

    def axis_world(self) -> Vec3:
        return self.body_a.orientation.rotate(self.axis_local_a)

    def angle(self) -> float:
        """Signed rotation of body_b's reference around the hinge axis
        relative to body_a's."""
        axis = self.axis_world()
        ref_a = self.body_a.orientation.rotate(self.ref_local_a)
        ref_b = self.body_b.orientation.rotate(self.ref_local_b)
        # Project both references into the plane perpendicular to axis.
        pa = (ref_a - axis * ref_a.dot(axis)).normalized()
        pb = (ref_b - axis * ref_b.dot(axis)).normalized()
        s = axis.dot(pa.cross(pb))
        c = pa.dot(pb)
        return math.atan2(s, c)

    def begin_step(self, dt: float, erp: float = 0.2):
        rows = self._anchor_rows(dt, erp, self.anchor_local_a,
                                 self.anchor_local_b)
        a, b = self.body_a, self.body_b
        axis_a = a.orientation.rotate(self.axis_local_a)
        axis_b = b.orientation.rotate(self.axis_local_b)
        err = axis_a.cross(axis_b)
        p = axis_a.any_orthonormal()
        q = axis_a.cross(p)
        beta = erp / dt
        zero = Vec3()
        for perp in (p, q):
            rows.append(Row(
                a, b,
                lin_a=zero, ang_a=perp,
                lin_b=zero, ang_b=-perp,
                rhs=beta * err.dot(perp),
                joint=self,
            ))
        if self.motor_velocity is not None and self.motor_max_force > 0.0:
            cap = self.motor_max_force * dt
            rows.append(Row(
                a, b,
                lin_a=zero, ang_a=axis_a,
                lin_b=zero, ang_b=-axis_a,
                rhs=-self.motor_velocity,
                lo=-cap, hi=cap,
                joint=self,
            ))
        if self.limit_lo is not None or self.limit_hi is not None:
            angle = self.angle()
            if self.limit_lo is not None and angle < self.limit_lo:
                rows.append(Row(
                    a, b, lin_a=zero, ang_a=-axis_a,
                    lin_b=zero, ang_b=axis_a,
                    rhs=beta * (self.limit_lo - angle),
                    lo=0.0, hi=float("inf"), joint=self,
                ))
            elif self.limit_hi is not None and angle > self.limit_hi:
                rows.append(Row(
                    a, b, lin_a=zero, ang_a=axis_a,
                    lin_b=zero, ang_b=-axis_a,
                    rhs=beta * (angle - self.limit_hi),
                    lo=0.0, hi=float("inf"), joint=self,
                ))
        self.rows = rows
        return rows


class FixedJoint(Joint):
    """Welds two bodies rigidly; the breakable "mortar" of the paper's
    Breakable benchmark when ``break_threshold`` is set."""

    def __init__(self, body_a, body_b, break_threshold: float = None):
        super().__init__(body_a, body_b)
        mid = (body_a.position + body_b.position) * 0.5
        self.anchor_local_a = body_a.orientation.rotate_inverse(
            mid - body_a.position)
        self.anchor_local_b = body_b.orientation.rotate_inverse(
            mid - body_b.position)
        # Relative orientation to hold: q_a = q_b * q_rel.
        self.q_rel = (body_b.orientation.conjugate()
                      * body_a.orientation).normalized()
        self.break_threshold = break_threshold

    def begin_step(self, dt: float, erp: float = 0.2):
        rows = self._anchor_rows(dt, erp, self.anchor_local_a,
                                 self.anchor_local_b)
        a, b = self.body_a, self.body_b
        target = (b.orientation * self.q_rel).normalized()
        q_err = (a.orientation * target.conjugate()).normalized()
        if q_err.w < 0.0:
            q_err = type(q_err)(-q_err.w, -q_err.x, -q_err.y, -q_err.z)
        # Small-angle rotation vector taking target -> current.
        err = Vec3(2.0 * q_err.x, 2.0 * q_err.y, 2.0 * q_err.z)
        beta = erp / dt
        zero = Vec3()
        for axis in (Vec3(1, 0, 0), Vec3(0, 1, 0), Vec3(0, 0, 1)):
            rows.append(Row(
                a, b,
                lin_a=zero, ang_a=axis,
                lin_b=zero, ang_b=-axis,
                rhs=-beta * err.dot(axis),
                joint=self,
            ))
        self.rows = rows
        return rows

    def reaction_force(self, dt: float) -> float:
        # Breakage judged on the translational (shear/tension) rows only,
        # so torque units don't mix into the force threshold.
        if dt <= 0.0 or not self.rows:
            return 0.0
        total = sum(r.impulse * r.impulse for r in self.rows[:3])
        return math.sqrt(total) / dt


class SliderJoint(Joint):
    """Prismatic joint along ``axis_world`` with an optional spring —
    the car-suspension joint."""

    def __init__(self, body_a, body_b, axis_world: Vec3,
                 spring_k: float = 0.0, spring_damping: float = 0.0,
                 rest_offset: float = 0.0):
        super().__init__(body_a, body_b)
        self.axis_local_a = body_a.orientation.rotate_inverse(
            axis_world.normalized())
        self.origin_local_a = body_a.orientation.rotate_inverse(
            body_b.position - body_a.position)
        self.q_rel = (body_b.orientation.conjugate()
                      * body_a.orientation).normalized()
        self.spring_k = spring_k
        self.spring_damping = spring_damping
        self.rest_offset = rest_offset

    def travel(self) -> float:
        axis = self.body_a.orientation.rotate(self.axis_local_a)
        origin = self.body_a.position + self.body_a.orientation.rotate(
            self.origin_local_a)
        return (self.body_b.position - origin).dot(axis)

    def begin_step(self, dt: float, erp: float = 0.2):
        a, b = self.body_a, self.body_b
        axis = a.orientation.rotate(self.axis_local_a)
        origin = a.position + a.orientation.rotate(self.origin_local_a)
        offset = b.position - origin
        beta = erp / dt
        zero = Vec3()
        rows = []
        # Two translation rows perpendicular to the slide axis.
        p = axis.any_orthonormal()
        q = axis.cross(p)
        rb = Vec3()
        for perp in (p, q):
            ra = b.position - a.position
            rows.append(Row(
                a, b,
                lin_a=perp, ang_a=ra.cross(perp),
                lin_b=-perp, ang_b=-(rb.cross(perp)),
                rhs=-beta * offset.dot(perp),
                joint=self,
            ))
        # Lock relative rotation entirely.
        target = (b.orientation * self.q_rel).normalized()
        q_err = (a.orientation * target.conjugate()).normalized()
        if q_err.w < 0.0:
            q_err = type(q_err)(-q_err.w, -q_err.x, -q_err.y, -q_err.z)
        err = Vec3(2.0 * q_err.x, 2.0 * q_err.y, 2.0 * q_err.z)
        for k_axis in (Vec3(1, 0, 0), Vec3(0, 1, 0), Vec3(0, 0, 1)):
            rows.append(Row(
                a, b,
                lin_a=zero, ang_a=k_axis,
                lin_b=zero, ang_b=-k_axis,
                rhs=-beta * err.dot(k_axis),
                joint=self,
            ))
        # Suspension spring as an external force along the axis.
        if self.spring_k > 0.0:
            x = self.travel() - self.rest_offset
            v = (b.linear_velocity - a.linear_velocity).dot(axis)
            f = -self.spring_k * x - self.spring_damping * v
            b.apply_force(axis * f)
            a.apply_force(axis * -f)
        self.rows = rows
        return rows
