"""Rigid body state: mass properties, pose, velocities, accumulators."""

from __future__ import annotations

from ..math3d import (
    Mat3,
    Quaternion,
    Transform,
    Vec3,
    rotate_inertia,
    shape_mass_inertia,
)


class Body:
    _next_uid = 0

    def __init__(self, position: Vec3 = None, orientation: Quaternion = None,
                 mass: float = 1.0):
        self.position = position if position is not None else Vec3()
        self.orientation = (orientation if orientation is not None
                            else Quaternion.identity())
        self.linear_velocity = Vec3()
        self.angular_velocity = Vec3()
        self.force = Vec3()
        self.torque = Vec3()
        self.enabled = True
        self.sleeping = False
        self.sleep_timer = 0.0
        self.gravity_scale = 1.0
        # World-assigned dense index; uid is a global creation counter so
        # bodies order deterministically even before attachment.
        # pax: ignore[PAX201]: structural slot in world.bodies; restore
        # matches bodies positionally, so index never changes under it.
        self.index = -1
        # pax: ignore[PAX201]: snapshotted, and *verified* (never
        # overwritten) by WorldSnapshot.restore's uid match check.
        self.uid = Body._next_uid
        Body._next_uid += 1

        self.set_mass(mass, Mat3.diagonal(0.4 * mass, 0.4 * mass,
                                          0.4 * mass))
        # pax: ignore[PAX201]: derived cache (R I^-1 R^T), invalidated
        # on every pose write and lazily rebuilt; never authoritative.
        self._inv_inertia_world = None

    def __repr__(self):
        return f"Body(#{self.uid} at {self.position!r})"

    # -- mass properties ------------------------------------------------
    def set_mass(self, mass: float, inertia_body: Mat3):
        self.mass = float(mass)
        self.inertia_body = inertia_body
        if mass <= 0.0:
            self.inv_mass = 0.0
            self.inv_inertia_body = Mat3.zero()
        else:
            self.inv_mass = 1.0 / mass
            self.inv_inertia_body = inertia_body.inverse()
        self._inv_inertia_world = None

    def set_mass_from_shape(self, shape, density: float = 1000.0):
        mass, inertia = shape_mass_inertia(shape, density)
        self.set_mass(mass, inertia)
        return self

    @property
    def is_static(self) -> bool:
        return self.inv_mass == 0.0

    # -- derived state --------------------------------------------------
    @property
    def transform(self) -> Transform:
        return Transform(self.position, self.orientation)

    def refresh_world_inertia(self):
        """Recompute R * I^-1 * R^T; call once per step before solving."""
        rot = self.orientation.to_mat3()
        self._inv_inertia_world = rotate_inertia(self.inv_inertia_body, rot)
        return self._inv_inertia_world

    @property
    def inv_inertia_world(self) -> Mat3:
        if self._inv_inertia_world is None:
            self.refresh_world_inertia()
        return self._inv_inertia_world

    def velocity_at_point(self, world_point: Vec3) -> Vec3:
        r = world_point - self.position
        return self.linear_velocity + self.angular_velocity.cross(r)

    def kinetic_energy(self) -> float:
        lin = 0.5 * self.mass * self.linear_velocity.length_squared()
        w = self.angular_velocity
        rot = self.orientation.to_mat3()
        i_world = rotate_inertia(self.inertia_body, rot)
        ang = 0.5 * w.dot(i_world * w)
        return lin + ang

    # -- accumulators ---------------------------------------------------
    def apply_force(self, force: Vec3, at_point: Vec3 = None):
        self.force = self.force + force
        if at_point is not None:
            self.torque = self.torque + (at_point - self.position).cross(
                force)

    def apply_torque(self, torque: Vec3):
        self.torque = self.torque + torque

    def apply_impulse(self, impulse: Vec3, at_point: Vec3 = None):
        if self.inv_mass == 0.0:
            return
        self.linear_velocity = self.linear_velocity + impulse * self.inv_mass
        if at_point is not None:
            r = at_point - self.position
            self.angular_velocity = self.angular_velocity + (
                self.inv_inertia_world * r.cross(impulse))

    def clear_accumulators(self):
        self.force = Vec3()
        self.torque = Vec3()

    def wake(self):
        self.sleeping = False
        self.sleep_timer = 0.0

    def is_finite(self) -> bool:
        return (self.position.is_finite()
                and self.orientation.is_finite()
                and self.linear_velocity.is_finite()
                and self.angular_velocity.is_finite())

    # -- checkpointing --------------------------------------------------
    def snapshot_state(self) -> dict:
        """Full dynamic state as JSON-native data (see repro.resilience).

        Mass properties are included so a restore heals state corrupted
        mid-run (e.g. a fault-injected inertia tensor)."""
        p, q = self.position, self.orientation
        v, w = self.linear_velocity, self.angular_velocity
        f, t = self.force, self.torque
        return {
            "uid": self.uid,
            "position": [p.x, p.y, p.z],
            "orientation": [q.w, q.x, q.y, q.z],
            "linear_velocity": [v.x, v.y, v.z],
            "angular_velocity": [w.x, w.y, w.z],
            "force": [f.x, f.y, f.z],
            "torque": [t.x, t.y, t.z],
            "enabled": self.enabled,
            "sleeping": self.sleeping,
            "sleep_timer": self.sleep_timer,
            "gravity_scale": self.gravity_scale,
            "mass": self.mass,
            "inertia_body": [row[:] for row in self.inertia_body.m],
        }

    def restore_state(self, state: dict):
        self.position = Vec3(*state["position"])
        self.orientation = Quaternion(*state["orientation"])
        self.linear_velocity = Vec3(*state["linear_velocity"])
        self.angular_velocity = Vec3(*state["angular_velocity"])
        self.force = Vec3(*state["force"])
        self.torque = Vec3(*state["torque"])
        self.enabled = state["enabled"]
        self.sleeping = state["sleeping"]
        self.sleep_timer = state["sleep_timer"]
        self.gravity_scale = state["gravity_scale"]
        self.set_mass(state["mass"], Mat3(state["inertia_body"]))
        return self
