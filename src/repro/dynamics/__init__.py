"""Rigid-body dynamics: bodies, joints, islands, the PGS solver."""

from .body import Body
from .islands import Island, UnionFind, build_islands
from .joints import (
    BallJoint,
    ContactJoint,
    FixedJoint,
    HingeJoint,
    Joint,
    SliderJoint,
)
from .solver import Row, SolveStats, solve_island

__all__ = [
    "Body",
    "Row",
    "SolveStats",
    "solve_island",
    "Joint",
    "ContactJoint",
    "BallJoint",
    "HingeJoint",
    "FixedJoint",
    "SliderJoint",
    "Island",
    "UnionFind",
    "build_islands",
]
