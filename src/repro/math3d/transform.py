"""Rigid transform: rotation (quaternion) + translation."""

from __future__ import annotations

from typing import Optional

from .quaternion import Quaternion
from .vec3 import Vec3


class Transform:
    __slots__ = ("position", "orientation")

    position: Vec3
    orientation: Quaternion

    def __init__(self, position: Optional[Vec3] = None,
                 orientation: Optional[Quaternion] = None) -> None:
        self.position = position if position is not None else Vec3()
        self.orientation = (orientation if orientation is not None
                            else Quaternion.identity())

    @staticmethod
    def identity() -> "Transform":
        return Transform()

    def __repr__(self) -> str:
        return f"Transform({self.position!r}, {self.orientation!r})"

    def apply(self, local_point: Vec3) -> Vec3:
        """Local -> world."""
        return self.orientation.rotate(local_point) + self.position

    def apply_inverse(self, world_point: Vec3) -> Vec3:
        """World -> local."""
        return self.orientation.rotate_inverse(world_point - self.position)

    def apply_vector(self, local_vec: Vec3) -> Vec3:
        """Rotate only (directions, not points)."""
        return self.orientation.rotate(local_vec)

    def compose(self, other: "Transform") -> "Transform":
        """self ∘ other: apply ``other`` first, then ``self``."""
        return Transform(
            self.apply(other.position),
            (self.orientation * other.orientation).normalized(),
        )

    def inverse(self) -> "Transform":
        inv_q = self.orientation.conjugate()
        return Transform(inv_q.rotate(-self.position), inv_q)
