"""Row-major 3x3 matrix (rotations, inertia tensors)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union, overload

from .vec3 import Vec3


class Mat3:
    __slots__ = ("m",)

    m: List[List[float]]

    def __init__(
            self,
            rows: Optional[Sequence[Sequence[float]]] = None) -> None:
        if rows is None:
            self.m = [
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ]
        else:
            self.m = [[float(v) for v in row] for row in rows]

    @staticmethod
    def identity() -> "Mat3":
        return Mat3()

    @staticmethod
    def zero() -> "Mat3":
        return Mat3([[0.0] * 3 for _ in range(3)])

    @staticmethod
    def diagonal(a: float, b: float, c: float) -> "Mat3":
        return Mat3([[a, 0.0, 0.0], [0.0, b, 0.0], [0.0, 0.0, c]])

    @staticmethod
    def from_columns(c0: Vec3, c1: Vec3, c2: Vec3) -> "Mat3":
        return Mat3([
            [c0.x, c1.x, c2.x],
            [c0.y, c1.y, c2.y],
            [c0.z, c1.z, c2.z],
        ])

    def __getitem__(self, idx: int) -> List[float]:
        return self.m[idx]

    def __repr__(self) -> str:
        return f"Mat3({self.m})"

    def row(self, i: int) -> Vec3:
        return Vec3(*self.m[i])

    def column(self, j: int) -> Vec3:
        return Vec3(self.m[0][j], self.m[1][j], self.m[2][j])

    def transpose(self) -> "Mat3":
        m = self.m
        return Mat3([
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        ])

    def __add__(self, o: "Mat3") -> "Mat3":
        return Mat3([
            [self.m[i][j] + o.m[i][j] for j in range(3)] for i in range(3)
        ])

    def __sub__(self, o: "Mat3") -> "Mat3":
        return Mat3([
            [self.m[i][j] - o.m[i][j] for j in range(3)] for i in range(3)
        ])

    def scaled(self, s: float) -> "Mat3":
        return Mat3([[v * s for v in row] for row in self.m])

    @overload
    def __mul__(self, other: Vec3) -> Vec3: ...

    @overload
    def __mul__(self, other: "Mat3") -> "Mat3": ...

    @overload
    def __mul__(self, other: float) -> "Mat3": ...

    def __mul__(
            self,
            other: Union[Vec3, "Mat3", float]) -> Union[Vec3, "Mat3"]:
        if isinstance(other, Vec3):
            m = self.m
            return Vec3(
                m[0][0] * other.x + m[0][1] * other.y + m[0][2] * other.z,
                m[1][0] * other.x + m[1][1] * other.y + m[1][2] * other.z,
                m[2][0] * other.x + m[2][1] * other.y + m[2][2] * other.z,
            )
        if isinstance(other, Mat3):
            a, b = self.m, other.m
            return Mat3([
                [
                    a[i][0] * b[0][j] + a[i][1] * b[1][j] + a[i][2] * b[2][j]
                    for j in range(3)
                ]
                for i in range(3)
            ])
        return self.scaled(float(other))

    def determinant(self) -> float:
        m = self.m
        return (
            m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
        )

    def inverse(self) -> "Mat3":
        m = self.m
        det = self.determinant()
        if abs(det) < 1e-30:
            raise ZeroDivisionError("singular Mat3")
        inv = 1.0 / det
        return Mat3([
            [
                (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv,
                (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv,
                (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv,
            ],
            [
                (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv,
                (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv,
                (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv,
            ],
            [
                (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv,
                (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv,
                (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv,
            ],
        ])

    @staticmethod
    def skew(v: Vec3) -> "Mat3":
        """Cross-product matrix: skew(v) * w == v.cross(w)."""
        return Mat3([
            [0.0, -v.z, v.y],
            [v.z, 0.0, -v.x],
            [-v.y, v.x, 0.0],
        ])
