"""3D math primitives: vectors, matrices, quaternions, transforms,
inertia tensors."""

from .inertia import (
    box_inertia,
    capsule_inertia,
    point_mass_inertia,
    rotate_inertia,
    shape_mass_inertia,
    sphere_inertia,
)
from .mat3 import Mat3
from .quaternion import Quaternion
from .transform import Transform
from .vec3 import Vec3

__all__ = [
    "Vec3",
    "Mat3",
    "Quaternion",
    "Transform",
    "sphere_inertia",
    "box_inertia",
    "capsule_inertia",
    "point_mass_inertia",
    "shape_mass_inertia",
    "rotate_inertia",
]
