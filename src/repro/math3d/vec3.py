"""3-component vector used throughout the engine.

Plain Python floats (not numpy) keep single-object math fast and every
operation bit-deterministic across runs, which the determinism checker
(`repro.engine.recorder.assert_deterministic`) relies on.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence


class Vec3:
    __slots__ = ("x", "y", "z")

    x: float
    y: float
    z: float

    def __init__(self, x: float = 0.0, y: float = 0.0,
                 z: float = 0.0) -> None:
        self.x = float(x)
        self.y = float(y)
        self.z = float(z)

    # -- construction helpers -------------------------------------------
    @staticmethod
    def zero() -> "Vec3":
        return Vec3(0.0, 0.0, 0.0)

    @staticmethod
    def from_seq(seq: Sequence[float]) -> "Vec3":
        return Vec3(seq[0], seq[1], seq[2])

    def copy(self) -> "Vec3":
        return Vec3(self.x, self.y, self.z)

    # -- arithmetic -----------------------------------------------------
    def __add__(self, o: "Vec3") -> "Vec3":
        return Vec3(self.x + o.x, self.y + o.y, self.z + o.z)

    def __sub__(self, o: "Vec3") -> "Vec3":
        return Vec3(self.x - o.x, self.y - o.y, self.z - o.z)

    def __mul__(self, s: float) -> "Vec3":
        return Vec3(self.x * s, self.y * s, self.z * s)

    __rmul__ = __mul__

    def __truediv__(self, s: float) -> "Vec3":
        inv = 1.0 / s
        return Vec3(self.x * inv, self.y * inv, self.z * inv)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    def __getitem__(self, i: int) -> float:
        return (self.x, self.y, self.z)[i]

    def __eq__(self, o: object) -> bool:
        return (
            isinstance(o, Vec3)
            and self.x == o.x and self.y == o.y and self.z == o.z
        )

    def __hash__(self) -> int:
        return hash((self.x, self.y, self.z))

    def __repr__(self) -> str:
        return f"Vec3({self.x:.6g}, {self.y:.6g}, {self.z:.6g})"

    # -- products -------------------------------------------------------
    def dot(self, o: "Vec3") -> float:
        return self.x * o.x + self.y * o.y + self.z * o.z

    def cross(self, o: "Vec3") -> "Vec3":
        return Vec3(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )

    def scale(self, o: "Vec3") -> "Vec3":
        """Component-wise product."""
        return Vec3(self.x * o.x, self.y * o.y, self.z * o.z)

    # -- norms ----------------------------------------------------------
    def length_squared(self) -> float:
        return self.x * self.x + self.y * self.y + self.z * self.z

    def length(self) -> float:
        return math.sqrt(self.length_squared())

    def distance_to(self, o: "Vec3") -> float:
        return (self - o).length()

    def normalized(self) -> "Vec3":
        n = self.length()
        if n < 1e-12:
            return Vec3(0.0, 0.0, 0.0)
        return self / n

    def is_finite(self) -> bool:
        return (
            math.isfinite(self.x)
            and math.isfinite(self.y)
            and math.isfinite(self.z)
        )

    def any_orthonormal(self) -> "Vec3":
        """A unit vector perpendicular to ``self`` (assumed non-zero)."""
        if abs(self.x) < 0.57735:
            base = Vec3(1.0, 0.0, 0.0)
        else:
            base = Vec3(0.0, 1.0, 0.0)
        return self.cross(base).normalized()
