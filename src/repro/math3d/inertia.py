"""Body-frame inertia tensors for the primitive shapes.

All return (mass, Mat3 inertia-about-center) given a density, matching
ODE's dMass* helpers.
"""

from __future__ import annotations

import math
from typing import Any, Tuple

from .mat3 import Mat3
from .vec3 import Vec3

MassInertia = Tuple[float, Mat3]


def sphere_inertia(radius: float, density: float) -> MassInertia:
    mass = density * (4.0 / 3.0) * math.pi * radius ** 3
    i = 0.4 * mass * radius * radius
    return mass, Mat3.diagonal(i, i, i)


def box_inertia(half_extents: Vec3, density: float) -> MassInertia:
    dx, dy, dz = (2 * half_extents.x, 2 * half_extents.y,
                  2 * half_extents.z)
    mass = density * dx * dy * dz
    k = mass / 12.0
    return mass, Mat3.diagonal(
        k * (dy * dy + dz * dz),
        k * (dx * dx + dz * dz),
        k * (dx * dx + dy * dy),
    )


def capsule_inertia(radius: float, length: float,
                    density: float) -> MassInertia:
    """Capsule aligned with the local y axis; ``length`` is the
    cylindrical section (total height = length + 2*radius)."""
    r2 = radius * radius
    cyl_mass = density * math.pi * r2 * length
    cap_mass = density * (4.0 / 3.0) * math.pi * radius ** 3
    mass = cyl_mass + cap_mass
    # Cylinder about its center.
    i_axial = 0.5 * cyl_mass * r2
    i_trans = cyl_mass * (0.25 * r2 + length * length / 12.0)
    # Hemispheres: sphere inertia + parallel-axis shift to ends.
    i_sph = 0.4 * cap_mass * r2
    h = 0.5 * length + 3.0 / 8.0 * radius  # hemisphere CoM offset
    i_trans += i_sph + cap_mass * h * h
    i_axial += i_sph
    return mass, Mat3.diagonal(i_trans, i_axial, i_trans)


def point_mass_inertia(mass: float, radius: float = 0.1) -> MassInertia:
    """Fallback: treat as a solid sphere of the given radius."""
    i = 0.4 * mass * radius * radius
    return mass, Mat3.diagonal(i, i, i)


def shape_mass_inertia(shape: Any, density: float) -> MassInertia:
    """Dispatch on shape kind (duck-typed to avoid circular imports)."""
    kind = getattr(shape, "kind", None)
    if kind == "sphere":
        return sphere_inertia(shape.radius, density)
    if kind == "box":
        return box_inertia(shape.half_extents, density)
    if kind == "capsule":
        return capsule_inertia(shape.radius, shape.length, density)
    raise TypeError(f"no inertia model for shape kind {kind!r}")


def rotate_inertia(inertia: Mat3, rotation: Mat3) -> Mat3:
    """World-frame inertia: R * I * R^T."""
    return rotation * inertia * rotation.transpose()
