"""Unit quaternion for rigid-body orientation."""

from __future__ import annotations

import math
from typing import Tuple

from .mat3 import Mat3
from .vec3 import Vec3


class Quaternion:
    __slots__ = ("w", "x", "y", "z")

    w: float
    x: float
    y: float
    z: float

    def __init__(self, w: float = 1.0, x: float = 0.0, y: float = 0.0,
                 z: float = 0.0) -> None:
        self.w = float(w)
        self.x = float(x)
        self.y = float(y)
        self.z = float(z)

    @staticmethod
    def identity() -> "Quaternion":
        return Quaternion(1.0, 0.0, 0.0, 0.0)

    @staticmethod
    def from_axis_angle(axis: Vec3, angle: float) -> "Quaternion":
        axis = axis.normalized()
        half = 0.5 * angle
        s = math.sin(half)
        return Quaternion(math.cos(half), axis.x * s, axis.y * s, axis.z * s)

    @staticmethod
    def from_euler(yaw: float = 0.0, pitch: float = 0.0,
                   roll: float = 0.0) -> "Quaternion":
        """Y (yaw) * X (pitch) * Z (roll) composition."""
        q = Quaternion.from_axis_angle(Vec3(0, 1, 0), yaw)
        q = q * Quaternion.from_axis_angle(Vec3(1, 0, 0), pitch)
        q = q * Quaternion.from_axis_angle(Vec3(0, 0, 1), roll)
        return q.normalized()

    def __repr__(self) -> str:
        return (f"Quaternion({self.w:.6g}, {self.x:.6g}, {self.y:.6g},"
                f" {self.z:.6g})")

    def __eq__(self, o: object) -> bool:
        return (isinstance(o, Quaternion) and self.w == o.w
                and self.x == o.x and self.y == o.y and self.z == o.z)

    def __mul__(self, o: "Quaternion") -> "Quaternion":
        return Quaternion(
            self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        )

    def conjugate(self) -> "Quaternion":
        return Quaternion(self.w, -self.x, -self.y, -self.z)

    def norm(self) -> float:
        return math.sqrt(
            self.w * self.w + self.x * self.x
            + self.y * self.y + self.z * self.z
        )

    def normalized(self) -> "Quaternion":
        n = self.norm()
        if n < 1e-12:
            return Quaternion.identity()
        inv = 1.0 / n
        return Quaternion(self.w * inv, self.x * inv, self.y * inv,
                          self.z * inv)

    def is_finite(self) -> bool:
        return all(math.isfinite(v)
                   for v in (self.w, self.x, self.y, self.z))

    def rotate(self, v: Vec3) -> Vec3:
        """Rotate a vector by this (unit) quaternion."""
        qv = Vec3(self.x, self.y, self.z)
        uv = qv.cross(v)
        uuv = qv.cross(uv)
        return v + (uv * self.w + uuv) * 2.0

    def rotate_inverse(self, v: Vec3) -> Vec3:
        return self.conjugate().rotate(v)

    def to_mat3(self) -> Mat3:
        w, x, y, z = self.w, self.x, self.y, self.z
        xx, yy, zz = x * x, y * y, z * z
        xy, xz, yz = x * y, x * z, y * z
        wx, wy, wz = w * x, w * y, w * z
        return Mat3([
            [1 - 2 * (yy + zz), 2 * (xy - wz), 2 * (xz + wy)],
            [2 * (xy + wz), 1 - 2 * (xx + zz), 2 * (yz - wx)],
            [2 * (xz - wy), 2 * (yz + wx), 1 - 2 * (xx + yy)],
        ])

    def integrated(self, omega: Vec3, dt: float) -> "Quaternion":
        """Advance orientation by angular velocity ``omega`` over ``dt``.

        q' = q + dt/2 * (0, omega) * q, then renormalized — the standard
        first-order update used by semi-implicit Euler integrators.
        """
        dq = Quaternion(0.0, omega.x, omega.y, omega.z) * self
        half = 0.5 * dt
        return Quaternion(
            self.w + dq.w * half,
            self.x + dq.x * half,
            self.y + dq.y * half,
            self.z + dq.z * half,
        ).normalized()

    def to_axis_angle(self) -> Tuple[Vec3, float]:
        q = self.normalized()
        if q.w < 0:
            q = Quaternion(-q.w, -q.x, -q.y, -q.z)
        s = math.sqrt(max(0.0, 1.0 - q.w * q.w))
        angle = 2.0 * math.acos(min(1.0, q.w))
        if s < 1e-9:
            return Vec3(1, 0, 0), 0.0
        return Vec3(q.x / s, q.y / s, q.z / s), angle
