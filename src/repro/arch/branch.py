"""Branch predictors for the FG-core pipeline model.

The paper's fine-grained cores keep a small YAGS predictor (a choice
PHT plus tagged taken/not-taken exception caches) — big enough to learn
the biased branches of the physics kernels, small enough to stay cheap.
The shader-style design point drops prediction entirely (static
not-taken), and the "limit" design point uses a perfect oracle.
"""

from __future__ import annotations

__all__ = [
    "YagsPredictor",
    "StaticPredictor",
    "PerfectPredictor",
    "make_predictor",
]


def _update_counter(value: int, taken: bool) -> int:
    if taken:
        return min(3, value + 1)
    return max(0, value - 1)


class YagsPredictor:
    """YAGS (Eden & Mudge): bimodal choice table with per-direction
    exception caches indexed by pc ^ global-history."""

    def __init__(self, choice_bits: int = 10, cache_bits: int = 8,
                 tag_bits: int = 6, history_bits: int = 8):
        self.choice = [2] * (1 << choice_bits)
        self.choice_mask = (1 << choice_bits) - 1
        self.cache_mask = (1 << cache_bits) - 1
        self.tag_mask = (1 << tag_bits) - 1
        self.history_mask = (1 << history_bits) - 1
        # Exception caches: index -> (tag, 2-bit counter).
        self.t_cache = {}
        self.nt_cache = {}
        self.history = 0
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc: int):
        idx = (pc ^ self.history) & self.cache_mask
        tag = pc & self.tag_mask
        return idx, tag

    def predict(self, pc: int) -> bool:
        bias_taken = self.choice[pc & self.choice_mask] >= 2
        cache = self.nt_cache if bias_taken else self.t_cache
        idx, tag = self._index(pc)
        entry = cache.get(idx)
        if entry is not None and entry[0] == tag:
            return entry[1] >= 2
        return bias_taken

    def update(self, pc: int, taken: bool):
        self.lookups += 1
        if self.predict(pc) != taken:
            self.mispredicts += 1
        bias_taken = self.choice[pc & self.choice_mask] >= 2
        cache = self.nt_cache if bias_taken else self.t_cache
        idx, tag = self._index(pc)
        entry = cache.get(idx)
        hit = entry is not None and entry[0] == tag
        if hit:
            cache[idx] = (tag, _update_counter(entry[1], taken))
        elif taken != bias_taken:
            # Allocate on a branch that disagrees with its bias.
            cache[idx] = (tag, 3 if taken else 0)
        # The choice table tracks the per-branch bias; it is not
        # updated when the exception cache correctly overrode it.
        if not (hit and (entry[1] >= 2) == taken and taken != bias_taken):
            ci = pc & self.choice_mask
            self.choice[ci] = _update_counter(self.choice[ci], taken)
        self.history = ((self.history << 1) | int(taken)) \
            & self.history_mask

    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class StaticPredictor:
    """Always predicts not-taken (shader-style core)."""

    def __init__(self):
        self.lookups = 0
        self.mispredicts = 0

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool):
        self.lookups += 1
        if taken:
            self.mispredicts += 1

    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class PerfectPredictor:
    """Oracle: never mispredicts (limit study)."""

    def __init__(self):
        self.lookups = 0
        self.mispredicts = 0

    def predict(self, pc: int) -> bool:  # pragma: no cover - oracle
        return True

    def update(self, pc: int, taken: bool):
        self.lookups += 1

    def accuracy(self) -> float:
        return 1.0


_PREDICTORS = {
    "yags": YagsPredictor,
    "static": StaticPredictor,
    "perfect": PerfectPredictor,
}


def make_predictor(kind: str):
    try:
        return _PREDICTORS[kind]()
    except KeyError:
        raise ValueError(f"unknown predictor {kind!r}") from None
