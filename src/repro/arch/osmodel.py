"""OS / threading overhead model (Fig 6b).

Running the parallel phases on OS threads costs two ways: the kernel's
scheduling and synchronization instructions, and — the dominant effect
— each thread's working set contending for its slice of the shared L2.
Thread working sets grow with thread count (more per-thread buffers,
more partially-shared read sets), so at eight threads the per-thread
footprint no longer fits its L2 slice and every parallel sweep streams
it back in.
"""

from __future__ import annotations

__all__ = [
    "thread_footprint_bytes",
    "kernel_overhead_misses",
    "sync_instructions",
]

BLOCK = 64
SWEEPS_PER_FRAME = 8  # parallel-region entries per frame

# Measured-style per-thread working sets: modest until the runtime
# switches to wide per-thread buffering at high thread counts.
_FOOTPRINT_SMALL = 850 * 1024       # <= 4 threads
_FOOTPRINT_LARGE = 5 * 1024 * 1024  # 8+ threads


def thread_footprint_bytes(threads: int) -> float:
    return _FOOTPRINT_LARGE if threads > 4 else _FOOTPRINT_SMALL


def kernel_overhead_misses(threads: int, l2_bytes: float) -> float:
    """Extra L2 misses per frame caused by OS-thread working sets.

    Each thread gets an equal slice of the L2; when its footprint
    exceeds the slice, every parallel sweep re-streams the footprint.
    """
    if threads <= 1:
        return 0.0
    slice_bytes = l2_bytes / threads
    footprint = thread_footprint_bytes(threads)
    if footprint <= slice_bytes:
        return 0.0
    lines = footprint / BLOCK
    return threads * lines * SWEEPS_PER_FRAME


def sync_instructions(threads: int, sweeps: int = SWEEPS_PER_FRAME
                      ) -> float:
    """Kernel instructions per frame for barriers and wakeups."""
    if threads <= 1:
        return 0.0
    return threads * sweeps * 250.0
