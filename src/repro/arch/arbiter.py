"""Hierarchical CG <-> FG task arbiter model.

CG threads push kernel tasks to a two-level arbiter (a root arbiter on
the FG pool, leaf arbiters per core cluster); FG cores pull. The model
answers the paper's Table 7 question — how many tasks must be in
flight to hide the round trip of each attachment point — and the
static-vs-flexible mapping comparison: dealing CG tasks round-robin to
threads at island-creation time versus work-stealing at run time.
"""

from __future__ import annotations

import math

from .interconnect import Interconnect

__all__ = [
    "round_trip_cycles",
    "tasks_in_flight_required",
    "bandwidth_feasible",
    "static_mapping_overhead",
    "deal_round_robin",
]

ARBITER_LEVELS = 2
ARBITER_HOP_CYCLES = 4


def round_trip_cycles(interconnect: Interconnect,
                      levels: int = ARBITER_LEVELS,
                      hop_cycles: int = ARBITER_HOP_CYCLES) -> float:
    """Dispatch + completion round trip through the arbiter tree."""
    return interconnect.round_trip_cycles + 2 * levels * hop_cycles


def tasks_in_flight_required(pool_cores: int, task_cycles: float,
                             interconnect: Interconnect) -> float:
    """Tasks that must be queued to keep ``pool_cores`` busy.

    Each core needs the next task to arrive before it drains the
    current one, so the pool needs ``1 + ceil(rt / task)`` tasks per
    core in flight. Infeasible (inf) when the link cannot sustain the
    pool's aggregate task bandwidth.
    """
    if task_cycles <= 0:
        return float("inf")
    rt = round_trip_cycles(interconnect)
    depth = 1 + math.ceil(rt / task_cycles)
    return float(pool_cores * depth)


def bandwidth_feasible(pool_cores: int, task_cycles: float,
                       task_bytes: float, interconnect: Interconnect,
                       clock_hz: float = 2e9) -> bool:
    """Can the link feed every core its task operands continuously?"""
    if task_cycles <= 0:
        return False
    tasks_per_second = clock_hz / task_cycles
    demand = pool_cores * task_bytes * tasks_per_second
    return demand <= interconnect.bandwidth_bytes


def deal_round_robin(demands, threads: int):
    """Static mapping: deal tasks to threads in arrival order."""
    buckets = [0.0] * max(1, threads)
    for i, demand in enumerate(demands):
        buckets[i % len(buckets)] += demand
    return buckets


def static_mapping_overhead(demands, threads: int = 4) -> float:
    """Fractional time lost to static (deal-at-creation) mapping
    versus a perfectly flexible scheduler.

    The frame ends when the most-loaded thread finishes; flexible
    scheduling finishes in ``total / threads``. Returns
    ``threads * max_bucket / total - 1`` (0 = perfectly balanced).
    """
    demands = [d for d in demands if d > 0]
    if not demands:
        return 0.0
    buckets = deal_round_robin(demands, threads)
    total = sum(buckets)
    if total <= 0:
        return 0.0
    return threads * max(buckets) / total - 1.0
