"""Trace-driven cache models: exact set-associative LRU simulation and
one-pass Mattson stack-distance profiling.

Two complementary tools:

* :class:`CacheSim` replays a block-address trace through a real
  set-associative LRU array (optionally with a next-N-line prefetcher).
  Exact, but one run per configuration.
* :class:`StackDistanceProfile` computes LRU stack distances in one
  pass (Fenwick-tree Mattson algorithm), labelled per phase. Miss
  counts for *every* capacity fall out of the same histogram, and they
  are monotone in capacity by construction — which is what makes the
  L2 sweep figures well-behaved.

Both consume the ``TouchGroup`` traces recorded by the engine
(:mod:`repro.profiling.memtrace`). Repeat groups (a solver sweeping an
island's rows 20 times) are handled analytically: after the first
sweep, every subsequent sweep of an F-block footprint re-references at
stack distance ~F, so the remaining ``(repeat-1) * F`` accesses go
straight into the histogram without being replayed.
"""

from __future__ import annotations

from ..profiling import memtrace

BLOCK = 64


class _Fenwick:
    """Prefix-sum tree over access timestamps."""

    def __init__(self, n: int):
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int):
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        # sum of [0, i]
        i += 1
        total = 0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return total


class StackDistanceProfile:
    """Per-label LRU stack-distance histogram of a touch trace."""

    def __init__(self):
        # label -> {distance: count}; distance in 64B lines.
        self.histograms = {}
        self.cold = {}
        self.accesses = {}
        self._finalized = None

    # -- building -------------------------------------------------------
    @classmethod
    def from_report(cls, report, phases=None, label_by_phase=True):
        """Profile the pipeline-ordered trace of a FrameReport."""
        groups = [
            (phase if label_by_phase else "all", group)
            for phase, group in memtrace.step_groups(report, phases)
        ]
        return cls.from_groups(groups)

    @classmethod
    def from_groups(cls, labelled_groups):
        self = cls()
        sweeps = []  # (label, blocks, extra_repeats)
        total = 0
        for label, group in labelled_groups:
            blocks = memtrace.group_blocks(group)
            if not blocks:
                continue
            sweeps.append((label, blocks, group.repeat - 1))
            total += len(blocks)

        bit = _Fenwick(total)
        last_time = {}
        t = 0
        for label, blocks, extra in sweeps:
            hist = self.histograms.setdefault(label, {})
            for block in blocks:
                prev = last_time.get(block)
                if prev is None:
                    self.cold[label] = self.cold.get(label, 0) + 1
                else:
                    d = bit.prefix(t - 1) - bit.prefix(prev)
                    hist[d] = hist.get(d, 0) + 1
                    bit.add(prev, -1)
                bit.add(t, 1)
                last_time[block] = t
                t += 1
            self.accesses[label] = (self.accesses.get(label, 0)
                                    + len(blocks) * (extra + 1))
            if extra > 0:
                footprint = len(set(blocks))
                hist[footprint] = (hist.get(footprint, 0)
                                   + extra * len(blocks))
        return self

    # -- queries --------------------------------------------------------
    def _finalize(self):
        if self._finalized is None:
            self._finalized = {
                label: sorted(hist.items())
                for label, hist in self.histograms.items()
            }
        return self._finalized

    def labels(self):
        keys = set(self.histograms) | set(self.cold)
        return sorted(keys)

    def misses(self, capacity_bytes: float, labels=None) -> float:
        """Accesses (by the given labels) that miss in a fully
        associative LRU cache of ``capacity_bytes``."""
        lines = max(1, int(capacity_bytes) // BLOCK)
        wanted = self.labels() if labels is None else labels
        total = 0
        fin = self._finalize()
        for label in wanted:
            total += self.cold.get(label, 0)
            for dist, count in fin.get(label, ()):
                if dist >= lines:
                    total += count
        return float(total)

    def total_accesses(self, labels=None) -> float:
        wanted = self.labels() if labels is None else labels
        return float(sum(self.accesses.get(lb, 0) for lb in wanted))


class CacheSim:
    """Exact set-associative LRU cache, optionally prefetching."""

    def __init__(self, capacity_bytes: int, ways: int = 8,
                 line: int = BLOCK, prefetch_depth: int = 0):
        self.line = line
        self.ways = ways
        self.sets = max(1, int(capacity_bytes) // (ways * line))
        # Each set: list of block ids, most-recent last.
        self._sets = [[] for _ in range(self.sets)]
        self.prefetch_depth = prefetch_depth
        self._prefetched = set()
        self.hits = 0
        self.misses = 0
        self.prefetch_hits = 0
        self.per_label = {}

    def _touch(self, block: int, insert_only: bool = False) -> bool:
        s = self._sets[block % self.sets]
        try:
            s.remove(block)
            hit = True
        except ValueError:
            hit = False
        if hit or not insert_only or len(s) < self.ways:
            s.append(block)
            if len(s) > self.ways:
                evicted = s.pop(0)
                self._prefetched.discard(evicted)
        return hit

    def access(self, block: int, label=None) -> bool:
        hit = self._touch(block)
        if hit and block in self._prefetched:
            self._prefetched.discard(block)
            self.prefetch_hits += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            if self.prefetch_depth:
                for nxt in range(block + 1,
                                 block + 1 + self.prefetch_depth):
                    if not self._touch(nxt):
                        self._prefetched.add(nxt)
        if label is not None:
            stats = self.per_label.setdefault(label, [0, 0])
            stats[0 if hit else 1] += 1
        return hit

    def run(self, blocks, label=None):
        for block in blocks:
            self.access(block, label)
        return self

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        n = self.accesses
        return self.misses / n if n else 0.0
