"""Way-partitioned shared L2: exact simulator + analytical model.

The paper's application-aware L2 scheme gives each pipeline stage its
own slice of the shared L2 so the streaming phases cannot evict the
reused structures of the others. Two implementations:

* :class:`WayPartitionedCache` — exact set-associative simulation
  where each owner (phase) allocates into and looks up only its
  assigned ways, exactly the paper's dedicated-slice-per-phase
  scheme (Fig 3-5 model each phase against a private L2).
* :func:`model_misses` — the cheap stack-distance model: each owner
  behaves like a private LRU cache of ``capacity * ways_owner / ways``.

``validate`` runs both on the same report trace and reports the
relative error, which the extension benches require to stay small.
"""

from __future__ import annotations

from ..profiling import memtrace
from .cache import BLOCK, StackDistanceProfile

__all__ = ["WayPartitionedCache", "model_misses", "validate"]


class WayPartitionedCache:
    """Set-associative LRU cache with per-owner way allocation."""

    def __init__(self, capacity_bytes: int, ways: int = 12,
                 line: int = BLOCK, allocation=None):
        if not allocation:
            raise ValueError("allocation {owner: ways} required")
        if sum(allocation.values()) > ways:
            raise ValueError("allocation exceeds total ways")
        self.line = line
        self.ways = ways
        self.allocation = dict(allocation)
        self.sets = max(1, int(capacity_bytes) // (ways * line))
        # Per set, per owner: block list in LRU order (MRU last).
        self._sets = [
            {owner: [] for owner in allocation}
            for _ in range(self.sets)
        ]
        self.hits = {owner: 0 for owner in allocation}
        self.misses = {owner: 0 for owner in allocation}

    def access(self, block: int, owner: str) -> bool:
        s = self._sets[block % self.sets]
        lines = s[owner]
        if block in lines:
            lines.remove(block)
            lines.append(block)
            self.hits[owner] += 1
            return True
        self.misses[owner] += 1
        lines.append(block)
        if len(lines) > self.allocation[owner]:
            lines.pop(0)
        return False

    def run_report(self, report, phases=None):
        wanted = set(self.allocation) if phases is None else set(phases)
        for block, phase, _writes in memtrace.expand(report):
            if phase in wanted:
                self.access(block, phase)
        return self


def model_misses(report, capacity_bytes: int, ways: int,
                 allocation) -> dict:
    """Stack-distance prediction of per-owner misses under
    way-partitioning: owner sees a private cache of its slice."""
    out = {}
    for owner, owner_ways in allocation.items():
        profile = StackDistanceProfile.from_report(
            report, phases=(owner,))
        slice_bytes = capacity_bytes * owner_ways / ways
        out[owner] = profile.misses(slice_bytes, (owner,))
    return out


def validate(report, capacity_bytes: int = 4 * 1024 * 1024,
             ways: int = 12, allocation=None) -> dict:
    """Exact vs model misses per owner; returns per-owner dicts with
    ``exact``, ``model`` and ``relative_error``."""
    if allocation is None:
        allocation = {"broadphase": 4, "narrowphase": 4,
                      "island_creation": 4}
    sim = WayPartitionedCache(capacity_bytes, ways=ways,
                              allocation=allocation)
    sim.run_report(report, phases=allocation)
    predicted = model_misses(report, capacity_bytes, ways, allocation)
    out = {}
    for owner in allocation:
        exact = float(sim.misses[owner])
        model = float(predicted[owner])
        err = abs(exact - model) / max(exact, 1.0)
        out[owner] = {
            "exact": exact,
            "model": model,
            "relative_error": err,
        }
    return out
