"""Out-of-order window/ROB pipeline model for FG-core IPC.

A deliberately small cycle-driven model: fetch up to ``width``
instructions per cycle into a ROB of ``window`` entries, issue when
operands are ready and a function unit is free (oldest-first; in-order
cores stall at the first unready instruction), retire in order. A
mispredicted branch stalls fetch until it resolves — wrong-path
execution is not modelled, only the fetch bubble, which is the
first-order cost.

Design points follow the paper's Fig 10 study: a desktop-class 4-wide
OoO core, a console-class 2-wide OoO core, a shader-style single-issue
in-order core, and a 16-wide "limit" core with a perfect predictor.
"""

from __future__ import annotations

from functools import lru_cache

from . import kernels
from .branch import make_predictor

__all__ = [
    "CoreDesign",
    "DESIGNS",
    "LATENCY",
    "simulate_ipc",
    "kernel_ipc",
    "phase_ipc",
]

LATENCY = {
    "int": 1,
    "branch": 1,
    "fadd": 3,
    "fmul": 4,
    "fdiv": 12,
    "load": 2,
    "store": 1,
}

_UNIT = {
    "int": "int",
    "branch": "int",
    "fadd": "fp",
    "fmul": "fp",
    "fdiv": "fp",
    "load": "mem",
    "store": "mem",
}


class CoreDesign:
    __slots__ = ("name", "width", "window", "in_order",
                 "int_units", "fp_units", "mem_ports", "predictor")

    def __init__(self, name, width, window, in_order,
                 int_units, fp_units, mem_ports, predictor):
        self.name = name
        self.width = width
        self.window = window
        self.in_order = in_order
        self.int_units = int_units
        self.fp_units = fp_units
        self.mem_ports = mem_ports
        self.predictor = predictor

    def __repr__(self):
        kind = "in-order" if self.in_order else "OoO"
        return (f"CoreDesign({self.name}: {self.width}-wide {kind}, "
                f"window={self.window}, bp={self.predictor})")


DESIGNS = {
    "desktop": CoreDesign("desktop", width=4, window=64, in_order=False,
                          int_units=4, fp_units=2, mem_ports=2,
                          predictor="yags"),
    "console": CoreDesign("console", width=2, window=16, in_order=False,
                          int_units=2, fp_units=1, mem_ports=1,
                          predictor="yags"),
    "shader": CoreDesign("shader", width=1, window=4, in_order=True,
                         int_units=1, fp_units=1, mem_ports=1,
                         predictor="static"),
    "limit": CoreDesign("limit", width=16, window=512, in_order=False,
                        int_units=16, fp_units=16, mem_ports=16,
                        predictor="perfect"),
}


def simulate_ipc(trace, design: CoreDesign, detail: bool = False):
    """Replay ``trace`` through the pipeline; returns IPC (or a stats
    dict when ``detail`` is set)."""
    n = len(trace)
    if n == 0:
        return {"ipc": 0.0, "cycles": 0} if detail else 0.0
    predictor = make_predictor(design.predictor)
    perfect = design.predictor == "perfect"

    done = [None] * n       # cycle the result is available
    window = []             # indices in fetch order, not yet retired
    issued = set()
    fetch_ptr = 0
    stall_until = -1        # fetch blocked until this instr resolves
    cycle = 0
    mispredicts = 0
    budget = {"int": design.int_units, "fp": design.fp_units,
              "mem": design.mem_ports}

    while window or fetch_ptr < n:
        # Retire (frees ROB entries fetched this cycle's limit ago).
        retired = 0
        while (window and retired < design.width
               and window[0] in issued
               and done[window[0]] <= cycle):
            window.pop(0)
            retired += 1

        # Issue.
        used = {"int": 0, "fp": 0, "mem": 0}
        slots = design.width
        for idx in window:
            if slots == 0:
                break
            if idx in issued:
                continue
            instr = trace[idx]
            ready = all(done[d] is not None and done[d] <= cycle
                        for d in instr.deps)
            unit = _UNIT[instr.op]
            if ready and used[unit] < budget[unit]:
                issued.add(idx)
                done[idx] = cycle + LATENCY[instr.op]
                used[unit] += 1
                slots -= 1
                if stall_until == idx:
                    pass  # resolves at done[idx]; handled in fetch
            elif design.in_order:
                break

        # Fetch.
        if stall_until >= 0:
            d = done[stall_until]
            if d is not None and d <= cycle:
                stall_until = -1
        if stall_until < 0:
            room = design.window - len(window)
            grab = min(design.width, room, n - fetch_ptr)
            for _ in range(grab):
                idx = fetch_ptr
                instr = trace[idx]
                window.append(idx)
                fetch_ptr += 1
                if instr.op == "branch" and not perfect:
                    predicted = predictor.predict(instr.pc)
                    predictor.update(instr.pc, instr.taken)
                    if predicted != instr.taken:
                        mispredicts += 1
                        stall_until = idx
                        break
        cycle += 1

    ipc = n / cycle
    if detail:
        branches = sum(1 for i in trace if i.op == "branch")
        return {
            "ipc": ipc,
            "cycles": cycle,
            "instructions": n,
            "mispredicts": mispredicts,
            "branches": branches,
            "bp_accuracy": (1.0 - mispredicts / branches
                            if branches else 1.0),
        }
    return ipc


@lru_cache(maxsize=None)
def kernel_ipc(design_name: str, kernel: str, n: int = 3000) -> float:
    """IPC of one FG kernel on one design point (memoized)."""
    design = DESIGNS[design_name]
    return simulate_ipc(kernels.kernel_trace(kernel, n=n), design)


@lru_cache(maxsize=None)
def phase_ipc(design_name: str, phase: str, n: int = 3000) -> float:
    """IPC of one pipeline phase's CG code on one design (memoized)."""
    design = DESIGNS[design_name]
    return simulate_ipc(kernels.phase_trace(phase, n=n), design)
