"""ParallAX architecture models.

Trace-driven models of the paper's machine: set-associative and
way-partitioned L2 caches with one-pass stack-distance profiling, an
OoO window/ROB pipeline for FG-core IPC, a YAGS branch predictor, the
CG<->FG arbiter with mesh/HTX/PCIe link models, OS-threading overhead,
area/energy estimators, and the Section 8.3 analytical model — all
driven by the per-phase traces that :mod:`repro.profiling` records
while the engine simulates the Table 3 benchmarks.
"""

from .arbiter import (
    static_mapping_overhead,
    tasks_in_flight_required,
)
from .area import area_mm2, fg_pool_area
from .branch import PerfectPredictor, StaticPredictor, YagsPredictor
from .cache import CacheSim, StackDistanceProfile
from .interconnect import (
    HTX,
    INTERCONNECTS,
    ONCHIP_MESH,
    PCIE,
    Interconnect,
    simulate_noc,
)
from .machine import (
    CLOCK_HZ,
    KERNEL_FOR_PHASE,
    L2Partitioning,
    OffloadTiming,
    ParallaxConfig,
    ParallaxMachine,
)
from .pipeline import DESIGNS, CoreDesign, kernel_ipc, phase_ipc
from .waypart import WayPartitionedCache

__all__ = [
    "CLOCK_HZ",
    "CacheSim",
    "CoreDesign",
    "DESIGNS",
    "HTX",
    "INTERCONNECTS",
    "Interconnect",
    "KERNEL_FOR_PHASE",
    "L2Partitioning",
    "ONCHIP_MESH",
    "OffloadTiming",
    "PCIE",
    "ParallaxConfig",
    "ParallaxMachine",
    "PerfectPredictor",
    "StackDistanceProfile",
    "StaticPredictor",
    "WayPartitionedCache",
    "YagsPredictor",
    "area_mm2",
    "fg_pool_area",
    "kernel_ipc",
    "phase_ipc",
    "simulate_noc",
    "static_mapping_overhead",
    "tasks_in_flight_required",
]
