"""Energy estimators for the FG-core design points.

Simple activity-based model: dynamic energy is nJ/instruction scaled
by each design's issue machinery (wide OoO desktop cores pay for
wakeup/select and deep speculation; narrow in-order shader cores pay
almost nothing beyond the datapath), plus leakage proportional to pool
area over the frame time.
"""

from __future__ import annotations

from .area import fg_pool_area

__all__ = [
    "DYNAMIC_NJ_PER_INST",
    "LEAKAGE_W_PER_MM2",
    "dynamic_joules",
    "leakage_joules",
    "frame_energy",
    "edp",
]

DYNAMIC_NJ_PER_INST = {
    "desktop": 0.95,
    "console": 0.53,
    "shader": 0.36,
    # Idealized structures are not energy-free; cost as desktop.
    "limit": 0.95,
}

LEAKAGE_W_PER_MM2 = {
    "desktop": 0.075,
    "console": 0.060,
    "shader": 0.028,
    "limit": 0.075,
}


def dynamic_joules(design: str, instructions: float) -> float:
    return DYNAMIC_NJ_PER_INST[design] * 1e-9 * instructions


def leakage_joules(design: str, cores: int, seconds: float) -> float:
    area = fg_pool_area(design, cores)
    return LEAKAGE_W_PER_MM2[design] * area * seconds


def frame_energy(design: str, cores: int, instructions: float,
                 frame_seconds: float) -> dict:
    dyn = dynamic_joules(design, instructions)
    leak = leakage_joules(design, cores, frame_seconds)
    return {
        "dynamic_j": dyn,
        "leakage_j": leak,
        "total_j": dyn + leak,
    }


def edp(design: str, cores: int, instructions: float,
        frame_seconds: float) -> float:
    """Energy-delay product for one frame (J * s)."""
    e = frame_energy(design, cores, instructions, frame_seconds)
    return e["total_j"] * frame_seconds
