"""Top-level ParallAX machine model.

Composes the component models — stack-distance cache profiles, the
pipeline IPC model, the arbiter and interconnect, the OS-overhead
model — into frame-time estimates for a configured machine:

* :class:`L2Partitioning` — how the shared L2 is sliced across phases.
* :class:`ParallaxConfig` — CG cores, L2 scheme, FG pool and link.
* :class:`ParallaxMachine` — ``frame_seconds`` (conventional CMP) and
  ``parallax_frame_seconds`` (with the FG pool), plus the per-phase
  offload breakdown and the Fig 10(b) cores-for-30FPS query.

The timing equation follows ``docs/MODELING.md``: compute cycles are
``instructions / IPC``; each L2 access adds a partially hidden 15-cycle
latency; each L2 miss adds a mostly exposed 340-cycle memory trip.
"""

from __future__ import annotations

import math

from ..profiling.instmix import FG_KERNEL_SHARE, KERNEL_FOOTPRINTS
from ..profiling.report import PARALLEL_PHASES, PHASES
from ..profiling.tasks import phase_cg_speedup
from . import arbiter, osmodel
from .cache import StackDistanceProfile
from .interconnect import ONCHIP_MESH, Interconnect
from .pipeline import kernel_ipc, phase_ipc

__all__ = [
    "CLOCK_HZ",
    "L2Partitioning",
    "ParallaxConfig",
    "ParallaxMachine",
    "OffloadTiming",
    "KERNEL_FOR_PHASE",
]

CLOCK_HZ = 2e9
FPS_TARGET = 30.0

L2_HIT_CYCLES = 15
L2_HIT_EXPOSED = 0.35   # fraction of hit latency the OoO core eats
MEM_CYCLES = 340
MEM_EXPOSED = 0.70

KERNEL_FOR_PHASE = {
    "narrowphase": "narrowphase",
    "island_processing": "island",
    "cloth": "cloth",
}

# Link payload per FG task: a descriptor plus the written-back results;
# operand reads hit the pool-local replicated scene state.
TASK_DESCRIPTOR_BYTES = 64

MB = 1024 * 1024


class L2Partitioning:
    """Slices of the shared L2, each serving a set of phases.

    A slice with ``phases=None`` is the catch-all shared slice.
    """

    def __init__(self, slices):
        self.slices = [
            (None if phases is None else tuple(phases), float(nbytes))
            for phases, nbytes in slices
        ]

    @classmethod
    def shared(cls, nbytes):
        return cls([(None, nbytes)])

    @classmethod
    def paper_scheme(cls):
        """The 12MB application-aware scheme: serial pipeline-state,
        narrowphase pair-data, and solver/cloth slices of 4MB each."""
        return cls([
            (("broadphase", "island_creation"), 4 * MB),
            (("narrowphase",), 4 * MB),
            (("island_processing", "cloth"), 4 * MB),
        ])

    @classmethod
    def dedicated(cls, phase, nbytes, rest=4 * MB):
        """One phase gets a private slice; everything else shares."""
        return cls([((phase,), nbytes), (None, rest)])

    def slice_for(self, phase):
        """(phases_sharing_the_slice, slice_bytes) for ``phase``."""
        for phases, nbytes in self.slices:
            if phases is not None and phase in phases:
                return phases, nbytes
        for phases, nbytes in self.slices:
            if phases is None:
                covered = set()
                for ps, _ in self.slices:
                    if ps is not None:
                        covered.update(ps)
                rest = tuple(p for p in PHASES if p not in covered)
                return rest, nbytes
        raise KeyError(phase)

    @property
    def total_bytes(self):
        return sum(nbytes for _, nbytes in self.slices)

    def __repr__(self):
        parts = ", ".join(
            f"{'*' if ps is None else '+'.join(ps)}:"
            f"{nbytes / MB:g}MB"
            for ps, nbytes in self.slices
        )
        return f"L2Partitioning({parts})"


class ParallaxConfig:
    """A machine design point."""

    def __init__(self, cg_cores=1, l2=None, cg_design="desktop",
                 fg_design=None, fg_cores=0,
                 interconnect: Interconnect = ONCHIP_MESH,
                 prefetch_coverage=None):
        self.cg_cores = cg_cores
        self.l2 = l2 if l2 is not None else L2Partitioning.shared(MB)
        self.cg_design = cg_design
        self.fg_design = fg_design
        self.fg_cores = fg_cores
        self.interconnect = interconnect
        #: Fraction of each phase's L2 misses a hardware prefetcher
        #: converts to hits: ``None``, one scalar for every phase, or a
        #: ``phase -> fraction`` mapping (absent phases get 0).
        self.prefetch_coverage = prefetch_coverage


class OffloadTiming:
    """Per-phase CG/FG split under the configured FG pool."""

    __slots__ = ("phase", "seconds", "offloaded_fraction",
                 "cg_seconds", "fg_seconds")

    def __init__(self, phase, seconds, offloaded_fraction,
                 cg_seconds, fg_seconds):
        self.phase = phase
        self.seconds = seconds
        self.offloaded_fraction = offloaded_fraction
        self.cg_seconds = cg_seconds
        self.fg_seconds = fg_seconds

    def __repr__(self):
        return (f"OffloadTiming({self.phase}: {self.seconds * 1e3:.2f}ms,"
                f" {self.offloaded_fraction * 100:.0f}% offloaded)")


class ParallaxMachine:
    """Frame-time model for one :class:`ParallaxConfig`."""

    def __init__(self, config: ParallaxConfig = None):
        self.config = config if config is not None else ParallaxConfig()
        # (id(report), phase-group) -> StackDistanceProfile; the report
        # reference is kept so ids cannot be recycled under us.
        self._profiles = {}

    # -- cache profiles -------------------------------------------------
    def _profile(self, report, phases=None) -> StackDistanceProfile:
        key = (id(report), None if phases is None else tuple(phases))
        entry = self._profiles.get(key)
        if entry is None:
            profile = StackDistanceProfile.from_report(report, phases)
            self._profiles[key] = (report, profile)
            return profile
        return entry[1]

    def _coverage(self, phase) -> float:
        cov = self.config.prefetch_coverage
        if cov is None:
            return 0.0
        if isinstance(cov, dict):
            cov = cov.get(phase, 0.0)
        return min(1.0, max(0.0, float(cov)))

    def _phase_misses(self, report, phase, l2_bytes=None):
        """(accesses, misses) for one phase under the L2 scheme."""
        group, slice_bytes = self.config.l2.slice_for(phase)
        if l2_bytes is not None:
            slice_bytes = l2_bytes
        profile = self._profile(report, group)
        accesses = profile.total_accesses((phase,))
        misses = profile.misses(slice_bytes, (phase,))
        if l2_bytes is None and len(self.config.l2.slices) > 1:
            # Way-partitioning restricts *allocation*, not lookup: a
            # block resident in another slice still hits. Bound each
            # phase's misses by a fully shared cache of the total size
            # so producer->consumer reuse across slices is not charged
            # as cold misses.
            shared = self._profile(report, None)
            misses = min(misses, shared.misses(
                self.config.l2.total_bytes, (phase,)))
        return accesses, misses * (1.0 - self._coverage(phase))

    # -- conventional CMP timing ----------------------------------------
    def phase_cycles(self, report, phase, threads=1, l2_bytes=None):
        """Modeled CG cycles for one phase of one frame."""
        insts = report.phase_instructions()[phase]
        ipc = phase_ipc(self.config.cg_design, phase)
        accesses, misses = self._phase_misses(report, phase, l2_bytes)
        cycles = (insts / ipc
                  + accesses * L2_HIT_CYCLES * L2_HIT_EXPOSED
                  + misses * MEM_CYCLES * MEM_EXPOSED)
        if threads > 1 and phase in PARALLEL_PHASES:
            cycles /= phase_cg_speedup(report, phase, threads)
        return cycles

    def phase_seconds(self, report, phase, threads=1, l2_bytes=None):
        return self.phase_cycles(report, phase, threads, l2_bytes) \
            / CLOCK_HZ

    def frame_cycles(self, report, threads=1):
        cycles = sum(self.phase_cycles(report, p, threads)
                     for p in PHASES)
        if threads > 1:
            os_misses = osmodel.kernel_overhead_misses(
                threads, self.config.l2.total_bytes)
            sync = osmodel.sync_instructions(threads)
            cycles += os_misses * MEM_CYCLES * MEM_EXPOSED + sync
        return cycles

    def frame_seconds(self, report, threads=1):
        return self.frame_cycles(report, threads) / CLOCK_HZ

    def fps(self, report, threads=1):
        seconds = self.frame_seconds(report, threads)
        return 1.0 / seconds if seconds > 0 else float("inf")

    def l2_miss_breakdown(self, report, threads=1):
        """User vs OS-kernel L2 misses per frame (Fig 6b)."""
        user = 0.0
        for phase in PHASES:
            _accesses, misses = self._phase_misses(report, phase)
            user += misses
        # Per-thread working-set duplication inflates user misses a
        # little as threads scale.
        user *= 1.0 + 0.06 * (threads - 1)
        kernel = osmodel.kernel_overhead_misses(
            threads, self.config.l2.total_bytes)
        return {"user": user, "kernel": kernel}

    # -- FG offload -----------------------------------------------------
    def _fg_task_stats(self, report, phase):
        """(task_count, mean_task_cycles, task_bytes) on the FG design."""
        tasks = report.tasks.get(phase, [])
        if not tasks or self.config.fg_design is None:
            return 0, 0.0, 0.0
        kernel = KERNEL_FOR_PHASE[phase]
        ipc = kernel_ipc(self.config.fg_design, kernel)
        mean_cost = sum(tasks) / len(tasks)
        task_cycles = mean_cost / ipc if ipc > 0 else float("inf")
        footprint = KERNEL_FOOTPRINTS[kernel]
        task_bytes = (TASK_DESCRIPTOR_BYTES
                      + footprint["write_bytes_per_100"])
        return len(tasks), task_cycles, task_bytes

    def hidden_fraction(self, report, phase):
        """Share of a phase's FG tasks whose dispatch round trip can be
        hidden by the available task parallelism and link bandwidth."""
        if self.config.fg_design is None or self.config.fg_cores <= 0:
            return 0.0
        avail, task_cycles, task_bytes = self._fg_task_stats(
            report, phase)
        if avail == 0:
            return 0.0
        link = self.config.interconnect
        if not arbiter.bandwidth_feasible(
                self.config.fg_cores, task_cycles, task_bytes, link,
                clock_hz=CLOCK_HZ):
            return 0.0
        required = arbiter.tasks_in_flight_required(
            self.config.fg_cores, task_cycles, link)
        if not math.isfinite(required) or required <= 0:
            return 0.0
        return min(1.0, avail / required)

    def offload_timings(self, report):
        """Per-phase :class:`OffloadTiming` for the configured pool."""
        out = {}
        insts = report.phase_instructions()
        for phase in PHASES:
            cycles = self.phase_cycles(
                report, phase, threads=self.config.cg_cores)
            if phase not in PARALLEL_PHASES \
                    or self.config.fg_design is None \
                    or self.config.fg_cores <= 0:
                out[phase] = OffloadTiming(
                    phase, cycles / CLOCK_HZ, 0.0,
                    cycles / CLOCK_HZ, 0.0)
                continue
            share = FG_KERNEL_SHARE[phase]
            f = share * self.hidden_fraction(report, phase)
            kernel = KERNEL_FOR_PHASE[phase]
            ipc_fg = kernel_ipc(self.config.fg_design, kernel)
            avail, _, _ = self._fg_task_stats(report, phase)
            eff_cores = max(1.0, min(self.config.fg_cores, avail))
            fg_cycles = (f * insts[phase]) / (ipc_fg * eff_cores)
            fg_cycles += self.config.interconnect.round_trip_cycles
            cg_cycles = cycles * (1.0 - f)
            total = max(cg_cycles, fg_cycles)
            out[phase] = OffloadTiming(
                phase, total / CLOCK_HZ, f,
                cg_cycles / CLOCK_HZ, fg_cycles / CLOCK_HZ)
        return out

    def parallax_frame_seconds(self, report):
        timings = self.offload_timings(report)
        return sum(t.seconds for t in timings.values())

    def parallax_fps(self, report):
        seconds = self.parallax_frame_seconds(report)
        return 1.0 / seconds if seconds > 0 else float("inf")

    # -- design-space queries -------------------------------------------
    def fg_cores_required(self, report, budget_fraction=0.32,
                          fps=FPS_TARGET):
        """FG cores needed to run the kernels' share of the parallel
        phases within ``budget_fraction`` of a 1/fps frame (Fig 10b)."""
        design = self.config.fg_design or "desktop"
        insts = report.phase_instructions()
        need_cycles = 0.0
        for phase in PARALLEL_PHASES:
            kernel = KERNEL_FOR_PHASE[phase]
            ipc = kernel_ipc(design, kernel)
            need_cycles += FG_KERNEL_SHARE[phase] * insts[phase] / ipc
        budget_cycles = budget_fraction * CLOCK_HZ / fps
        if budget_cycles <= 0:
            return 0
        return max(1, int(math.ceil(need_cycles / budget_cycles)))
