"""Area estimators for the FG-core pool (90 nm, Table 6).

Per-core areas are calibrated to the paper's pool totals: 30
desktop-class cores in ~1388 mm^2, 43 console-class cores in ~926
mm^2, 150 shader-class cores in ~591 mm^2. The pool adds a per-core
interconnect/router share and a fixed arbiter block.
"""

from __future__ import annotations

__all__ = [
    "PER_CORE_MM2",
    "PAPER_POOL_CORES",
    "area_mm2",
    "fg_pool_area",
    "pool_cores_for_budget",
]

PER_CORE_MM2 = {
    "desktop": 1388.0 / 30.0,
    "console": 926.0 / 43.0,
    "shader": 591.0 / 150.0,
}

PAPER_POOL_CORES = {"desktop": 30, "console": 43, "shader": 150}

# Pool uncore: per-core router/link share + arbiter block.
ROUTER_MM2_PER_CORE = 0.287
ARBITER_MM2 = 0.6


def _core_key(design: str) -> str:
    # The "limit" study point is a desktop-class core with idealized
    # control structures; area-wise it is costed as desktop.
    return "desktop" if design == "limit" else design


def area_mm2(design: str, cores: int = 1) -> float:
    """Core area only (no pool uncore)."""
    return PER_CORE_MM2[_core_key(design)] * cores


def fg_pool_area(design: str, cores: int) -> float:
    """Total FG pool area: cores + routers + arbiter."""
    return (area_mm2(design, cores)
            + ROUTER_MM2_PER_CORE * cores + ARBITER_MM2)


def pool_cores_for_budget(design: str, budget_mm2: float) -> int:
    """Largest pool that fits the area budget."""
    per_core = PER_CORE_MM2[_core_key(design)] + ROUTER_MM2_PER_CORE
    cores = int((budget_mm2 - ARBITER_MM2) / per_core)
    return max(0, cores)
