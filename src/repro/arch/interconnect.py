"""Interconnect latency/bandwidth models and a small NoC simulator.

Three attachment points for the FG pool, per the paper's integration
study: on the CG die reached through the on-chip mesh, on a
HyperTransport (HTX) socket, and on a PCIe add-in board. Round-trip
latencies and effective bandwidths drive the arbiter's task-depth
calculation (Table 7) and model2's feasibility analysis.

``simulate_noc`` is a cycle-driven wormhole-ish mesh/torus model with
single-flit link arbitration, used by the NoC sensitivity extension
(uniform vs hotspot traffic, mesh vs torus).
"""

from __future__ import annotations

__all__ = [
    "Interconnect",
    "ONCHIP_MESH",
    "HTX",
    "PCIE",
    "INTERCONNECTS",
    "simulate_noc",
]


class Interconnect:
    """A link between the CG cores and the FG pool."""

    __slots__ = ("name", "label", "round_trip_cycles",
                 "bandwidth_bytes", "setup_seconds")

    def __init__(self, name, label, round_trip_cycles,
                 bandwidth_bytes, setup_seconds=0.0):
        self.name = name
        self.label = label
        self.round_trip_cycles = round_trip_cycles
        self.bandwidth_bytes = bandwidth_bytes
        self.setup_seconds = setup_seconds

    def __repr__(self):
        return f"Interconnect({self.name})"

    def transfer_seconds(self, nbytes: float) -> float:
        return self.setup_seconds + nbytes / self.bandwidth_bytes


# Round trips in 2 GHz CG-core cycles.
ONCHIP_MESH = Interconnect(
    "onchip-mesh", "on-chip mesh", round_trip_cycles=40,
    bandwidth_bytes=128e9)
HTX = Interconnect(
    "htx", "HyperTransport socket", round_trip_cycles=240,
    bandwidth_bytes=10.4e9, setup_seconds=1e-7)
PCIE = Interconnect(
    "pcie", "PCIe board", round_trip_cycles=2400,
    bandwidth_bytes=2.0e9, setup_seconds=3e-6)

INTERCONNECTS = {ic.name: ic for ic in (ONCHIP_MESH, HTX, PCIE)}


def _route_step(x, y, dx, dy, n, torus):
    """One XY-dimension-ordered hop; returns (nx, ny)."""
    if x != dx:
        if torus:
            fwd = (dx - x) % n
            step = 1 if fwd <= n - fwd else -1
        else:
            step = 1 if dx > x else -1
        return (x + step) % n, y
    if torus:
        fwd = (dy - y) % n
        step = 1 if fwd <= n - fwd else -1
    else:
        step = 1 if dy > y else -1
    return x, (y + step) % n


def simulate_noc(topology: str = "mesh", n: int = 8,
                 packets: int = 512, inject_every: int = 1,
                 hotspot: bool = False, flits: int = 4):
    """Cycle-driven n x n NoC with one-packet-per-cycle links.

    Traffic is a deterministic pseudo-random permutation stream; with
    ``hotspot`` half the packets target the centre node. Each packet is
    ``flits`` flits long, so a node's ejection port drains one packet
    every ``flits`` cycles — converging hotspot traffic queues at the
    destination while uniform traffic barely waits. Returns
    ``{"avg_latency", "max_latency", "delivered"}``.
    """
    torus = topology == "torus"
    total = n * n
    centre = (n // 2) * n + n // 2
    flows = []
    for i in range(packets):
        src = (i * 37 + 11) % total
        dst = (i * 53 + 29) % total
        if hotspot and i % 2 == 0:
            dst = centre
        if dst == src:
            dst = (dst + 1) % total
        flows.append((i * inject_every, src, dst))

    in_flight = []  # [inject_cycle, x, y, dx, dy]
    arrived = []
    eject_busy = {}  # (x, y) -> cycle the ejection port frees up
    cycle = 0
    next_pkt = 0
    while next_pkt < len(flows) or in_flight:
        while (next_pkt < len(flows)
               and flows[next_pkt][0] <= cycle):
            t0, src, dst = flows[next_pkt]
            in_flight.append([t0, src % n, src // n,
                              dst % n, dst // n])
            next_pkt += 1
        # One packet per link per cycle: first-come-first-served on
        # each (from, to) link; later packets wanting the same link
        # stall. Packets at their destination contend for the node's
        # ejection port, which serializes one packet per ``flits``
        # cycles.
        claimed = set()
        still = []
        for pkt in in_flight:
            t0, x, y, dx, dy = pkt
            if x == dx and y == dy:
                free = eject_busy.get((dx, dy), 0)
                if free <= cycle:
                    eject_busy[(dx, dy)] = cycle + flits
                    arrived.append(cycle + flits - t0)
                else:
                    still.append(pkt)
                continue
            nx, ny = _route_step(x, y, dx, dy, n, torus)
            link = (x, y, nx, ny)
            if link not in claimed:
                claimed.add(link)
                pkt[1], pkt[2] = nx, ny
            still.append(pkt)
        in_flight = still
        cycle += 1
        if cycle > 200000:  # pragma: no cover - safety valve
            break

    if not arrived:
        return {"avg_latency": 0.0, "max_latency": 0, "delivered": 0}
    return {
        "avg_latency": sum(arrived) / len(arrived),
        "max_latency": max(arrived),
        "delivered": len(arrived),
    }
