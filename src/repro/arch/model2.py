"""The paper's Section 8.3 analytical feasibility model ("model 2").

A back-of-envelope check that per-frame state transfer over a
peripheral link does not eat the frame budget: each frame the CG side
ships updated object transforms, particle states, and cloth vertices
across the link. The paper's worked example — 1000 objects, 10000
particles, 5000 cloth vertices over PCIe — lands around 60 us, a few
percent of a 30 FPS frame.
"""

from __future__ import annotations

__all__ = [
    "BYTES_PER_OBJECT",
    "BYTES_PER_PARTICLE",
    "BYTES_PER_CLOTH_VERTEX",
    "PCIE_EFFECTIVE_BANDWIDTH",
    "PCIE_LATENCY_SECONDS",
    "frame_bytes",
    "transfer_seconds",
    "paper_example_seconds",
    "frame_budget_fraction",
    "max_objects_for_budget",
]

# Per-entity wire formats: position + orientation (+ flags) for rigid
# objects, position+velocity half-floats for particles, position for
# cloth vertices.
BYTES_PER_OBJECT = 60
BYTES_PER_PARTICLE = 8
BYTES_PER_CLOTH_VERTEX = 12

# Effective (not peak) PCIe numbers for bulk DMA of small-ish buffers.
PCIE_EFFECTIVE_BANDWIDTH = 3.5e9
PCIE_LATENCY_SECONDS = 3e-6


def frame_bytes(objects: int, particles: int = 0,
                cloth_vertices: int = 0) -> float:
    return (objects * BYTES_PER_OBJECT
            + particles * BYTES_PER_PARTICLE
            + cloth_vertices * BYTES_PER_CLOTH_VERTEX)


def transfer_seconds(objects: int, particles: int = 0,
                     cloth_vertices: int = 0,
                     bandwidth: float = PCIE_EFFECTIVE_BANDWIDTH,
                     latency: float = PCIE_LATENCY_SECONDS) -> float:
    nbytes = frame_bytes(objects, particles, cloth_vertices)
    return latency + nbytes / bandwidth


def paper_example_seconds() -> float:
    """The Section 8.3 worked example (~60 us)."""
    return transfer_seconds(1000, particles=10000, cloth_vertices=5000)


def frame_budget_fraction(objects: int, particles: int = 0,
                          cloth_vertices: int = 0,
                          fps: float = 30.0) -> float:
    return transfer_seconds(objects, particles, cloth_vertices) * fps


def max_objects_for_budget(budget_fraction: float = 0.1,
                           fps: float = 30.0) -> int:
    """Objects transferable within a fraction of the frame budget."""
    budget_s = budget_fraction / fps - PCIE_LATENCY_SECONDS
    if budget_s <= 0:
        return 0
    return int(budget_s * PCIE_EFFECTIVE_BANDWIDTH / BYTES_PER_OBJECT)
