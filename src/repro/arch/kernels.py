"""Synthetic kernel traces for the pipeline model.

The FG-core study needs instruction traces with the *structure* of the
three offloaded kernels — the measured instruction mixes (Fig 9b), the
measured static footprints (Table 5), and the dependence shape that
determines ILP:

* ``narrowphase`` — one long dependence chain (feature walking on a
  contact pair): essentially serial, with a pointer load every few
  instructions and moderately biased branches.
* ``island`` — the row solver: eight independent strands (rows in
  flight), float-heavy, highly biased loop branches.
* ``cloth`` — two relaxation strands with an occasional divide/sqrt in
  the constraint projection.

Traces are generated from a fixed-seed PRNG so every run of the model
is deterministic.
"""

from __future__ import annotations

import random
from collections import namedtuple

from ..profiling.instmix import KERNEL_MIX, PHASE_MIX

__all__ = [
    "Instr",
    "make_trace",
    "kernel_trace",
    "phase_trace",
    "KERNEL_TRACE_PARAMS",
    "PHASE_TRACE_PARAMS",
]

# op: int | branch | fadd | fmul | fdiv | load | store
Instr = namedtuple("Instr", ("op", "deps", "pc", "taken"))

_CATEGORY_OPS = {
    "int_alu": "int",
    "branch": "branch",
    "float_add": "fadd",
    "float_mult": "fmul",
    "rd_port": "load",
    "wr_port": "store",
    "other": "int",
}

# Dependence/branch structure per kernel (see module docstring).
KERNEL_TRACE_PARAMS = {
    "narrowphase": {"strands": 1, "bias": 0.72, "div_frac": 0.00,
                    "cross_frac": 0.05},
    "island": {"strands": 8, "bias": 0.96, "div_frac": 0.00,
               "cross_frac": 0.05},
    "cloth": {"strands": 2, "bias": 0.94, "div_frac": 0.15,
              "cross_frac": 0.05},
}

# Coarse-grain phase code running on the CG (host) cores.
PHASE_TRACE_PARAMS = {
    "broadphase": {"strands": 2, "bias": 0.85, "div_frac": 0.0,
                   "cross_frac": 0.08},
    "narrowphase": {"strands": 2, "bias": 0.78, "div_frac": 0.02,
                    "cross_frac": 0.06},
    "island_creation": {"strands": 1, "bias": 0.76, "div_frac": 0.0,
                        "cross_frac": 0.10},
    "island_processing": {"strands": 6, "bias": 0.95, "div_frac": 0.01,
                          "cross_frac": 0.05},
    "cloth": {"strands": 3, "bias": 0.93, "div_frac": 0.10,
              "cross_frac": 0.05},
}


def make_trace(mix, strands=2, n=4000, seed=0, bias=0.9,
               div_frac=0.0, cross_frac=0.05, sites=16):
    """Generate ``n`` instructions with the given category mix.

    Dependences follow ``strands`` independent chains (instruction i
    joins strand ``i % strands`` and depends on that strand's previous
    instruction); ``cross_frac`` of instructions also pick up a second
    dependence on a random older instruction. Branches come from
    ``sites`` static sites, each taken with probability ``bias``
    (mirrored per site so some sites are biased not-taken).
    """
    rng = random.Random(seed)
    cats = list(mix.keys())
    weights = [mix[c] for c in cats]
    site_bias = [bias if i % 4 else 1.0 - bias for i in range(sites)]
    trace = []
    last = [None] * max(1, strands)
    for i in range(n):
        cat = rng.choices(cats, weights)[0]
        op = _CATEGORY_OPS[cat]
        if op == "fmul" and div_frac and rng.random() < div_frac:
            op = "fdiv"
        strand = i % len(last)
        deps = []
        if last[strand] is not None:
            deps.append(last[strand])
        if i > 4 and rng.random() < cross_frac:
            other = rng.randrange(max(0, i - 64), i)
            if other not in deps:
                deps.append(other)
        pc, taken = 0, None
        if op == "branch":
            site = rng.randrange(sites)
            pc = 0x1000 + site * 4
            taken = rng.random() < site_bias[site]
        trace.append(Instr(op, tuple(deps), pc, taken))
        # Only value-producing ALU/FP ops extend the strand's critical
        # chain; loads, stores and branches hang off it (addresses and
        # conditions are known early), which is what gives the kernels
        # their measured ILP.
        if op in ("int", "fadd", "fmul", "fdiv"):
            last[strand] = i
    return trace


def kernel_trace(kernel: str, n: int = 4000, seed: int = 0):
    params = KERNEL_TRACE_PARAMS[kernel]
    return make_trace(KERNEL_MIX[kernel], n=n, seed=seed, **params)


def phase_trace(phase: str, n: int = 4000, seed: int = 0):
    params = PHASE_TRACE_PARAMS[phase]
    return make_trace(PHASE_MIX[phase], n=n, seed=seed, **params)
