"""Vectorized particle system (debris sprays, smoke, spark bursts).

The paper folds particle effects into the FG-parallel workload: every
particle is independent, so the update is one wide data-parallel sweep —
here a handful of numpy array operations over a fixed-capacity pool.
Dead particles (expired lifetime) free their slots for reuse;
``ground_height`` gives a cheap bounce plane so bursts pile up instead
of falling forever.
"""

from __future__ import annotations

import math

import numpy as np

from ..math3d import Vec3

__all__ = ["ParticleSystem"]


class ParticleSystem:
    """Fixed-capacity particle pool with a flat ground collider."""

    RESTITUTION = 0.4
    DRAG = 0.02

    def __init__(self, capacity: int = 4096, ground_height: float = None):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.ground_height = ground_height
        self.positions = np.zeros((capacity, 3), dtype=np.float64)
        self.velocities = np.zeros((capacity, 3), dtype=np.float64)
        self.lifetimes = np.zeros(capacity, dtype=np.float64)  # <= 0: dead
        self.emitted_total = 0

    @property
    def alive(self) -> int:
        return int(np.count_nonzero(self.lifetimes > 0.0))

    def _free_slots(self, n: int):
        free = np.flatnonzero(self.lifetimes <= 0.0)
        return free[:n]

    def emit_burst(self, center: Vec3, count: int, speed: float = 5.0,
                   lifetime: float = 2.0) -> int:
        """Emit up to ``count`` particles radially from ``center`` on a
        deterministic Fibonacci-sphere direction fan; returns how many
        slots were actually free."""
        slots = self._free_slots(count)
        n = len(slots)
        if n == 0:
            return 0
        k = np.arange(n, dtype=np.float64)
        golden = math.pi * (3.0 - math.sqrt(5.0))
        y = 1.0 - 2.0 * (k + 0.5) / n
        r = np.sqrt(np.maximum(0.0, 1.0 - y * y))
        theta = golden * k
        dirs = np.stack(
            (r * np.cos(theta), y, r * np.sin(theta)), axis=1)
        self.positions[slots] = (center.x, center.y, center.z)
        self.velocities[slots] = dirs * speed
        self.lifetimes[slots] = lifetime
        self.emitted_total += n
        return n

    def step(self, dt: float, gravity: Vec3 = None) -> dict:
        """Advance every live particle; returns per-step stats."""
        g = gravity if gravity is not None else Vec3(0, -9.81, 0)
        live = self.lifetimes > 0.0
        n = int(np.count_nonzero(live))
        bounced = 0
        if n:
            vel = self.velocities[live]
            vel[:, 0] += g.x * dt
            vel[:, 1] += g.y * dt
            vel[:, 2] += g.z * dt
            vel *= 1.0 - self.DRAG * dt
            pos = self.positions[live] + vel * dt
            if self.ground_height is not None:
                below = pos[:, 1] < self.ground_height
                bounced = int(np.count_nonzero(below))
                pos[below, 1] = self.ground_height
                vel[below, 1] *= -self.RESTITUTION
            self.positions[live] = pos
            self.velocities[live] = vel
            self.lifetimes[live] -= dt
        return {"particles": n, "bounced": bounced, "alive": self.alive}
