"""The step watchdog: validate every sub-step, roll back and degrade.

:class:`StepWatchdog` wraps ``World.step()``. Before each sub-step it
captures a :class:`~repro.resilience.checkpoint.WorldSnapshot`; after
stepping it validates the world:

* non-finite state on any enabled body or cloth vertex,
* kinetic-energy gain beyond a threshold with no active explosion,
* penetration-depth runaway,
* PGS non-convergence (the per-island ``residual`` from
  ``solve_island``).

On violation it restores the last good snapshot and retries the step
down a bounded, escalating degradation ladder::

    double_iterations -> half_dt -> clamp_velocities -> quarantine

``double_iterations`` re-solves with 2x solver iterations; ``half_dt``
re-integrates with dt/2 over two sub-steps; ``clamp_velocities`` caps
linear/angular speeds around the retry; ``quarantine`` disables the
offending bodies and lets the rest of the scene continue. Each rung
retries from the same pre-step snapshot, so a later rung never inherits
an earlier rung's damage. If the whole ladder fails the step is kept
as-is and flagged ``unrecovered`` — the watchdog degrades, it never
raises.

Every incident is recorded as a :class:`HealthEvent` in the watchdog's
:class:`HealthReport` and mirrored onto the frame's ``FrameReport``
(``report.health``).
"""

from __future__ import annotations

import numpy as np

from ..math3d import Vec3
from ..profiling import FrameReport
from .checkpoint import WorldSnapshot

DEFAULT_LADDER = (
    "double_iterations",
    "half_dt",
    "clamp_velocities",
    "quarantine",
)


class WatchdogConfig:
    """Thresholds and the degradation ladder for the step watchdog."""

    def __init__(self, energy_gain_factor: float = 8.0,
                 energy_gain_min: float = 1.0e5,
                 penetration_limit: float = 1.0,
                 residual_limit: float = 100.0,
                 max_speed: float = 50.0,
                 max_angular_speed: float = 64.0,
                 ladder=DEFAULT_LADDER):
        # Energy violation: post > factor * (pre + min). The ``min``
        # floor tolerates legitimate injections (cannon muzzle energy,
        # fracture debris) without tripping the guard.
        self.energy_gain_factor = energy_gain_factor
        self.energy_gain_min = energy_gain_min
        self.penetration_limit = penetration_limit
        self.residual_limit = residual_limit
        self.max_speed = max_speed
        self.max_angular_speed = max_angular_speed
        self.ladder = tuple(ladder)
        self._check_ladder()

    def to_dict(self) -> dict:
        """JSON-native form (ladder as a list); the watchdog half of
        the :class:`repro.api.SessionSpec` wire format."""
        return {
            "energy_gain_factor": self.energy_gain_factor,
            "energy_gain_min": self.energy_gain_min,
            "penetration_limit": self.penetration_limit,
            "residual_limit": self.residual_limit,
            "max_speed": self.max_speed,
            "max_angular_speed": self.max_angular_speed,
            "ladder": list(self.ladder),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WatchdogConfig":
        return cls(**data)

    def _check_ladder(self):
        for rung in self.ladder:
            if rung not in DEFAULT_LADDER:
                raise ValueError(f"unknown ladder rung {rung!r}; known: "
                                 f"{DEFAULT_LADDER}")


class Violation:
    __slots__ = ("kind", "detail", "body_uids")

    def __init__(self, kind: str, detail: str, body_uids=()):
        self.kind = kind
        self.detail = detail
        self.body_uids = tuple(body_uids)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail,
                "body_uids": list(self.body_uids)}

    def __repr__(self):
        return f"Violation({self.kind}: {self.detail})"


class HealthEvent:
    """One watchdog incident: what went wrong and which rung fixed it."""

    __slots__ = ("step_index", "frame_index", "violations", "rung",
                 "recovered", "retries", "quarantined_uids")

    def __init__(self, step_index: int, frame_index: int, violations):
        self.step_index = step_index
        self.frame_index = frame_index
        self.violations = list(violations)
        self.rung = None  # ladder rung that recovered, or "unrecovered"
        self.recovered = False
        self.retries = 0
        self.quarantined_uids = ()

    @property
    def kinds(self):
        return tuple(v.kind for v in self.violations)

    def to_dict(self) -> dict:
        return {
            "step_index": self.step_index,
            "frame_index": self.frame_index,
            "violations": [v.to_dict() for v in self.violations],
            "rung": self.rung,
            "recovered": self.recovered,
            "retries": self.retries,
            "quarantined_uids": list(self.quarantined_uids),
        }

    def __repr__(self):
        return (f"HealthEvent(step={self.step_index},"
                f" kinds={self.kinds}, rung={self.rung},"
                f" recovered={self.recovered})")


class HealthReport:
    """The incident log a watchdog accumulates over a run."""

    def __init__(self):
        self.events = []

    def append(self, event: HealthEvent):
        self.events.append(event)

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def recovered(self) -> int:
        return sum(1 for e in self.events if e.recovered)

    @property
    def unrecovered(self) -> int:
        return sum(1 for e in self.events if not e.recovered)

    def rungs_fired(self):
        """Rung name per event, in order (``None`` never appears)."""
        return [e.rung for e in self.events]

    def to_dict(self) -> dict:
        return {"events": [e.to_dict() for e in self.events],
                "recovered": self.recovered,
                "unrecovered": self.unrecovered}

    def summary(self) -> str:
        if not self.events:
            return "healthy: 0 incidents"
        return (f"{len(self.events)} incidents,"
                f" {self.recovered} recovered,"
                f" {self.unrecovered} unrecovered;"
                f" rungs: {self.rungs_fired()}")

    def __repr__(self):
        return f"HealthReport({self.summary()})"


class StepWatchdog:
    """Wraps ``world.step()`` with validate / rollback / degrade."""

    def __init__(self, world, config: WatchdogConfig = None):
        self.world = world
        self.config = config if config is not None else WatchdogConfig()
        self.health = HealthReport()
        self.quarantined_uids = set()

    # -- stepping -------------------------------------------------------
    def step(self, driver=None):
        """One guarded sub-step; returns the HealthEvent if the step
        needed recovery, else None.

        ``driver`` (the benchmark's per-sub-step callback) runs inside
        the guarded region: a rollback reverts its effects (registered
        actors included) and each retry re-runs it.
        """
        world = self.world
        snapshot = WorldSnapshot.capture(world)
        pre_energy = self._total_energy()
        self._plain_step(driver)
        violations = self._check(pre_energy)
        if not violations:
            return None

        event = HealthEvent(snapshot.data["step_index"],
                            world.frame_index, violations)
        for rung in self.config.ladder:
            snapshot.restore(world)
            event.retries += 1
            getattr(self, "_rung_" + rung)(driver, violations, event)
            violations = self._check(pre_energy) or None
            if violations is None:
                event.rung = rung
                event.recovered = True
                break
        else:
            event.rung = "unrecovered"
        self.health.append(event)
        report = world.report
        if report is not None:
            if getattr(report, "health", None) is None:
                report.health = HealthReport()
            report.health.append(event)
        return event

    def step_frame(self, driver=None) -> FrameReport:
        """One guarded rendered frame (mirrors ``World.step_frame``)."""
        world = self.world
        world.report = FrameReport(world.frame_index)
        for _ in range(world.config.substeps_per_frame):
            self.step(driver)
        world.frame_index += 1
        return world.report

    def _plain_step(self, driver):
        if driver is not None:
            driver()
        self.world.step()

    # -- validation -----------------------------------------------------
    def _total_energy(self) -> float:
        """Kinetic energy over every non-static body, enabled or not.

        Disabled bodies are included so a runaway body that the
        kill-bounds cull disabled mid-step still shows up as an energy
        spike; non-finite bodies are skipped (they trip the NaN check
        instead, and would poison the sum)."""
        total = 0.0
        for body in self.world.bodies:
            if body.is_static or not body.is_finite():
                continue
            total += body.kinetic_energy()
        return total

    def _check(self, pre_energy: float):
        world = self.world
        cfg = self.config
        violations = []

        bad_uids = [b.uid for b in world.bodies
                    if not b.is_static and b.enabled
                    and not b.is_finite()]
        bad_cloth = 0
        for cloth in world.cloths:
            bad_cloth += int((~np.isfinite(cloth.positions)).sum())
            bad_cloth += int((~np.isfinite(cloth.prev_positions)).sum())
        if bad_uids or bad_cloth:
            violations.append(Violation(
                "non_finite",
                f"{len(bad_uids)} bodies, {bad_cloth} cloth vertex "
                f"components non-finite", bad_uids))
        else:
            post_energy = self._total_energy()
            threshold = cfg.energy_gain_factor * (
                pre_energy + cfg.energy_gain_min)
            if world.last_blast_bodies == 0 and post_energy > threshold:
                violations.append(Violation(
                    "energy_runaway",
                    f"kinetic energy {pre_energy:.3g} -> "
                    f"{post_energy:.3g} J with no active explosion",
                    self._energy_offenders()))

        if world.last_max_penetration > cfg.penetration_limit:
            violations.append(Violation(
                "penetration_runaway",
                f"max penetration {world.last_max_penetration:.3g} m "
                f"exceeds {cfg.penetration_limit} m",
                world.last_penetration_uids))

        worst = (0.0, ())
        for residual, uids in world.last_island_residuals:
            if residual > cfg.residual_limit and residual > worst[0]:
                worst = (residual, uids)
        if worst[0] > 0.0:
            violations.append(Violation(
                "solver_divergence",
                f"PGS residual {worst[0]:.3g} exceeds "
                f"{cfg.residual_limit}", worst[1]))
        return violations

    def _energy_offenders(self):
        cfg = self.config
        out = []
        for body in self.world.bodies:
            if body.is_static or not body.is_finite():
                continue
            if (body.linear_velocity.length() > 4.0 * cfg.max_speed
                    or body.angular_velocity.length()
                    > 4.0 * cfg.max_angular_speed):
                out.append(body.uid)
        return out

    # -- degradation ladder ---------------------------------------------
    def _rung_double_iterations(self, driver, violations, event):
        cfg = self.world.config
        saved = cfg.solver_iterations
        cfg.solver_iterations = saved * 2
        try:
            self._plain_step(driver)
        finally:
            cfg.solver_iterations = saved

    def _rung_half_dt(self, driver, violations, event):
        """Retry as two half-dt sub-steps covering the same interval.

        The driver runs once (it models per-logical-sub-step input);
        ``step_index`` advances by two for this interval."""
        cfg = self.world.config
        saved = cfg.dt
        cfg.dt = saved * 0.5
        try:
            if driver is not None:
                driver()
            self.world.step()
            self.world.step()
        finally:
            cfg.dt = saved

    def _rung_clamp_velocities(self, driver, violations, event):
        if driver is not None:
            driver()
        self._clamp_velocities()
        self.world.step()
        self._clamp_velocities()

    def _rung_quarantine(self, driver, violations, event):
        uids = set()
        for violation in violations:
            uids.update(violation.body_uids)
        for body in self.world.bodies:
            if body.uid in uids and not body.is_static:
                body.enabled = False
                # Park the corpse: a quarantined runaway must not keep
                # its huge velocity in the energy audit.
                body.linear_velocity = Vec3()
                body.angular_velocity = Vec3()
        self.quarantined_uids |= uids
        event.quarantined_uids = tuple(sorted(uids))
        self._plain_step(driver)

    def _clamp_velocities(self):
        cfg = self.config
        for body in self.world.bodies:
            if body.is_static or not body.enabled:
                continue
            if not body.is_finite():
                continue
            speed = body.linear_velocity.length()
            if speed > cfg.max_speed:
                body.linear_velocity = body.linear_velocity * (
                    cfg.max_speed / speed)
            spin = body.angular_velocity.length()
            if spin > cfg.max_angular_speed:
                body.angular_velocity = body.angular_velocity * (
                    cfg.max_angular_speed / spin)
