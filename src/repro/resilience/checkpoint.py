"""Deterministic world checkpoints.

A :class:`WorldSnapshot` captures the complete dynamic state of a
:class:`~repro.engine.World` — body poses/velocities/accumulators and
mass properties, sleep state, joint enabled/broken flags (plus their
last accumulated impulses, for forensics), the contact warm-start
impulse cache, cloth vertex positions and previous positions, explosion
timers, prefracture trigger flags, step/frame counters, and the state of
registered scene actors (e.g. cannons). Restoring a snapshot and
re-stepping replays the original run **bit-identically** — proven by the
existing :class:`~repro.engine.recorder.TrajectoryRecorder` in the test
suite — which makes snapshots the substrate for watchdog rollback,
pause/resume, replay, and (later) distributed sharding.

The snapshot payload is JSON-native from the moment of capture
(``dict``/``list``/scalars only), so ``to_json``/``from_json`` is a pure
serialization concern: Python's ``repr``-based float formatting
round-trips every finite ``float64`` exactly.

Bodies and geoms created *after* a capture (cannon shells, for example)
are removed on restore, and the global uid counters are rewound so
re-spawned objects receive the same uids as in the original run.
Conversely, restoring into a *fresh* build of the same scene (the
migration path: the snapshot travels to another process, which rebuilds
the scenario and replays the state onto it) reconstructs any bodies and
geoms the snapshot has but the build doesn't, from the per-geom
``build_state`` records captured since snapshot version 2.
"""

from __future__ import annotations

import json

from ..collision import Geom
from ..dynamics import Body
from ..engine.explosions import Explosion
from ..geometry import shape_from_dict
from ..math3d import Quaternion, Transform, Vec3


class SnapshotMismatchError(RuntimeError):
    """Raised when a snapshot is restored into an incompatible world."""


class WorldSnapshot:
    VERSION = 2

    def __init__(self, data: dict):
        self.data = data

    # -- capture --------------------------------------------------------
    @classmethod
    def capture(cls, world) -> "WorldSnapshot":
        data = {
            "version": cls.VERSION,
            "frame_index": world.frame_index,
            "step_index": world.step_index,
            "time": world.time,
            "culled": world.culled,
            "body_next_uid": Body._next_uid,
            "geom_next_uid": Geom._next_uid,
            "n_geoms": len(world.geoms),
            "n_joints": len(world.joints),
            "bodies": [b.snapshot_state() for b in world.bodies],
            "geoms": [g.build_state() for g in world.geoms],
            "joints": [j.snapshot_state() for j in world.joints],
            "no_collide_pairs": sorted(
                sorted(pair) for pair in world._no_collide_pairs),
            "impulse_cache": [
                [list(key), list(value)]
                for key, value in sorted(world._impulse_cache.items())
            ],
            "contacted_bodies": sorted(world._contacted_bodies),
            "cloths": [c.snapshot_state() for c in world.cloths],
            "explosions": [e.snapshot_state() for e in world.explosions],
            "prefractured": [pf.snapshot_state()
                             for pf in world._prefracture_registry],
            "actors": [a.snapshot_state() for a in world.actors],
        }
        return cls(data)

    # -- reconstruction -------------------------------------------------
    def _reconstruct(self, world):
        """Rebuild bodies/geoms the snapshot has but ``world`` lacks.

        A fresh build of the captured scene contains only the authored
        structure; objects spawned mid-run before the capture (cannon
        shells, debris) are appended here from the snapshot's build
        records so the positional restore below lines up. The temporary
        uid draws from ``Body()``/``Geom()`` are immaterial: restore
        rewinds both counters to the captured values right after.
        """
        d = self.data
        for state in d["bodies"][len(world.bodies):]:
            body = Body()
            body.uid = state["uid"]
            body.index = len(world.bodies)
            world.bodies.append(body)
        records = d["geoms"]
        for geom, rec in zip(world.geoms, records):
            if geom.uid != rec["uid"]:
                raise SnapshotMismatchError(
                    f"geom uid mismatch: #{geom.uid} vs snapshot "
                    f"#{rec['uid']}")
        for rec in records[len(world.geoms):]:
            slot = rec["body"]
            body = world.bodies[slot] if slot is not None else None
            px, py, pz, qw, qx, qy, qz = rec["static_transform"]
            geom = Geom(
                shape_from_dict(rec["shape"]), body=body,
                transform=Transform(Vec3(px, py, pz),
                                    Quaternion(qw, qx, qy, qz)),
                friction=rec["friction"],
                restitution=rec["restitution"])
            geom.uid = rec["uid"]
            geom.index = len(world.geoms)
            group = rec["collision_group"]
            geom.collision_group = (tuple(group) if isinstance(group, list)
                                    else group)
            world.geoms.append(geom)

    # -- restore --------------------------------------------------------
    def restore(self, world):
        """Rewind ``world`` to the captured state, in place.

        The world must be the one the snapshot was captured from, or a
        build of the same scene: restore matches bodies, joints and
        cloths positionally and verifies body uids. A fresh build may be
        *smaller* than the snapshot (it lacks the shells/debris spawned
        mid-run before the capture); the missing bodies and geoms are
        reconstructed from the snapshot's build records.
        """
        d = self.data
        self._reconstruct(world)
        if len(world.bodies) < len(d["bodies"]) \
                or len(world.geoms) < d["n_geoms"] \
                or len(world.joints) < d["n_joints"] \
                or len(world.cloths) != len(d["cloths"]) \
                or len(world.actors) != len(d["actors"]) \
                or len(world._prefracture_registry) != len(d["prefractured"]):
            raise SnapshotMismatchError(
                "world structure is smaller than the snapshot; was it "
                "captured from this scene?")

        # Objects spawned after the capture are removed, and the global
        # uid counters rewound, so post-restore spawns replay exactly.
        del world.bodies[len(d["bodies"]):]
        del world.geoms[d["n_geoms"]:]
        del world.joints[d["n_joints"]:]
        Body._next_uid = d["body_next_uid"]
        Geom._next_uid = d["geom_next_uid"]

        for body, state in zip(world.bodies, d["bodies"]):
            if body.uid != state["uid"]:
                raise SnapshotMismatchError(
                    f"body uid mismatch: #{body.uid} vs snapshot "
                    f"#{state['uid']}")
            body.restore_state(state)
        for joint, state in zip(world.joints, d["joints"]):
            joint.restore_state(state)
        for cloth, state in zip(world.cloths, d["cloths"]):
            cloth.restore_state(state)

        world._no_collide_pairs = {
            frozenset(pair) for pair in d["no_collide_pairs"]}
        world._impulse_cache = {
            tuple(key): tuple(value)
            for key, value in d["impulse_cache"]}
        world._contacted_bodies = set(d["contacted_bodies"])

        world.explosions = [Explosion.from_state(s)
                            for s in d["explosions"]]
        by_uid = {pf.body.uid: pf for pf in world._prefracture_registry}
        for state in d["prefractured"]:
            pf = by_uid.get(state["body_uid"])
            if pf is None:
                raise SnapshotMismatchError(
                    f"no prefractured entry for body "
                    f"#{state['body_uid']}")
            pf.restore_state(state)
        world.prefractured = [pf for pf in world._prefracture_registry
                              if not pf.broken]

        for actor, state in zip(world.actors, d["actors"]):
            actor.restore_state(state)

        world.frame_index = d["frame_index"]
        world.step_index = d["step_index"]
        world.time = d["time"]
        world.culled = d["culled"]
        return world

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """A deep, independent copy of the JSON-native payload."""
        return json.loads(self.to_json())

    @classmethod
    def from_dict(cls, data: dict) -> "WorldSnapshot":
        version = data.get("version")
        if version != cls.VERSION:
            raise SnapshotMismatchError(
                f"snapshot version {version!r} != {cls.VERSION}")
        return cls(data)

    def to_json(self) -> str:
        return json.dumps(self.data)

    @classmethod
    def from_json(cls, text: str) -> "WorldSnapshot":
        return cls.from_dict(json.loads(text))

    def save(self, path: str):
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "WorldSnapshot":
        with open(path) as fh:
            return cls.from_json(fh.read())

    # -- introspection --------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, WorldSnapshot) and self.data == other.data

    def __repr__(self):
        d = self.data
        return (f"WorldSnapshot(step={d['step_index']},"
                f" bodies={len(d['bodies'])}, joints={d['n_joints']},"
                f" cloths={len(d['cloths'])})")
