"""Deterministic fault injection.

The harness the resilience tests use to prove each watchdog recovery
rung actually fires. A :class:`FaultSchedule` is a seeded, reproducible
list of :class:`Fault` entries — *when* (absolute ``world.step_index``)
and *what kind*; a :class:`FaultInjector` wired into a benchmark's
driver applies each fault when its step comes up:

* ``nan_position`` — poison a body's position with NaN,
* ``huge_impulse`` — apply a 1e9 N·s impulse to a body,
* ``corrupt_cache`` — overwrite a warm-start impulse-cache entry with
  NaN (poisons the next solve through warm starting),
* ``zero_inertia`` — zero a body's inertia tensor, i.e. its inverse
  blows up to infinity (the next angular update goes non-finite).

Targets are picked deterministically (seeded RNG over the enabled
dynamic bodies, ordered by uid) and bound on first application, so a
retry after a watchdog rollback re-injects a *persistent* fault into
the same body. Transient faults (the default) fire exactly once —
after the watchdog rolls the step back, the retry runs clean, modeling
a soft error. Persistent faults re-fire on every retry of their step
(the injector keys on ``world.step_index``, which rollback rewinds),
modeling a hard fault that only quarantine or clamping can contain.

The injector itself is deliberately *not* a world actor: rollback must
not rewind the fired-flags, or a transient fault would replay forever.
"""

from __future__ import annotations

import random

FAULT_KINDS = (
    "nan_position",
    "huge_impulse",
    "corrupt_cache",
    "zero_inertia",
)

HUGE_IMPULSE = 1.0e9


class Fault:
    __slots__ = ("step", "kind", "persistent", "fired", "target_uid")

    def __init__(self, step: int, kind: str, persistent: bool = False):
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; known: {FAULT_KINDS}")
        self.step = step
        self.kind = kind
        self.persistent = persistent
        self.fired = False
        self.target_uid = None

    def __repr__(self):
        mode = "persistent" if self.persistent else "transient"
        return (f"Fault(step={self.step}, {self.kind}, {mode},"
                f" target={self.target_uid})")


class FaultSchedule:
    """An ordered, seeded list of faults."""

    def __init__(self, faults):
        self.faults = sorted(faults, key=lambda f: f.step)

    @classmethod
    def seeded(cls, seed: int, steps: int, count: int = 4,
               kinds=FAULT_KINDS, first_step: int = 2,
               persistent: bool = False) -> "FaultSchedule":
        """``count`` faults spread over ``[first_step, steps)``, kinds
        cycled deterministically, injection steps drawn from ``seed``."""
        rng = random.Random(seed)
        span = max(1, steps - first_step)
        picks = sorted(rng.randrange(span) + first_step
                       for _ in range(count))
        return cls(Fault(step, kinds[i % len(kinds)], persistent)
                   for i, step in enumerate(picks))

    def __iter__(self):
        return iter(self.faults)

    def __len__(self):
        return len(self.faults)

    def __repr__(self):
        return f"FaultSchedule({self.faults!r})"


class FaultInjector:
    """Applies a schedule's faults to a world; call ``tick()`` once per
    sub-step from the benchmark driver, before ``world.step()``."""

    def __init__(self, world, schedule: FaultSchedule, seed: int = 0):
        self.world = world
        self.schedule = schedule
        self.seed = seed
        self.injected = []  # (step, kind, target_uid) log

    def tick(self):
        step = self.world.step_index
        for fault in self.schedule:
            if fault.step != step:
                continue
            if fault.fired and not fault.persistent:
                continue
            self._apply(fault)

    # -- fault implementations ------------------------------------------
    def _apply(self, fault: Fault):
        body = self._target(fault)
        if body is None:
            return
        fault.fired = True
        getattr(self, "_inject_" + fault.kind)(body)
        self.injected.append((fault.step, fault.kind, body.uid))

    def _target(self, fault: Fault):
        """The fault's bound target, else a seeded deterministic pick
        among the enabled dynamic bodies (bound for future retries)."""
        if fault.target_uid is not None:
            for body in self.world.bodies:
                if body.uid == fault.target_uid:
                    return body
            return None
        candidates = sorted(
            (b for b in self.world.bodies
             if not b.is_static and b.enabled and b.is_finite()),
            key=lambda b: b.uid)
        if not candidates:
            return None
        rng = random.Random(f"{self.seed}/{fault.step}/{fault.kind}")
        body = candidates[rng.randrange(len(candidates))]
        fault.target_uid = body.uid
        return body

    def _inject_nan_position(self, body):
        from ..math3d import Vec3
        body.position = Vec3(float("nan"), float("nan"), float("nan"))

    def _inject_huge_impulse(self, body):
        from ..math3d import Vec3
        body.wake()
        body.apply_impulse(Vec3(HUGE_IMPULSE, 0.0, 0.0))

    def _inject_corrupt_cache(self, body):
        # Body-independent: poison the (deterministically) first
        # warm-start cache entry. Falls back to a huge impulse when the
        # cache is empty so the fault always has teeth.
        cache = self.world._impulse_cache
        if cache:
            key = min(cache)
            cache[key] = tuple(float("nan") for _ in cache[key])
        else:
            self._inject_huge_impulse(body)

    def _inject_zero_inertia(self, body):
        from ..math3d import Mat3
        inf = float("inf")
        body.inertia_body = Mat3.zero()
        body.inv_inertia_body = Mat3.diagonal(inf, inf, inf)
        body._inv_inertia_world = None
