"""Simulation resilience: checkpoint/restore, the step watchdog with
rollback-and-degrade recovery, and deterministic fault injection."""

from .checkpoint import SnapshotMismatchError, WorldSnapshot
from .faults import (
    FAULT_KINDS,
    Fault,
    FaultInjector,
    FaultSchedule,
)
from .guard import (
    DEFAULT_LADDER,
    HealthEvent,
    HealthReport,
    StepWatchdog,
    Violation,
    WatchdogConfig,
)

__all__ = [
    "WorldSnapshot",
    "SnapshotMismatchError",
    "StepWatchdog",
    "WatchdogConfig",
    "HealthReport",
    "HealthEvent",
    "Violation",
    "DEFAULT_LADDER",
    "FaultSchedule",
    "FaultInjector",
    "Fault",
    "FAULT_KINDS",
]
