"""Narrowphase: contact generation for every supported shape pair.

``collide(geom_a, geom_b)`` returns a list of :class:`Contact` whose
normals point **from geom_b toward geom_a** (pushing ``a`` along the
normal separates the pair). ``feature`` identifies which vertex/face
produced the point, keying the warm-start impulse cache across steps.
"""

from __future__ import annotations

from ..math3d import Vec3

# Treat a vertex as touching slightly before it penetrates, so resting
# manifolds (which hover around the solver's penetration slop) keep all
# their points from step to step.
CONTACT_MARGIN = 0.002


class Contact:
    __slots__ = ("geom_a", "geom_b", "position", "normal", "depth",
                 "feature")

    def __init__(self, geom_a, geom_b, position: Vec3, normal: Vec3,
                 depth: float, feature: int = 0):
        self.geom_a = geom_a
        self.geom_b = geom_b
        self.position = position
        self.normal = normal
        self.depth = depth
        self.feature = feature

    def __repr__(self):
        return (f"Contact(at={self.position!r}, n={self.normal!r},"
                f" depth={self.depth:.4g}, feature={self.feature})")

    def flipped(self, geom_a, geom_b) -> "Contact":
        return Contact(geom_a, geom_b, self.position, -self.normal,
                       self.depth, self.feature)


# ---------------------------------------------------------------------------
# sphere vs *


def _sphere_sphere(ga, gb):
    pa, pb = ga.transform.position, gb.transform.position
    ra, rb = ga.shape.radius, gb.shape.radius
    delta = pa - pb
    dist = delta.length()
    depth = ra + rb - dist
    if depth < -CONTACT_MARGIN:
        return []
    n = delta / dist if dist > 1e-9 else Vec3(0, 1, 0)
    pos = pb + n * (rb - 0.5 * depth)
    return [Contact(ga, gb, pos, n, max(0.0, depth))]


def _sphere_plane(ga, gb):
    plane = gb.shape
    c = ga.transform.position
    d = plane.signed_distance(c)
    depth = ga.shape.radius - d
    if depth < -CONTACT_MARGIN:
        return []
    n = plane.normal
    pos = c - n * d
    return [Contact(ga, gb, pos, n, max(0.0, depth))]


def _sphere_box(ga, gb):
    box_tf = gb.transform
    h = gb.shape.half_extents
    c_local = box_tf.apply_inverse(ga.transform.position)
    clamped = Vec3(
        min(max(c_local.x, -h.x), h.x),
        min(max(c_local.y, -h.y), h.y),
        min(max(c_local.z, -h.z), h.z),
    )
    delta = c_local - clamped
    dist_sq = delta.length_squared()
    r = ga.shape.radius
    if dist_sq > 1e-18:
        dist = dist_sq ** 0.5
        depth = r - dist
        if depth < -CONTACT_MARGIN:
            return []
        n_local = delta / dist
        pos_local = clamped
    else:
        # Center inside the box: exit through the nearest face.
        gaps = [
            (h.x - abs(c_local.x), Vec3(1.0 if c_local.x >= 0 else -1.0,
                                        0, 0)),
            (h.y - abs(c_local.y), Vec3(0, 1.0 if c_local.y >= 0 else -1.0,
                                        0)),
            (h.z - abs(c_local.z), Vec3(0, 0,
                                        1.0 if c_local.z >= 0 else -1.0)),
        ]
        gap, n_local = min(gaps, key=lambda g: g[0])
        depth = r + gap
        pos_local = c_local
    n = box_tf.apply_vector(n_local)
    pos = box_tf.apply(pos_local)
    return [Contact(ga, gb, pos, n, max(0.0, depth))]


def _sphere_heightfield(ga, gb):
    hf = gb.shape
    c = gb.transform.apply_inverse(ga.transform.position)
    h = hf.height_at(c.x, c.z)
    r = ga.shape.radius
    if c.y - h > r + CONTACT_MARGIN:
        return []
    n_local = hf.normal_at(c.x, c.z)
    surface = Vec3(c.x, h, c.z)
    depth = r - n_local.dot(c - surface)
    if depth < 0.0:
        return []
    n = gb.transform.apply_vector(n_local)
    pos = gb.transform.apply(surface)
    return [Contact(ga, gb, pos, n, depth)]


# ---------------------------------------------------------------------------
# box vs *


def _box_plane(ga, gb):
    plane = gb.shape
    tf = ga.transform
    contacts = []
    for i, corner in enumerate(ga.shape.corners()):
        p = tf.apply(corner)
        sd = plane.signed_distance(p)
        if sd < CONTACT_MARGIN:
            contacts.append(Contact(ga, gb, p, plane.normal,
                                    max(0.0, -sd), feature=i))
    return contacts


def _box_heightfield(ga, gb):
    hf = gb.shape
    tf = ga.transform
    inv = gb.transform
    contacts = []
    for i, corner in enumerate(ga.shape.corners()):
        p = inv.apply_inverse(tf.apply(corner))
        h = hf.height_at(p.x, p.z)
        pen = h - p.y
        if pen > -CONTACT_MARGIN:
            n_local = hf.normal_at(p.x, p.z)
            n = gb.transform.apply_vector(n_local)
            pos = gb.transform.apply(Vec3(p.x, p.y, p.z))
            contacts.append(Contact(ga, gb, pos, n,
                                    max(0.0, pen * n_local.y), feature=i))
    return contacts


def _box_axes(geom):
    rot = geom.transform.orientation.to_mat3()
    return [rot.column(0), rot.column(1), rot.column(2)]


def _box_extent_along(geom, axis: Vec3) -> float:
    h = geom.shape.half_extents
    ax = _box_axes(geom)
    return (abs(axis.dot(ax[0])) * h.x + abs(axis.dot(ax[1])) * h.y
            + abs(axis.dot(ax[2])) * h.z)


def _point_in_box(p_world: Vec3, geom, margin: float) -> bool:
    h = geom.shape.half_extents
    p = geom.transform.apply_inverse(p_world)
    return (abs(p.x) <= h.x + margin and abs(p.y) <= h.y + margin
            and abs(p.z) <= h.z + margin)


def _box_box(ga, gb):
    """SAT over the 15 candidate axes, manifold from penetrating corners."""
    ca = ga.transform.position
    cb = gb.transform.position
    delta = ca - cb
    axes_a = _box_axes(ga)
    axes_b = _box_axes(gb)

    candidates = list(axes_a) + list(axes_b)
    for u in axes_a:
        for v in axes_b:
            cross = u.cross(v)
            if cross.length_squared() > 1e-12:
                candidates.append(cross.normalized())

    best_overlap = float("inf")
    best_axis = None
    for axis in candidates:
        span = _box_extent_along(ga, axis) + _box_extent_along(gb, axis)
        dist = axis.dot(delta)
        overlap = span - abs(dist)
        if overlap < -CONTACT_MARGIN:
            return []
        if overlap < best_overlap:
            best_overlap = overlap
            # Orient from b toward a.
            best_axis = axis if dist >= 0 else -axis

    n = best_axis
    contacts = []
    # Corners of A inside B: depth measured to B's far surface along n.
    b_face = n.dot(cb) + _box_extent_along(gb, n)
    for i, corner in enumerate(ga.shape.corners()):
        p = ga.transform.apply(corner)
        if _point_in_box(p, gb, CONTACT_MARGIN):
            depth = b_face - n.dot(p)
            contacts.append(Contact(ga, gb, p, n, max(0.0, depth),
                                    feature=i))
    # Corners of B inside A.
    a_face = n.dot(ca) - _box_extent_along(ga, n)
    for i, corner in enumerate(gb.shape.corners()):
        p = gb.transform.apply(corner)
        if _point_in_box(p, ga, CONTACT_MARGIN):
            depth = n.dot(p) - a_face
            contacts.append(Contact(ga, gb, p, n, max(0.0, depth),
                                    feature=8 + i))
    if not contacts:
        # Edge-edge (or grazing) case: single point at A's support
        # toward B, with the SAT overlap as depth.
        support = ca
        for axis, h in zip(axes_a, (ga.shape.half_extents.x,
                                    ga.shape.half_extents.y,
                                    ga.shape.half_extents.z)):
            s = axis.dot(n)
            support = support - axis * (h if s > 0 else -h)
        contacts.append(Contact(ga, gb, support, n,
                                max(0.0, best_overlap), feature=16))
    return contacts


# ---------------------------------------------------------------------------
# capsule vs * (treated as a swept sphere sampled along the segment)


def _capsule_sample_points(geom):
    a, b = geom.shape.endpoints(geom.transform)
    mid = (a + b) * 0.5
    return [(0, a), (1, mid), (2, b)]


class _SphereProxy:
    """Stand-in geom so capsule tests reuse the sphere routines."""

    def __init__(self, source, center: Vec3, radius: float):
        from ..geometry import Sphere
        from ..math3d import Transform
        self.shape = Sphere(radius)
        self.body = source.body
        self.static_transform = Transform(center)
        self.friction = source.friction
        self.restitution = source.restitution
        self.index = source.index
        self.transform = Transform(center)


def _capsule_vs(other_fn, feature_stride=3):
    def run(ga, gb):
        contacts = []
        r = ga.shape.radius
        for k, center in _capsule_sample_points(ga):
            proxy = _SphereProxy(ga, center, r)
            for c in other_fn(proxy, gb):
                contacts.append(Contact(ga, gb, c.position, c.normal,
                                        c.depth, feature=k))
        return contacts
    return run


def _capsule_capsule(ga, gb):
    pa0, pa1 = ga.shape.endpoints(ga.transform)
    pb0, pb1 = gb.shape.endpoints(gb.transform)
    pa, pb = _closest_segment_points(pa0, pa1, pb0, pb1)
    delta = pa - pb
    dist = delta.length()
    depth = ga.shape.radius + gb.shape.radius - dist
    if depth < -CONTACT_MARGIN:
        return []
    n = delta / dist if dist > 1e-9 else Vec3(0, 1, 0)
    pos = pb + n * gb.shape.radius
    return [Contact(ga, gb, pos, n, max(0.0, depth))]


def _closest_segment_points(p1, q1, p2, q2):
    d1 = q1 - p1
    d2 = q2 - p2
    r = p1 - p2
    a = d1.length_squared()
    e = d2.length_squared()
    f = d2.dot(r)
    if a < 1e-12 and e < 1e-12:
        return p1, p2
    if a < 1e-12:
        s = 0.0
        t = min(max(f / e, 0.0), 1.0)
    else:
        c = d1.dot(r)
        if e < 1e-12:
            t = 0.0
            s = min(max(-c / a, 0.0), 1.0)
        else:
            b = d1.dot(d2)
            denom = a * e - b * b
            s = (min(max((b * f - c * e) / denom, 0.0), 1.0)
                 if denom > 1e-12 else 0.0)
            t = (b * s + f) / e
            if t < 0.0:
                t = 0.0
                s = min(max(-c / a, 0.0), 1.0)
            elif t > 1.0:
                t = 1.0
                s = min(max((b - c) / a, 0.0), 1.0)
    return p1 + d1 * s, p2 + d2 * t


# ---------------------------------------------------------------------------
# dispatch

_DISPATCH = {
    ("sphere", "sphere"): _sphere_sphere,
    ("sphere", "plane"): _sphere_plane,
    ("sphere", "box"): _sphere_box,
    ("sphere", "heightfield"): _sphere_heightfield,
    ("box", "plane"): _box_plane,
    ("box", "box"): _box_box,
    ("box", "heightfield"): _box_heightfield,
    ("capsule", "plane"): _capsule_vs(_sphere_plane),
    ("capsule", "box"): _capsule_vs(_sphere_box),
    ("capsule", "sphere"): _capsule_vs(_sphere_sphere),
    ("capsule", "heightfield"): _capsule_vs(_sphere_heightfield),
    ("capsule", "capsule"): _capsule_capsule,
}


def collide(geom_a, geom_b):
    """Contacts between two geoms (normals point from b to a)."""
    ka, kb = geom_a.shape.kind, geom_b.shape.kind
    fn = _DISPATCH.get((ka, kb))
    if fn is not None:
        return fn(geom_a, geom_b)
    fn = _DISPATCH.get((kb, ka))
    if fn is not None:
        return [c.flipped(geom_a, geom_b) for c in fn(geom_b, geom_a)]
    return []  # unsupported pair (e.g. plane-plane) never collides
