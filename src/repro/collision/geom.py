"""Geom: a collision shape placed in the world.

A geom either rides on a rigid body (dynamic) or carries its own static
transform. Per-geom material properties feed the contact solver:
friction combines as the geometric mean, restitution as the max.
"""

from __future__ import annotations

from ..math3d import Transform


class Geom:
    _next_uid = 0

    def __init__(self, shape, body=None, transform: Transform = None,
                 friction: float = 0.5, restitution: float = 0.0):
        self.shape = shape
        self.body = body
        self.static_transform = (transform if transform is not None
                                 else Transform())
        self.friction = friction
        self.restitution = restitution
        self.uid = Geom._next_uid
        Geom._next_uid += 1
        self.index = self.uid  # densely reassigned when added to a World
        self.collision_group = None  # geoms sharing a group never collide

    def __repr__(self):
        tag = "static" if self.body is None else f"body#{self.body.uid}"
        return f"Geom({self.shape!r}, {tag})"

    @property
    def gid(self) -> int:
        """Stable geom id (alias of ``uid``; survives re-indexing)."""
        return self.uid

    @property
    def is_static(self) -> bool:
        return self.body is None or self.body.is_static

    @property
    def enabled(self) -> bool:
        return self.body.enabled if self.body is not None else True

    @property
    def transform(self) -> Transform:
        if self.body is not None:
            return self.body.transform
        return self.static_transform

    def aabb(self):
        return self.shape.aabb(self.transform)
