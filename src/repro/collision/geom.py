"""Geom: a collision shape placed in the world.

A geom either rides on a rigid body (dynamic) or carries its own static
transform. Per-geom material properties feed the contact solver:
friction combines as the geometric mean, restitution as the max.
"""

from __future__ import annotations

from ..math3d import Transform


class Geom:
    _next_uid = 0

    def __init__(self, shape, body=None, transform: Transform = None,
                 friction: float = 0.5, restitution: float = 0.0):
        self.shape = shape
        self.body = body
        self.static_transform = (transform if transform is not None
                                 else Transform())
        self.friction = friction
        self.restitution = restitution
        self.uid = Geom._next_uid
        Geom._next_uid += 1
        self.index = self.uid  # densely reassigned when added to a World
        self.collision_group = None  # geoms sharing a group never collide

    def __repr__(self):
        tag = "static" if self.body is None else f"body#{self.body.uid}"
        return f"Geom({self.shape!r}, {tag})"

    @property
    def gid(self) -> int:
        """Stable geom id (alias of ``uid``; survives re-indexing)."""
        return self.uid

    def build_state(self) -> dict:
        """JSON-native construction record (shape, material, body slot).

        Complements :meth:`Body.snapshot_state`: together they let a
        :class:`~repro.resilience.WorldSnapshot` be restored into a
        *fresh* build of the same scene, reconstructing geoms that were
        spawned after the build (cannon shells, debris) instead of
        requiring them to pre-exist. ``body`` is the owning body's dense
        world slot (or ``None`` for static geoms); ``collision_group``
        tuples flatten to lists on the JSON wire and are re-tupled on
        reconstruction.
        """
        t = self.static_transform
        p, q = t.position, t.orientation
        group = self.collision_group
        if isinstance(group, tuple):
            group = list(group)
        return {
            "uid": self.uid,
            "body": self.body.index if self.body is not None else None,
            "shape": self.shape.to_dict(),
            "friction": self.friction,
            "restitution": self.restitution,
            "collision_group": group,
            "static_transform": [p.x, p.y, p.z, q.w, q.x, q.y, q.z],
        }

    @property
    def is_static(self) -> bool:
        return self.body is None or self.body.is_static

    @property
    def enabled(self) -> bool:
        return self.body.enabled if self.body is not None else True

    @property
    def transform(self) -> Transform:
        if self.body is not None:
            return self.body.transform
        return self.static_transform

    def aabb(self):
        return self.shape.aabb(self.transform)
