"""Collision detection: geoms, broadphase strategies, narrowphase."""

from .broadphase import (
    BROADPHASES,
    BruteForceBroadphase,
    SpatialHashBroadphase,
    SweepAndPrune,
)
from .geom import Geom
from .narrowphase import CONTACT_MARGIN, Contact, collide
from .raycast import RayHit, raycast_world

__all__ = [
    "Geom",
    "RayHit",
    "raycast_world",
    "Contact",
    "collide",
    "CONTACT_MARGIN",
    "SweepAndPrune",
    "BruteForceBroadphase",
    "SpatialHashBroadphase",
    "BROADPHASES",
]
