"""Collision detection: geoms, broadphase strategies, narrowphase."""

from .broadphase import (
    BROADPHASES,
    BruteForceBroadphase,
    SpatialHashBroadphase,
    SweepAndPrune,
)
from .geom import Geom
from .narrowphase import CONTACT_MARGIN, Contact, collide

__all__ = [
    "Geom",
    "Contact",
    "collide",
    "CONTACT_MARGIN",
    "SweepAndPrune",
    "BruteForceBroadphase",
    "SpatialHashBroadphase",
    "BROADPHASES",
]
