"""Broadphase strategies: candidate-pair generation from AABBs.

The primary strategy is incremental sweep-and-prune: geoms stay sorted
along one axis between calls, so the near-sorted insertion sort is
~O(n) on coherent frames and the sweep emits only x-overlapping pairs
for the (cheap) y/z AABB check. Brute force and a uniform spatial hash
exist as ablation baselines.

All strategies return pairs ordered by ``(min(index), max(index))`` so
every downstream phase iterates deterministically, and never emit
static-static pairs.
"""

from __future__ import annotations


class _StatsMixin:
    """Uniform ``last_stats`` view over per-strategy counters."""

    @property
    def last_stats(self) -> dict:
        return {
            "tests": getattr(self, "tests", 0),
            "swaps": getattr(self, "swaps", 0),
            "pairs": getattr(self, "last_pairs", 0),
        }


def _pair_key(ga, gb):
    if ga.index <= gb.index:
        return (ga.index, gb.index)
    return (gb.index, ga.index)


def _emit(ga, gb):
    return (ga, gb) if ga.index <= gb.index else (gb, ga)


class BruteForceBroadphase(_StatsMixin):
    """O(n^2) AABB tests — the correctness reference."""

    name = "brute"

    def __init__(self):
        self.tests = 0

    def pairs(self, geoms):
        geoms = [g for g in geoms if g.enabled]
        boxes = [(g, g.aabb()) for g in geoms]
        out = []
        tests = 0
        for i in range(len(boxes)):
            gi, bi = boxes[i]
            for j in range(i + 1, len(boxes)):
                gj, bj = boxes[j]
                if gi.is_static and gj.is_static:
                    continue
                tests += 1
                if bi.overlaps(bj):
                    out.append(_emit(gi, gj))
        self.tests = tests
        out.sort(key=lambda p: (p[0].index, p[1].index))
        self.last_pairs = len(out)
        self.last_order = [g.uid for g in geoms]
        return out


class SweepAndPrune(_StatsMixin):
    """Incremental single-axis sweep-and-prune (sorted on x)."""

    name = "sap"

    def __init__(self, axis: int = 0):
        self.axis = axis
        self._order = []  # geoms, kept sorted by aabb.min[axis]
        self.tests = 0
        self.swaps = 0

    def pairs(self, geoms):
        live = [g for g in geoms if g.enabled]
        live_set = set(g.uid for g in live)
        order = [g for g in self._order if g.uid in live_set]
        known = set(g.uid for g in order)
        for g in live:
            if g.uid not in known:
                order.append(g)

        axis = self.axis
        boxes = {g.uid: g.aabb() for g in order}

        # Insertion sort: near-sorted from the previous frame.
        swaps = 0
        keys = {g.uid: boxes[g.uid].min[axis] for g in order}
        for i in range(1, len(order)):
            g = order[i]
            k = keys[g.uid]
            j = i - 1
            while j >= 0 and keys[order[j].uid] > k:
                order[j + 1] = order[j]
                j -= 1
                swaps += 1
            order[j + 1] = g
        self._order = order
        self.swaps = swaps

        # Sweep: active set of intervals still open at the current min.
        out = []
        tests = 0
        active = []
        for g in order:
            box = boxes[g.uid]
            lo = box.min[axis]
            active = [(other, obox) for other, obox in active
                      if obox.max[axis] >= lo]
            for other, obox in active:
                if g.is_static and other.is_static:
                    continue
                tests += 1
                if (box.min.y <= obox.max.y and obox.min.y <= box.max.y
                        and box.min.z <= obox.max.z
                        and obox.min.z <= box.max.z):
                    out.append(_emit(g, other))
            active.append((g, box))
        self.tests = tests
        out.sort(key=lambda p: (p[0].index, p[1].index))
        self.last_pairs = len(out)
        self.last_order = [g.uid for g in order]
        return out


class SpatialHashBroadphase(_StatsMixin):
    """Uniform grid hash; good when object sizes are homogeneous."""

    name = "hash"

    def __init__(self, cell_size: float = 2.0):
        self.cell_size = cell_size
        self.tests = 0

    def _cells(self, box):
        inv = 1.0 / self.cell_size
        x0 = int(box.min.x * inv) if abs(box.min.x) < 1e8 else -1
        x1 = int(box.max.x * inv) if abs(box.max.x) < 1e8 else 1
        y0 = int(box.min.y * inv) if abs(box.min.y) < 1e8 else -1
        y1 = int(box.max.y * inv) if abs(box.max.y) < 1e8 else 1
        z0 = int(box.min.z * inv) if abs(box.min.z) < 1e8 else -1
        z1 = int(box.max.z * inv) if abs(box.max.z) < 1e8 else 1
        for cx in range(x0, x1 + 1):
            for cy in range(y0, y1 + 1):
                for cz in range(z0, z1 + 1):
                    yield (cx, cy, cz)

    def pairs(self, geoms):
        live = [g for g in geoms if g.enabled]
        boxes = {g.uid: g.aabb() for g in live}
        # Unbounded geoms (planes, heightfields) are checked against
        # everything rather than hashed into every cell.
        unbounded = [g for g in live
                     if boxes[g.uid].extents().x > 1e8]
        bounded = [g for g in live if boxes[g.uid].extents().x <= 1e8]

        grid = {}
        for g in bounded:
            for cell in self._cells(boxes[g.uid]):
                grid.setdefault(cell, []).append(g)

        seen = set()
        out = []
        tests = 0
        for bucket in grid.values():
            for i in range(len(bucket)):
                for j in range(i + 1, len(bucket)):
                    gi, gj = bucket[i], bucket[j]
                    if gi.is_static and gj.is_static:
                        continue
                    key = _pair_key(gi, gj)
                    if key in seen:
                        continue
                    seen.add(key)
                    tests += 1
                    if boxes[gi.uid].overlaps(boxes[gj.uid]):
                        out.append(_emit(gi, gj))
        for u in unbounded:
            for g in bounded:
                if u.is_static and g.is_static:
                    continue
                key = _pair_key(u, g)
                if key in seen:
                    continue
                seen.add(key)
                tests += 1
                if boxes[u.uid].overlaps(boxes[g.uid]):
                    out.append(_emit(u, g))
        self.tests = tests
        out.sort(key=lambda p: (p[0].index, p[1].index))
        self.last_pairs = len(out)
        self.last_order = [g.uid for g in bounded + unbounded]
        return out


BROADPHASES = {
    "sap": SweepAndPrune,
    "brute": BruteForceBroadphase,
    "hash": SpatialHashBroadphase,
}
