"""Continuous collision detection for fast movers.

The paper's Highspeed benchmark exists because discrete stepping lets a
bullet cross a thin wall between two positions. The standard fix —
what this module implements — is a swept test: any body whose per-step
motion exceeds ``CCD_MOTION_THRESHOLD`` casts a ray along its motion
against every other geom's AABB (inflated by the mover's bounding
radius, so the test is conservative) and is clamped at the first time
of impact. Velocity is preserved; the discrete contact solver resolves
the collision from the clamped position on the next sub-step.

The threshold is deliberately generous (a full metre per 10 ms
sub-step = 100 m/s): ordinary gameplay velocities never pay for the
sweep, only genuine bullets do.
"""

from __future__ import annotations

from ..math3d import Vec3
from .raycast import ray_aabb, ray_heightfield, ray_plane

# Per-sub-step motion (metres) above which a body is swept. Tests and
# ablations monkeypatch this; the engine reads it at every sub-step.
CCD_MOTION_THRESHOLD = 1.0

# Stop this far short of the impact point so the next discrete
# narrowphase sees a shallow, solvable penetration instead of a deep one.
BACKOFF = 1e-3


def _body_radius(world, body):
    r = 0.0
    for geom in world.geoms:
        if geom.body is body:
            br = geom.shape.bounding_radius()
            if br > r:
                r = br
    return r


def sweep_clamp(world, body, motion: Vec3):
    """Clamped position for ``body`` moving by ``motion``, or None.

    Conservative: tests the ray from the body's center against other
    geoms' AABBs inflated by the body's bounding radius.
    """
    dist = motion.length()
    if dist <= 0.0:
        return None
    direction = motion / dist
    origin = body.position
    inflate = _body_radius(world, body)
    best = None
    for geom in world.geoms:
        if not geom.enabled or geom.body is body:
            continue
        kind = geom.shape.kind
        if kind == "plane":
            shifted = origin - geom.shape.normal * inflate
            t = ray_plane(shifted, direction, geom.shape)
        elif kind == "heightfield":
            lifted = origin - Vec3(0.0, inflate, 0.0)
            t = ray_heightfield(lifted, direction, geom.shape,
                                geom.transform, dist)
        else:
            box = geom.aabb()
            pad = Vec3(inflate, inflate, inflate)
            t = ray_aabb(origin, direction, box.min - pad, box.max + pad)
        if t is not None and t <= dist and (best is None or t < best):
            best = t
    if best is None:
        return None
    return origin + direction * max(0.0, best - BACKOFF)
