"""Ray queries against world geometry.

Used by the CCD sweep (fast movers cast along their motion), scene
tooling, and the engine microbenchmarks. Rays are parameterized as
``origin + t * direction`` with ``t`` in world units when ``direction``
is normalized (``raycast_world`` normalizes for you).
"""

from __future__ import annotations

import math

from ..math3d import Vec3

_EPS = 1e-9


class RayHit:
    __slots__ = ("geom", "t", "point", "normal")

    def __init__(self, geom, t, point, normal):
        self.geom = geom
        self.t = t
        self.point = point
        self.normal = normal

    def __repr__(self):
        return f"RayHit({self.geom!r}, t={self.t:.4f})"


def ray_sphere(origin, direction, center, radius):
    """Smallest t >= 0 where the ray enters the sphere, or None."""
    oc = origin - center
    b = oc.dot(direction)
    c = oc.dot(oc) - radius * radius
    disc = b * b - c
    if disc < 0.0:
        return None
    root = math.sqrt(disc)
    t = -b - root
    if t < 0.0:
        t = -b + root  # origin inside the sphere
    return t if t >= 0.0 else None


def ray_aabb(origin, direction, lo, hi):
    """Slab test; smallest t >= 0 where the ray enters the box, or
    None. ``lo``/``hi`` are the box corners."""
    tmin, tmax = 0.0, float("inf")
    for axis in ("x", "y", "z"):
        o = getattr(origin, axis)
        d = getattr(direction, axis)
        a = getattr(lo, axis)
        b = getattr(hi, axis)
        if abs(d) < _EPS:
            if o < a or o > b:
                return None
            continue
        inv = 1.0 / d
        t0, t1 = (a - o) * inv, (b - o) * inv
        if t0 > t1:
            t0, t1 = t1, t0
        tmin = max(tmin, t0)
        tmax = min(tmax, t1)
        if tmin > tmax:
            return None
    return tmin


def ray_box(origin, direction, box, transform):
    """Ray vs oriented box: transform the ray into box space."""
    local_o = transform.apply_inverse(origin)
    local_d = transform.orientation.rotate_inverse(direction)
    h = box.half_extents
    return ray_aabb(local_o, local_d, Vec3(-h.x, -h.y, -h.z), h)


def ray_plane(origin, direction, plane):
    denom = plane.normal.dot(direction)
    if abs(denom) < _EPS:
        return None
    t = (plane.offset - plane.normal.dot(origin)) / denom
    return t if t >= 0.0 else None


def ray_heightfield(origin, direction, field, transform,
                    max_t, steps: int = 32):
    """March along the ray and bisect the first above->below crossing."""
    if max_t <= 0.0 or not math.isfinite(max_t):
        max_t = 100.0

    def below(t):
        p = origin + direction * t
        local_x = p.x - transform.position.x
        local_z = p.z - transform.position.z
        surface = transform.position.y + field.height_at(local_x, local_z)
        return p.y <= surface

    if below(0.0):
        return 0.0
    prev = 0.0
    for k in range(1, steps + 1):
        t = max_t * k / steps
        if below(t):
            lo, hi = prev, t
            for _ in range(16):
                mid = 0.5 * (lo + hi)
                if below(mid):
                    hi = mid
                else:
                    lo = mid
            return hi
        prev = t
    return None


def raycast_geom(geom, origin, direction, max_t=float("inf")):
    """t of the first intersection with one geom, or None."""
    shape = geom.shape
    kind = shape.kind
    tr = geom.transform
    if kind == "sphere":
        t = ray_sphere(origin, direction, tr.position, shape.radius)
    elif kind == "box":
        t = ray_box(origin, direction, shape, tr)
    elif kind == "plane":
        t = ray_plane(origin, direction, shape)
    elif kind == "capsule":
        a, b = shape.endpoints(tr)
        t = None
        for center in (a, b, (a + b) * 0.5):
            tc = ray_sphere(origin, direction, center, shape.radius)
            if tc is not None and (t is None or tc < t):
                t = tc
    elif kind == "heightfield":
        t = ray_heightfield(origin, direction, shape, tr, max_t)
    else:
        t = None
    if t is None or t > max_t:
        return None
    return t


def raycast_world(world, origin: Vec3, direction: Vec3,
                  max_dist: float = float("inf"),
                  exclude_body=None) -> RayHit:
    """First hit of a ray against every enabled geom, or None."""
    d = direction.normalized()
    best_t, best_geom = None, None
    for geom in world.geoms:
        if not geom.enabled:
            continue
        if exclude_body is not None and geom.body is exclude_body:
            continue
        limit = best_t if best_t is not None else max_dist
        t = raycast_geom(geom, origin, d, limit)
        if t is not None and (best_t is None or t < best_t):
            best_t, best_geom = t, geom
    if best_geom is None:
        return None
    point = origin + d * best_t
    normal = _surface_normal(best_geom, point, d)
    return RayHit(best_geom, best_t, point, normal)


def _surface_normal(geom, point, direction):
    kind = geom.shape.kind
    if kind == "sphere":
        n = point - geom.transform.position
        length = n.length()
        return n / length if length > _EPS else Vec3(0, 1, 0)
    if kind == "plane":
        return geom.shape.normal
    if kind == "heightfield":
        tr = geom.transform
        return geom.shape.normal_at(point.x - tr.position.x,
                                    point.z - tr.position.z)
    # Boxes/capsules: the entry face normal opposes the ray closely
    # enough for CCD's purposes.
    return direction * -1.0
