"""Table rendering + the paper's Table 3/4 reference numbers."""

from __future__ import annotations

__all__ = [
    "PAPER_TABLE3_MINST",
    "PAPER_TABLE4",
    "format_table",
    "table3",
    "table4",
]

# Table 3: measured dynamic instructions per frame (millions) on the
# paper's full-scale benchmark scenes.
PAPER_TABLE3_MINST = {
    "periodic": 34,
    "ragdoll": 36,
    "continuous": 47,
    "breakable": 256,
    "deformable": 409,
    "explosions": 547,
    "highspeed": 518,
    "mix": 829,
}

# Table 4: scene statistics at full scale.
PAPER_TABLE4 = {
    "periodic": {"object_pairs": 2633, "islands": 99, "objects": 480,
                 "cloth_vertices": 0},
    "ragdoll": {"object_pairs": 2064, "islands": 30, "objects": 480,
                "cloth_vertices": 0},
    "continuous": {"object_pairs": 3182, "islands": 37, "objects": 650,
                   "cloth_vertices": 0},
    "breakable": {"object_pairs": 11715, "islands": 97, "objects": 1608,
                  "cloth_vertices": 0},
    "deformable": {"object_pairs": 7871, "islands": 89, "objects": 480,
                   "cloth_vertices": 2000},
    "explosions": {"object_pairs": 21986, "islands": 58,
                   "objects": 3459, "cloth_vertices": 0},
    "highspeed": {"object_pairs": 21041, "islands": 12, "objects": 3309,
                  "cloth_vertices": 0},
    "mix": {"object_pairs": 16367, "islands": 28, "objects": 1608,
            "cloth_vertices": 2625},
}

# Render order: the paper's benchmark numbering.
BENCH_ORDER = (
    "periodic", "ragdoll", "continuous", "breakable",
    "deformable", "explosions", "highspeed", "mix",
)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def format_table(headers, rows, title=None) -> str:
    """Plain-text table: left-aligned, two-space gutters, dashed
    underline (the format the reference ``results/`` files use)."""
    cells = [[_cell(c) for c in row] for row in rows]
    widths = [
        max(len(_cell(h)),
            max((len(r[i]) for r in cells), default=0))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(
        _cell(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(
            c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _ordered(runs):
    return [runs[name] for name in BENCH_ORDER if name in runs] + [
        run for name, run in runs.items() if name not in BENCH_ORDER
    ]


def table3(runs) -> str:
    """Instructions per frame vs the paper's Table 3."""
    rows = []
    items = sorted(
        runs.items(), key=lambda kv: kv[1].total_instructions())
    for name, run in items:
        rows.append([
            name,
            f"{run.total_instructions() / 1e6:.1f}",
            PAPER_TABLE3_MINST.get(name, 0),
            f"{run.scale:g}",
        ])
    return format_table(
        ["benchmark", "measured Minst/frame", "paper Minst/frame",
         "scale"],
        rows,
        title="Table 3 — instructions per frame",
    )


def table4(runs) -> str:
    """Scene statistics vs the paper's Table 4."""
    rows = []
    for run in _ordered(runs):
        stats = run.table4_row()
        paper = PAPER_TABLE4.get(run.name, {})
        rows.append([
            run.name,
            int(round(stats["object_pairs"])),
            paper.get("object_pairs", 0),
            int(round(stats["islands"])),
            paper.get("islands", 0),
            stats["objects"],
            paper.get("objects", 0),
            stats["cloth_vertices"],
            paper.get("cloth_vertices", 0),
        ])
    return format_table(
        ["benchmark", "pairs", "paper", "islands", "paper",
         "dyn objs", "paper", "cloth verts", "paper"],
        rows,
        title="Table 4 — benchmark specs",
    )
