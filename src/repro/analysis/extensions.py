"""Extension experiments beyond the paper's figures.

The §8.3 discrete-accelerator model, the dispatch-protocol overhead
estimate, a next-line-prefetch study on the recorded touch traces, the
way-partitioning model validation, and the energy / NoC / SIMD
what-ifs referenced by §7.2 and §8.2.
"""

from __future__ import annotations

from ..arch import model2, waypart
from ..arch.area import PAPER_POOL_CORES
from ..arch.cache import CacheSim
from ..arch.energy import edp as edp_of
from ..arch.energy import frame_energy
from ..arch.interconnect import simulate_noc
from ..profiling import memtrace
from ..profiling.instmix import (
    FG_KERNEL_SHARE,
    KERNEL_FOOTPRINTS,
    KERNEL_MIX,
    float_share,
)
from ..profiling.report import PARALLEL_PHASES, PHASES
from .tables import format_table

MESSAGE_HEADER_BYTES = 32
BATCH_ITERATIONS = 100


def model2_feasibility(runs):
    """Per-benchmark frame-boundary transfer cost over PCIe (§8.3)."""
    data, rows = {}, []
    for name, run in runs.items():
        stats = run.table4_row()
        objects = int(stats["objects"])
        cloth_vertices = int(stats["cloth_vertices"])
        seconds = model2.transfer_seconds(
            objects, cloth_vertices=cloth_vertices)
        fraction = model2.frame_budget_fraction(
            objects, cloth_vertices=cloth_vertices)
        data[name] = {
            "objects": objects,
            "cloth_vertices": cloth_vertices,
            "seconds": seconds,
            "frame_budget_fraction": fraction,
            "feasible": fraction < 0.05,
        }
        rows.append([name, objects, cloth_vertices,
                     f"{seconds * 1e6:.1f}", f"{fraction * 100:.3f}%"])
    text = format_table(
        ["benchmark", "objects", "cloth verts", "transfer us",
         "frame budget"],
        rows,
        title="Model 2 — frame-boundary PCIe traffic (§8.3)")
    return data, text


def protocol_overhead(runs):
    """Header overhead of the CG->FG dispatch protocol per kernel."""
    data, rows = {}, []
    for kernel, footprint in KERNEL_FOOTPRINTS.items():
        per100 = (footprint["read_bytes_per_100"]
                  + footprint["write_bytes_per_100"])
        per_iter = per100 / 100.0
        single = MESSAGE_HEADER_BYTES / (MESSAGE_HEADER_BYTES
                                         + per_iter)
        batched = MESSAGE_HEADER_BYTES / (MESSAGE_HEADER_BYTES
                                          + per100)
        data[kernel] = {
            "payload_bytes_per_iteration": per_iter,
            "overhead_single": single,
            "overhead_batched": batched,
        }
        rows.append([kernel, f"{per_iter:.1f}",
                     f"{single * 100:.0f}%", f"{batched * 100:.1f}%"])
    text = format_table(
        ["kernel", "payload B/iter", "per-iter dispatch",
         f"batched x{BATCH_ITERATIONS}"],
        rows,
        title="Dispatch protocol overhead (32B header)")
    return data, text


def prefetch_study(runs, benchmark="mix", depth=4):
    """Next-N-line prefetch coverage per phase on the touch trace."""
    report = runs[benchmark].measured
    data, rows = {}, []
    for phase in PHASES:
        blocks = [b for b, _p, _w in memtrace.expand(report, (phase,))]
        if not blocks:
            data[phase] = {"coverage": 0.0, "misses": 0}
            continue
        base = CacheSim(1024 * 1024).run(blocks)
        pf = CacheSim(1024 * 1024, prefetch_depth=depth).run(blocks)
        covered = max(0, base.misses - pf.misses)
        coverage = covered / base.misses if base.misses else 0.0
        data[phase] = {"coverage": coverage, "misses": base.misses}
        rows.append([phase, base.misses, pf.misses,
                     f"{coverage * 100:.0f}%"])
    text = format_table(
        ["phase", "misses", f"misses (+{depth}-line pf)", "coverage"],
        rows,
        title=f"Next-{depth}-line prefetch coverage ({benchmark})")
    return data, text


def waypart_validation(runs, benchmark="mix"):
    """Exact way-partitioned sim vs the stack-distance model."""
    report = runs[benchmark].measured
    data = waypart.validate(report)
    rows = [
        [phase, int(d["exact"]), int(d["model"]),
         f"{d['relative_error'] * 100:.1f}%"]
        for phase, d in data.items()
    ]
    text = format_table(
        ["phase", "exact misses", "model misses", "rel err"], rows,
        title=f"Way-partitioning model validation ({benchmark})")
    return data, text


def energy_comparison(runs):
    """Per-design FG pool energy for the kernels' share of a frame."""
    insts = 0.0
    for run in runs.values():
        per_phase = run.measured.phase_instructions()
        for phase in PARALLEL_PHASES:
            insts += FG_KERNEL_SHARE[phase] * per_phase[phase]
    insts /= max(1, len(runs))
    frame_s = 1.0 / 30.0
    data, rows = {}, []
    for design in ("desktop", "console", "shader"):
        cores = PAPER_POOL_CORES[design]
        e = frame_energy(design, cores, insts, frame_s)
        e["edp"] = edp_of(design, cores, insts, frame_s)
        data[design] = e
        rows.append([design, cores, f"{e['dynamic_j'] * 1e3:.2f}",
                     f"{e['leakage_j'] * 1e3:.2f}",
                     f"{e['total_j'] * 1e3:.2f}",
                     f"{e['edp'] * 1e3:.3f}"])
    text = format_table(
        ["design", "cores", "dynamic mJ", "leakage mJ", "total mJ",
         "EDP mJ*s"],
        rows,
        title="FG pool energy per frame (mean benchmark)")
    return data, text


def noc_sensitivity():
    """Mesh vs torus FG-pool NoC under uniform and hotspot traffic."""
    data, rows = {}, []
    for topo in ("mesh", "torus"):
        uniform = simulate_noc(topo)
        hotspot = simulate_noc(topo, hotspot=True)
        slowdown = (hotspot["avg_latency"] / uniform["avg_latency"]
                    if uniform["avg_latency"] else 0.0)
        data[topo] = {
            "avg_latency": uniform["avg_latency"],
            "max_latency": uniform["max_latency"],
            "hotspot_latency": hotspot["avg_latency"],
            "hotspot_slowdown": slowdown,
        }
        rows.append([topo, f"{uniform['avg_latency']:.1f}",
                     uniform["max_latency"],
                     f"{hotspot['avg_latency']:.1f}",
                     f"{slowdown:.2f}x"])
    text = format_table(
        ["topology", "avg latency", "max", "hotspot avg", "slowdown"],
        rows,
        title="FG-pool NoC sensitivity (8x8, deterministic traffic)")
    return data, text


SIMD_WIDTH = 4


def simd_ablation():
    """Amdahl estimate of a 4-wide FP SIMD unit per kernel (§8.2)."""
    data, rows = {}, []
    for kernel, mix in KERNEL_MIX.items():
        fp = float_share(mix)
        # Branchy kernels vectorize poorly: divergence wastes lanes.
        efficiency = max(0.25, 1.0 - 4.0 * mix["branch"])
        eff_width = 1.0 + (SIMD_WIDTH - 1.0) * efficiency
        speedup = 1.0 / (1.0 - fp + fp / eff_width)
        data[kernel] = {
            "float_share": fp,
            "effective_width": eff_width,
            "speedup": speedup,
        }
        rows.append([kernel, f"{fp * 100:.0f}%",
                     f"{eff_width:.1f}", f"{speedup:.2f}x"])
    text = format_table(
        ["kernel", "FP share", "eff. SIMD width", "speedup"], rows,
        title=f"{SIMD_WIDTH}-wide FP SIMD ablation")
    return data, text
