"""Regenerate every figure/table in ``results/`` from one command.

    PYTHONPATH=src python -m repro.analysis --scale 0.12 --out results

Simulates the eight benchmarks once, then runs every experiment driver
against the recorded reports, writing one ``<name>.txt`` per figure.
``--experiments`` restricts the set (comma-separated names).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from ..ablation.studies import STUDIES
from ..workloads import run_all
from . import calibrate, extensions, tables
from . import experiments as exp

# name -> callable(runs) returning text or (data, text); None-arg
# drivers are wrapped so everything takes the runs dict.
EXPERIMENTS = {
    "table3": tables.table3,
    "table4": tables.table4,
    "fig2a": exp.fig2a,
    "fig2b": exp.fig2b,
    "fig3a": exp.fig3a,
    "fig3b": exp.fig3b,
    "fig4a": exp.fig4a,
    "fig4b": exp.fig4b,
    "fig5a": exp.fig5a,
    "fig5b": exp.fig5b,
    "fig6a": exp.fig6a,
    "fig6b": exp.fig6b,
    "fig7a": exp.fig7a,
    "fig7b": exp.fig7b,
    "fig9a": exp.fig9a,
    "fig9b": exp.fig9b,
    "fig10a": exp.fig10a,
    "fig10b": exp.fig10b,
    "table7": exp.table7,
    "fig11": exp.fig11,
    "offchip": exp.offchip_filtering,
    "area": lambda runs: exp.area_table(),
    "kernel_footprints": lambda runs: exp.kernel_footprints(),
    "model2": extensions.model2_feasibility,
    "protocol": extensions.protocol_overhead,
    "prefetch": extensions.prefetch_study,
    "waypart": extensions.waypart_validation,
    "energy": extensions.energy_comparison,
    "noc": lambda runs: extensions.noc_sensitivity(),
    "simd": lambda runs: extensions.simd_ablation(),
    "calibration": calibrate.calibration,
}

# Focused single-mechanism ablation scenes (repro.ablation.studies);
# scale-independent, so the shared benchmark runs are ignored.
EXPERIMENTS.update({
    name: (lambda runs, fn=fn: fn()) for name, fn in STUDIES.items()
})


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.analysis", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get(
                            "REPRO_BENCH_SCALE", "0.12")))
    parser.add_argument("--frames", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_FRAMES", "3")))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--experiments",
        help="comma-separated subset (default: all)")
    args = parser.parse_args(argv)

    wanted = list(EXPERIMENTS)
    if args.experiments:
        wanted = [name.strip()
                  for name in args.experiments.split(",") if name.strip()]
        unknown = [n for n in wanted if n not in EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiments: {', '.join(unknown)}; "
                         f"choose from {', '.join(EXPERIMENTS)}")

    print(f"# running 8 benchmarks at scale {args.scale:g} ...",
          flush=True)
    t0 = time.perf_counter()
    runs = run_all(scale=args.scale, frames=args.frames,
                   measure_from=max(0, args.frames - 2),
                   seed=args.seed)
    print(f"# benchmarks done in {time.perf_counter() - t0:.1f}s",
          flush=True)

    os.makedirs(args.out, exist_ok=True)
    written = 0
    for name in wanted:
        t0 = time.perf_counter()
        result = EXPERIMENTS[name](runs)
        text = result[1] if isinstance(result, tuple) else result
        path = os.path.join(args.out, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        written += 1
        print(f"# {name} in {time.perf_counter() - t0:.1f}s",
              flush=True)
    print(f"# wrote {written} files to {args.out}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
