"""Calibration of the mechanistic cost model against Table 3.

The engine's operation counts are exact but the instructions-per-
operation weights are modeled, and the benchmarks run at reduced
scale. A power law ``paper = a * measured^b`` fitted in log-log space
over the eight benchmarks absorbs both effects and lets small-scale
runs predict paper-scale instruction counts.
"""

from __future__ import annotations

import math

from .tables import PAPER_TABLE3_MINST, format_table

__all__ = ["power_law_fit", "calibration"]


def power_law_fit(xs, ys):
    """Least-squares fit of ``y = a * x^b`` in log space."""
    pts = [(math.log(x), math.log(y))
           for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pts) < 2:
        return (ys[0] / xs[0] if xs and xs[0] > 0 else 1.0), 1.0
    n = len(pts)
    sx = sum(p[0] for p in pts)
    sy = sum(p[1] for p in pts)
    sxx = sum(p[0] * p[0] for p in pts)
    sxy = sum(p[0] * p[1] for p in pts)
    denom = n * sxx - sx * sx
    if abs(denom) < 1e-12:
        return math.exp(sy / n - sx / n), 1.0
    b = (n * sxy - sx * sy) / denom
    a = math.exp((sy - b * sx) / n)
    return a, b


def calibration(runs):
    """Fit measured Minst/frame to the paper's Table 3 counts."""
    names = [n for n in runs if n in PAPER_TABLE3_MINST]
    xs = [runs[n].total_instructions() / 1e6 for n in names]
    ys = [float(PAPER_TABLE3_MINST[n]) for n in names]
    a, b = power_law_fit(xs, ys)
    data = {"a": a, "b": b, "benchmarks": {}}
    rows = []
    for name, x, y in zip(names, xs, ys):
        predicted = a * (x ** b)
        ratio = predicted / y if y else float("inf")
        data["benchmarks"][name] = {
            "measured_minst": x,
            "paper_minst": y,
            "predicted_minst": predicted,
            "ratio": ratio,
        }
        rows.append([name, f"{x:.1f}", f"{y:.0f}",
                     f"{predicted:.0f}", f"{ratio:.2f}"])
    rows.append(["fit", "", "", f"a={a:.2f}", f"b={b:.2f}"])
    text = format_table(
        ["benchmark", "measured Minst", "paper Minst", "predicted",
         "ratio"],
        rows,
        title="Cost-model calibration (paper = a * measured^b)")
    return data, text
