"""Figure/table regeneration drivers.

Each ``figNx(runs)`` takes the ``run_all`` dict of simulated benchmarks
and returns ``(data, text)``: a plain data structure with the figure's
numbers plus the rendered table that lands in ``results/``. They model
machines with :class:`repro.arch.ParallaxMachine`; the simulation
itself is not re-run, so a full figure sweep costs seconds on top of
the one benchmark pass.
"""

from __future__ import annotations

from ..arch import arbiter
from ..arch.area import PAPER_POOL_CORES, fg_pool_area
from ..arch.machine import (
    CLOCK_HZ,
    KERNEL_FOR_PHASE,
    L2Partitioning,
    ParallaxConfig,
    ParallaxMachine,
)
from ..arch.pipeline import DESIGNS, kernel_ipc
from ..profiling.instmix import (
    FG_KERNEL_SHARE,
    KERNEL_FOOTPRINTS,
    KERNEL_MIX,
    PHASE_MIX,
)
from ..profiling.report import PARALLEL_PHASES, PHASES, SERIAL_PHASES
from .tables import BENCH_ORDER, format_table

MB = 1024 * 1024
L2_SWEEP = [1 * MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB, 32 * MB]

FG_DESIGNS = ("desktop", "console", "shader")
ALL_DESIGNS = ("desktop", "console", "shader", "limit")


def _ordered(runs):
    names = [n for n in BENCH_ORDER if n in runs]
    names += [n for n in runs if n not in names]
    return names


def _baseline_machine():
    """The paper's starting point: 1 CG core, 1MB shared L2."""
    return ParallaxMachine(
        ParallaxConfig(cg_cores=1, l2=L2Partitioning.shared(MB)))


def _paper_machine(cg_cores=4):
    return ParallaxMachine(
        ParallaxConfig(cg_cores=cg_cores,
                       l2=L2Partitioning.paper_scheme()))


def _mb(size):
    return f"{size // MB}MB"


# -- Fig 2: single-core execution --------------------------------------

def fig2a(runs):
    machine = _baseline_machine()
    data, rows = {}, []
    for name in _ordered(runs):
        report = runs[name].measured
        data[name] = {
            phase: machine.phase_seconds(report, phase)
            for phase in PHASES
        }
        total = sum(data[name].values())
        fps = 1.0 / total if total > 0 else float("inf")
        rows.append([name]
                    + [f"{data[name][p] * 1e3:.2f}" for p in PHASES]
                    + [f"{total * 1e3:.2f}", f"{fps:.1f}"])
    text = format_table(
        ["benchmark"] + list(PHASES) + ["total ms", "fps"], rows,
        title="Fig 2(a) — per-phase seconds, 1 core + 1MB L2 "
              "(33.3ms = 30 FPS budget)")
    return data, text


def fig2b(runs):
    machine = _baseline_machine()
    data, rows = {}, []
    for name in _ordered(runs):
        report = runs[name].measured
        curve = {}
        for size in L2_SWEEP:
            curve[size] = sum(
                machine.phase_seconds(report, phase, l2_bytes=size)
                for phase in SERIAL_PHASES)
        data[name] = curve
        rows.append([name] + [f"{curve[s] * 1e3:.3f}"
                              for s in L2_SWEEP])
    text = format_table(
        ["benchmark"] + [_mb(s) for s in L2_SWEEP], rows,
        title="Fig 2(b) — serial-phase ms vs shared L2 size")
    return data, text


# -- Figs 3-5: per-phase dedicated L2 ----------------------------------

def _dedicated_sweep(runs, phase, names=None, title=""):
    machine = ParallaxMachine(
        ParallaxConfig(l2=L2Partitioning.dedicated(phase, MB)))
    data, rows = {}, []
    for name in (names if names is not None else _ordered(runs)):
        report = runs[name].measured
        curve = {
            size: machine.phase_seconds(report, phase, l2_bytes=size)
            for size in L2_SWEEP
        }
        data[name] = curve
        rows.append([name] + [f"{curve[s] * 1e3:.3f}"
                              for s in L2_SWEEP])
    text = format_table(
        ["benchmark"] + [_mb(s) for s in L2_SWEEP], rows, title=title)
    return data, text


def fig3a(runs):
    return _dedicated_sweep(
        runs, "broadphase",
        title="Fig 3(a) — broadphase ms vs dedicated L2")


def fig3b(runs):
    return _dedicated_sweep(
        runs, "narrowphase",
        title="Fig 3(b) — narrowphase ms vs dedicated L2")


def fig4a(runs):
    return _dedicated_sweep(
        runs, "island_creation",
        title="Fig 4(a) — island creation ms vs dedicated L2")


def fig4b(runs):
    return _dedicated_sweep(
        runs, "island_processing",
        title="Fig 4(b) — island processing ms vs dedicated L2")


def fig5a(runs):
    names = [n for n in ("deformable", "mix") if n in runs]
    return _dedicated_sweep(
        runs, "cloth", names=names,
        title="Fig 5(a) — cloth ms vs dedicated L2")


def fig5b(runs):
    machine = ParallaxMachine(
        ParallaxConfig(cg_cores=4, l2=L2Partitioning.shared(16 * MB)))
    data, rows = {}, []
    for name in _ordered(runs):
        report = runs[name].measured
        data[name] = {
            cores: machine.frame_seconds(report, threads=cores)
            for cores in (1, 2, 4)
        }
        rows.append([name] + [f"{data[name][c] * 1e3:.2f}"
                              for c in (1, 2, 4)])
    text = format_table(
        ["benchmark", "1 core ms", "2 cores ms", "4 cores ms"], rows,
        title="Fig 5(b) — frame ms vs CG cores (16MB shared L2)")
    return data, text


# -- Fig 6: four-core execution ----------------------------------------

def fig6a(runs):
    machine = _paper_machine()
    data, rows = {}, []
    for name in _ordered(runs):
        report = runs[name].measured
        data[name] = {
            phase: machine.phase_seconds(report, phase, threads=4)
            for phase in PHASES
        }
        total = sum(data[name].values())
        fps = 1.0 / total if total > 0 else float("inf")
        rows.append([name]
                    + [f"{data[name][p] * 1e3:.2f}" for p in PHASES]
                    + [f"{total * 1e3:.2f}", f"{fps:.1f}"])
    text = format_table(
        ["benchmark"] + list(PHASES) + ["total ms", "fps"], rows,
        title="Fig 6(a) — per-phase seconds, 4 cores + 12MB "
              "partitioned L2")
    return data, text


def fig6b(runs, benchmark="mix"):
    machine = _paper_machine()
    report = runs[benchmark].measured
    data, rows = {}, []
    for threads in (1, 2, 4, 8):
        data[threads] = machine.l2_miss_breakdown(report, threads)
        d = data[threads]
        rows.append([f"{threads}P", int(d["user"]), int(d["kernel"]),
                     int(d["user"] + d["kernel"])])
    text = format_table(
        ["threads", "user misses", "kernel misses", "total"], rows,
        title=f"Fig 6(b) — L2 misses vs threads ({benchmark})")
    return data, text


# -- Fig 7: CG limits --------------------------------------------------

def fig7a(runs):
    machine = _paper_machine()
    data, rows = {}, []
    for name in _ordered(runs):
        report = runs[name].measured
        data[name] = {
            phase: machine.phase_seconds(report, phase, threads=10000)
            for phase in PHASES
        }
        rows.append([name]
                    + [f"{data[name][p] * 1e3:.2f}" for p in PHASES]
                    + [f"{sum(data[name].values()) * 1e3:.2f}"])
    text = format_table(
        ["benchmark"] + list(PHASES) + ["residual ms"], rows,
        title="Fig 7(a) — residual ms with unlimited ideal CG cores")
    return data, text


def fig7b(runs):
    data = {phase: dict(PHASE_MIX[phase]) for phase in PHASES}
    cats = list(next(iter(PHASE_MIX.values())).keys())
    rows = [[phase] + [f"{PHASE_MIX[phase][c]:.2f}" for c in cats]
            for phase in PHASES]
    text = format_table(["phase"] + cats, rows,
                        title="Fig 7(b) — phase instruction mix")
    return data, text


# -- Fig 9: FG characterization ----------------------------------------

def fig9a(runs):
    machine = _paper_machine()
    data = {}
    for label, threads in (("1P", 1), ("4P", 4)):
        serial = cg_par = fg = 0.0
        for name in runs:
            report = runs[name].measured
            for phase in SERIAL_PHASES:
                serial += machine.phase_seconds(report, phase)
            for phase in PARALLEL_PHASES:
                seconds = machine.phase_seconds(
                    report, phase, threads=threads)
                share = FG_KERNEL_SHARE[phase]
                fg += share * seconds
                cg_par += (1.0 - share) * seconds
        data[label] = {"serial": serial, "cg_parallel": cg_par,
                       "fg": fg}
    rows = [[label, f"{d['serial'] * 1e3:.2f}",
             f"{d['cg_parallel'] * 1e3:.2f}", f"{d['fg'] * 1e3:.2f}"]
            for label, d in data.items()]
    text = format_table(
        ["config", "serial ms", "cg-parallel ms", "fg-eligible ms"],
        rows,
        title="Fig 9(a) — where the frame time lives (all benchmarks)")
    return data, text


def fig9b(runs):
    data = {k: dict(v) for k, v in KERNEL_MIX.items()}
    cats = list(next(iter(KERNEL_MIX.values())).keys())
    rows = [[kernel] + [f"{KERNEL_MIX[kernel][c]:.2f}" for c in cats]
            for kernel in KERNEL_MIX]
    text = format_table(["kernel"] + cats, rows,
                        title="Fig 9(b) — FG kernel instruction mix")
    return data, text


def kernel_footprints():
    data = {k: dict(v) for k, v in KERNEL_FOOTPRINTS.items()}
    data["all_kernels_code_bytes_32bit"] = sum(
        v["code_bytes_32bit"] for v in KERNEL_FOOTPRINTS.values())
    rows = [
        [kernel, v["static_insts"], v["code_bytes_32bit"],
         v["read_bytes_per_100"], v["write_bytes_per_100"]]
        for kernel, v in KERNEL_FOOTPRINTS.items()
    ]
    rows.append(["total", "", data["all_kernels_code_bytes_32bit"],
                 "", ""])
    text = format_table(
        ["kernel", "static insts", "code bytes (32-bit)",
         "read B/100 iter", "write B/100 iter"],
        rows,
        title="Table 5 — static kernel footprints")
    return data, text


# -- Fig 10: FG core design space --------------------------------------

def fig10a(runs):
    kernels = ("narrowphase", "island", "cloth")
    data = {
        design: {k: kernel_ipc(design, k) for k in kernels}
        for design in ALL_DESIGNS
    }
    rows = [[design] + [f"{data[design][k]:.2f}" for k in kernels]
            for design in ALL_DESIGNS]
    text = format_table(["design"] + list(kernels), rows,
                        title="Fig 10(a) — IPC per FG core design")
    return data, text


FIG10B_BUDGETS = (1.0, 0.32, 0.25, 0.125)


def fig10b(runs, benchmark="mix"):
    report = runs[benchmark].measured
    data, rows = {}, []
    for design in ALL_DESIGNS:
        machine = ParallaxMachine(ParallaxConfig(fg_design=design))
        data[design] = {
            budget: machine.fg_cores_required(report, budget)
            for budget in FIG10B_BUDGETS
        }
        rows.append([design] + [data[design][b]
                                for b in FIG10B_BUDGETS])
    text = format_table(
        ["design"] + [f"{b * 100:g}%" for b in FIG10B_BUDGETS], rows,
        title=f"Fig 10(b) — FG cores required for 30 FPS ({benchmark})")
    return data, text


# -- Table 7 / Fig 11: latency hiding ----------------------------------

LINKS = ("onchip", "htx", "pcie")


def _link(name):
    from ..arch.interconnect import HTX, ONCHIP_MESH, PCIE
    return {"onchip": ONCHIP_MESH, "htx": HTX, "pcie": PCIE}[name]


def _mean_task_cycles(runs, phase, design):
    """Mean FG-task service cycles for a phase, over every benchmark
    that exposes tasks in it."""
    kernel = KERNEL_FOR_PHASE[phase]
    ipc = kernel_ipc(design, kernel)
    costs = []
    for run in runs.values():
        costs.extend(run.measured.tasks.get(phase, []))
    if not costs or ipc <= 0:
        return 0.0
    return (sum(costs) / len(costs)) / ipc


def table7(runs):
    data, rows = {}, []
    for design in FG_DESIGNS:
        pool = PAPER_POOL_CORES[design]
        data[design] = {}
        for link_name in LINKS:
            link = _link(link_name)
            per_phase = {}
            for phase in PARALLEL_PHASES:
                task_cycles = _mean_task_cycles(runs, phase, design)
                kernel = KERNEL_FOR_PHASE[phase]
                task_bytes = (64 + KERNEL_FOOTPRINTS[kernel]
                              ["write_bytes_per_100"])
                if task_cycles <= 0:
                    per_phase[phase] = float("inf")
                elif not arbiter.bandwidth_feasible(
                        pool, task_cycles, task_bytes, link,
                        clock_hz=CLOCK_HZ):
                    per_phase[phase] = float("inf")
                else:
                    per_phase[phase] = arbiter.\
                        tasks_in_flight_required(pool, task_cycles,
                                                 link)
            data[design][link_name] = per_phase
            rows.append(
                [design, link_name]
                + [("inf" if per_phase[p] == float("inf")
                    else int(per_phase[p]))
                   for p in PARALLEL_PHASES])
    text = format_table(
        ["design", "link"] + list(PARALLEL_PHASES), rows,
        title="Table 7 — FG tasks required to hide communication")
    return data, text


def fig11(runs):
    data, rows = {}, []
    for name in _ordered(runs):
        report = runs[name].measured
        data[name] = {
            phase: len(report.tasks.get(phase, []))
            for phase in PARALLEL_PHASES
        }
        rows.append([name] + [data[name][p] for p in PARALLEL_PHASES])
    text = format_table(
        ["benchmark"] + list(PARALLEL_PHASES), rows,
        title="Fig 11 — FG tasks available per frame")
    return data, text


def offchip_filtering(runs):
    """Average hidden fraction of FG work per link (§8.2.2)."""
    data, rows = {}, []
    for link_name in LINKS:
        machine = ParallaxMachine(ParallaxConfig(
            cg_cores=4, l2=L2Partitioning.paper_scheme(),
            fg_design="shader", fg_cores=PAPER_POOL_CORES["shader"],
            interconnect=_link(link_name)))
        per_phase = {}
        for phase in PARALLEL_PHASES:
            fracs = [
                machine.hidden_fraction(runs[name].measured, phase)
                for name in runs
                if runs[name].measured.tasks.get(phase)
            ]
            per_phase[phase] = (sum(fracs) / len(fracs)
                                if fracs else 0.0)
        data[link_name] = per_phase
        rows.append([link_name]
                    + [f"{per_phase[p]:.2f}"
                       for p in PARALLEL_PHASES])
    text = format_table(
        ["link"] + list(PARALLEL_PHASES), rows,
        title="Offchip filtering — hidden share of FG work "
              "(150 shader cores)")
    return data, text


# -- Area / arbitration ------------------------------------------------

# A representative deformable/mix frame's CG task demands (Minst): the
# 625-vertex drape dominates whatever thread it lands on.
_SKEWED_DEMANDS = [2.4] + [0.08] * 15


def area_table():
    data, rows = {}, []
    for design in FG_DESIGNS:
        cores = PAPER_POOL_CORES[design]
        area = fg_pool_area(design, cores)
        data[design] = area
        d = DESIGNS[design]
        rows.append([design, cores, f"{area:.0f}",
                     f"{d.width}-wide "
                     f"{'in-order' if d.in_order else 'OoO'}"])
    overhead = arbiter.static_mapping_overhead(_SKEWED_DEMANDS,
                                               threads=4)
    data["static_mapping_overhead"] = overhead
    rows.append(["static-map", "", f"+{overhead * 100:.0f}%",
                 "overhead vs flexible arbiter"])
    text = format_table(
        ["pool", "cores", "area mm^2", "core"], rows,
        title="FG pool areas (90nm) and arbitration overhead")
    return data, text
