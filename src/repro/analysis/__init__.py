"""Figure/table regeneration: experiment drivers + CLI.

``python -m repro.analysis --scale 0.12 --out results`` re-simulates
the eight benchmarks and rewrites every figure and table file. The
individual drivers live in :mod:`.experiments` (paper figures),
:mod:`.extensions` (beyond-the-paper studies), :mod:`.tables`
(Table 3/4) and :mod:`.calibrate`.
"""

from .calibrate import calibration, power_law_fit
from .tables import (
    PAPER_TABLE3_MINST,
    PAPER_TABLE4,
    format_table,
    table3,
    table4,
)

__all__ = [
    "PAPER_TABLE3_MINST",
    "PAPER_TABLE4",
    "calibration",
    "format_table",
    "power_law_fit",
    "table3",
    "table4",
]
