"""Operation-level instruction-cost model.

The paper measured real SPARC instruction counts per phase (Table 3);
we substitute a mechanistic model: each counted engine operation costs a
fixed number of abstract instructions, chosen from the arithmetic each
operation actually performs in an optimized native engine. Only the
*relative* phase loads matter for the architecture conclusions; absolute
counts get calibrated against Table 3 by `repro.analysis.calibrate` in a
later pass.
"""

from __future__ import annotations

# (phase, counter) -> instructions per counted operation.
INSTRUCTION_WEIGHTS = {
    ("broadphase", "geoms"): 40,        # AABB refresh
    ("broadphase", "swaps"): 12,        # endpoint sort exchange
    ("broadphase", "tests"): 18,        # interval + y/z overlap test
    ("broadphase", "pairs"): 14,        # pair emission/bookkeeping
    ("narrowphase", "tests"): 220,      # transform + shape dispatch
    ("narrowphase", "contacts"): 160,   # manifold point generation
    ("island_creation", "bodies"): 22,  # union-find find()
    ("island_creation", "unions"): 35,
    ("island_creation", "islands"): 60, # island assembly
    ("island_processing", "rows"): 190,     # Jacobian row construction
    ("island_processing", "row_updates"): 85,  # one PGS row relaxation
    ("island_processing", "integrations"): 210,  # semi-implicit Euler
    ("cloth", "vertices"): 45,          # Verlet update + ground check
    ("cloth", "constraint_updates"): 28,
    ("cloth", "projections"): 90,       # collision pushout
}


def phase_instructions(phase: str, counters) -> float:
    total = 0.0
    for (p, counter), weight in INSTRUCTION_WEIGHTS.items():
        if p == phase:
            total += counters.get(counter, 0.0) * weight
    return total


def task_cost_narrowphase(contacts: int) -> float:
    """Modeled instructions for one object-pair narrowphase task."""
    return (INSTRUCTION_WEIGHTS[("narrowphase", "tests")]
            + contacts * INSTRUCTION_WEIGHTS[("narrowphase", "contacts")])


def task_cost_island(rows: int, row_updates: int, bodies: int) -> float:
    """Modeled instructions for solving one island."""
    w = INSTRUCTION_WEIGHTS
    return (rows * w[("island_processing", "rows")]
            + row_updates * w[("island_processing", "row_updates")]
            + bodies * w[("island_processing", "integrations")])


def task_cost_cloth(vertices: int, constraint_updates: int,
                    projections: int) -> float:
    """Modeled instructions for one cloth object's step."""
    w = INSTRUCTION_WEIGHTS
    return (vertices * w[("cloth", "vertices")]
            + constraint_updates * w[("cloth", "constraint_updates")]
            + projections * w[("cloth", "projections")])
