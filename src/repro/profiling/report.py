"""Per-frame, per-phase workload accounting.

The engine counts the operations each of Fig. 1's five phases performs
(pair tests, contacts, solver row updates, relaxed cloth constraints,
...) into a :class:`FrameReport`. The architecture models consume these
reports: counters feed the instruction-cost model, per-task cost lists
feed the CG/FG parallelism analysis.
"""

from __future__ import annotations

PHASES = (
    "broadphase",
    "narrowphase",
    "island_creation",
    "island_processing",
    "cloth",
)

# Phases the paper parallelizes across fine-grain tasks (object pairs,
# islands, cloth patches). Broadphase and Island Creation stay serial.
PARALLEL_PHASES = ("narrowphase", "island_processing", "cloth")

SERIAL_PHASES = tuple(p for p in PHASES if p not in PARALLEL_PHASES)


class PhaseCounters(dict):
    """Counter dict that reads absent keys as zero."""

    def get(self, key, default=0.0):
        return dict.get(self, key, default)

    def add(self, key, amount=1.0):
        self[key] = dict.get(self, key, 0.0) + amount

    def merge(self, other):
        for key, value in other.items():
            self.add(key, value)

    def scaled(self, factor: float) -> "PhaseCounters":
        out = PhaseCounters()
        for key, value in self.items():
            out[key] = value * factor
        return out


class FrameReport:
    """Counters + task-cost lists for one frame (or one sub-step)."""

    def __init__(self, frame_index: int = 0):
        self.frame_index = frame_index
        self.phases = {phase: PhaseCounters() for phase in PHASES}
        self.tasks = {phase: [] for phase in PARALLEL_PHASES}
        self.steps = 0
        # Watchdog incident log for this frame (a
        # repro.resilience.HealthReport), or None when the frame ran
        # unguarded / clean. Duck-typed to keep profiling independent
        # of the resilience layer.
        self.health = None

    def __getitem__(self, phase: str) -> PhaseCounters:
        return self.phases[phase]

    def __contains__(self, phase: str) -> bool:
        return phase in self.phases

    def count(self, phase: str, **amounts):
        counters = self.phases[phase]
        for key, value in amounts.items():
            counters.add(key, value)

    def add_task(self, phase: str, cost: float):
        self.tasks[phase].append(float(cost))

    def summary(self):
        return {phase: dict(counters)
                for phase, counters in self.phases.items()}

    def merge(self, other: "FrameReport"):
        for phase in PHASES:
            self.phases[phase].merge(other.phases[phase])
        for phase in PARALLEL_PHASES:
            self.tasks[phase].extend(other.tasks[phase])
        self.steps += max(1, other.steps)
        if other.health is not None:
            if self.health is None:
                self.health = other.health
            else:
                self.health.events.extend(other.health.events)
        return self

    # -- instruction-cost view ------------------------------------------
    def phase_instructions(self) -> dict:
        from .costmodel import phase_instructions
        return {phase: phase_instructions(phase, self.phases[phase])
                for phase in PHASES}

    def total_instructions(self) -> float:
        return sum(self.phase_instructions().values())

    def __repr__(self):
        insts = self.total_instructions()
        return (f"FrameReport(frame={self.frame_index},"
                f" ~{insts / 1e6:.2f}M inst)")


def mean_report(reports) -> FrameReport:
    """Average several frame reports into one representative frame."""
    reports = list(reports)
    if not reports:
        return FrameReport(0)
    out = FrameReport(reports[-1].frame_index)
    inv = 1.0 / len(reports)
    for phase in PHASES:
        merged = PhaseCounters()
        for r in reports:
            merged.merge(r.phases[phase])
        out.phases[phase] = merged.scaled(inv)
    # Task lists come from the last (warmed-up) frame: averaging task
    # *costs* across frames would change the task count.
    for phase in PARALLEL_PHASES:
        out.tasks[phase] = list(reports[-1].tasks[phase])
    out.steps = reports[-1].steps
    return out
