"""Per-frame, per-phase workload accounting.

The engine counts the operations each of Fig. 1's five phases performs
(pair tests, contacts, solver row updates, relaxed cloth constraints,
...) into a :class:`FrameReport`. The architecture models consume these
reports: counters feed the instruction-cost model, per-task cost lists
feed the CG/FG parallelism analysis.
"""

from __future__ import annotations

PHASES = (
    "broadphase",
    "narrowphase",
    "island_creation",
    "island_processing",
    "cloth",
)

# Phases the paper parallelizes across fine-grain tasks (object pairs,
# islands, cloth patches). Broadphase and Island Creation stay serial.
PARALLEL_PHASES = ("narrowphase", "island_processing", "cloth")

SERIAL_PHASES = tuple(p for p in PHASES if p not in PARALLEL_PHASES)


class TouchGroup:
    """One recorded burst of memory activity: ``ids`` records of region
    ``kind`` touched in order, swept ``repeat`` times (solver
    iterations), optionally as writes. ``ids`` may be any iterable of
    ints (a ``range`` keeps big sequential sweeps compact)."""

    __slots__ = ("kind", "ids", "repeat", "writes")

    def __init__(self, kind, ids, repeat=1, writes=False):
        self.kind = kind
        self.ids = ids if isinstance(ids, range) else tuple(ids)
        self.repeat = repeat
        self.writes = writes

    def __repr__(self):
        return (f"TouchGroup({self.kind!r}, n={len(self.ids)},"
                f" repeat={self.repeat})")


class PhaseCounters(dict):
    """Counter dict that reads absent keys as zero."""

    # Per-step CG task-cost lists, attached by FrameReport.__getitem__
    # so architecture models can ask a phase view for its task trace.
    _step_tasks = None

    def per_step_cg_tasks(self):
        """Task costs bucketed by sub-step: ``[[cost, ...], ...]``."""
        if not self._step_tasks:
            return []
        return [list(ts) for ts in self._step_tasks]

    def get(self, key, default=0.0):
        return dict.get(self, key, default)

    def add(self, key, amount=1.0):
        self[key] = dict.get(self, key, 0.0) + amount

    def merge(self, other):
        for key, value in other.items():
            self.add(key, value)

    def scaled(self, factor: float) -> "PhaseCounters":
        out = PhaseCounters()
        for key, value in self.items():
            out[key] = value * factor
        return out


class FrameReport:
    """Counters + task-cost lists for one frame (or one sub-step)."""

    def __init__(self, frame_index: int = 0):
        self.frame_index = frame_index
        self.phases = {phase: PhaseCounters() for phase in PHASES}
        self.tasks = {phase: [] for phase in PARALLEL_PHASES}
        # Task costs bucketed per sub-step (barriers between sub-steps
        # matter for scheduling), and per-step memory-touch traces
        # ({phase: [TouchGroup, ...]} per sub-step) for the cache models.
        self.step_tasks = {phase: [] for phase in PARALLEL_PHASES}
        self.step_touches = []
        self.steps = 0
        # Watchdog incident log for this frame (a
        # repro.resilience.HealthReport), or None when the frame ran
        # unguarded / clean. Duck-typed to keep profiling independent
        # of the resilience layer.
        self.health = None

    def __getitem__(self, phase: str) -> PhaseCounters:
        counters = self.phases[phase]
        counters._step_tasks = self.step_tasks.get(phase)
        return counters

    def __contains__(self, phase: str) -> bool:
        return phase in self.phases

    def count(self, phase: str, **amounts):
        counters = self.phases[phase]
        get = dict.get
        for key, value in amounts.items():
            counters[key] = get(counters, key, 0.0) + value

    def _step_bucket(self, buckets):
        need = self.steps
        if need < 1:
            need = 1
        while len(buckets) < need:
            buckets.append([])
        return buckets[-1]

    def add_task(self, phase: str, cost: float):
        cost = float(cost)
        self.tasks[phase].append(cost)
        self._step_bucket(self.step_tasks[phase]).append(cost)

    def add_tasks(self, phase: str, costs):
        """Bulk ``add_task``: same lists, one bucket lookup."""
        costs = [float(c) for c in costs]
        self.tasks[phase].extend(costs)
        self._step_bucket(self.step_tasks[phase]).extend(costs)

    def touch(self, phase: str, kind: str, ids, repeat: int = 1,
              writes: bool = False):
        """Record a memory-touch burst for the architecture models."""
        bucket = self._step_bucket(self.step_touches)
        bucket.append((phase, TouchGroup(kind, ids, repeat, writes)))

    def summary(self):
        return {phase: dict(counters)
                for phase, counters in self.phases.items()}

    def merge(self, other: "FrameReport"):
        for phase in PHASES:
            self.phases[phase].merge(other.phases[phase])
        for phase in PARALLEL_PHASES:
            self.tasks[phase].extend(other.tasks[phase])
            self.step_tasks[phase].extend(other.step_tasks[phase])
        self.step_touches.extend(other.step_touches)
        self.steps += max(1, other.steps)
        if other.health is not None:
            if self.health is None:
                self.health = other.health
            else:
                self.health.events.extend(other.health.events)
        return self

    # -- instruction-cost view ------------------------------------------
    def phase_instructions(self) -> dict:
        from .costmodel import phase_instructions
        return {phase: phase_instructions(phase, self.phases[phase])
                for phase in PHASES}

    def total_instructions(self) -> float:
        return sum(self.phase_instructions().values())

    def __repr__(self):
        insts = self.total_instructions()
        return (f"FrameReport(frame={self.frame_index},"
                f" ~{insts / 1e6:.2f}M inst)")


def mean_report(reports) -> FrameReport:
    """Average several frame reports into one representative frame."""
    reports = list(reports)
    if not reports:
        return FrameReport(0)
    out = FrameReport(reports[-1].frame_index)
    inv = 1.0 / len(reports)
    for phase in PHASES:
        merged = PhaseCounters()
        for r in reports:
            merged.merge(r.phases[phase])
        out.phases[phase] = merged.scaled(inv)
    # Task lists and touch traces come from the last (warmed-up) frame:
    # averaging task *costs* across frames would change the task count.
    for phase in PARALLEL_PHASES:
        out.tasks[phase] = list(reports[-1].tasks[phase])
        out.step_tasks[phase] = [list(ts)
                                 for ts in reports[-1].step_tasks[phase]]
    out.step_touches = [list(step) for step in reports[-1].step_touches]
    out.steps = reports[-1].steps
    return out
