"""Instruction-mix tables for the five phases and three FG kernels.

The paper characterizes each phase (Fig. 7b) and each extracted FG
kernel (Fig. 9b) by dynamic instruction mix; we carry the same
categories. Phase mixes describe whole-phase CG execution (bookkeeping
included); kernel mixes describe only the tight FG loops, so the float
share of the numeric kernels is higher and the branch share lower.

``KERNEL_FOOTPRINTS`` is the §8.1.2 static footprint of each kernel:
static instructions, 32-bit code bytes (4 B/inst), and data read/write
bytes per 100 loop iterations — the numbers that let the FG cores get
away with tiny instruction stores and narrow data paths.
"""

from __future__ import annotations

MIX_CATEGORIES = (
    "int_alu",
    "branch",
    "float_add",
    "float_mult",
    "rd_port",
    "wr_port",
    "other",
)

# Fig. 7(b): dynamic mix of each phase on a CG core.
PHASE_MIX = {
    "broadphase": {
        "int_alu": 0.42, "branch": 0.17, "float_add": 0.04,
        "float_mult": 0.02, "rd_port": 0.24, "wr_port": 0.07,
        "other": 0.04,
    },
    "narrowphase": {
        "int_alu": 0.38, "branch": 0.13, "float_add": 0.09,
        "float_mult": 0.08, "rd_port": 0.22, "wr_port": 0.06,
        "other": 0.04,
    },
    "island_creation": {
        "int_alu": 0.45, "branch": 0.18, "float_add": 0.01,
        "float_mult": 0.01, "rd_port": 0.26, "wr_port": 0.06,
        "other": 0.03,
    },
    "island_processing": {
        "int_alu": 0.24, "branch": 0.06, "float_add": 0.17,
        "float_mult": 0.16, "rd_port": 0.24, "wr_port": 0.09,
        "other": 0.04,
    },
    "cloth": {
        "int_alu": 0.25, "branch": 0.07, "float_add": 0.16,
        "float_mult": 0.13, "rd_port": 0.22, "wr_port": 0.11,
        "other": 0.06,
    },
}

# Fig. 9(b): dynamic mix of the three extracted FG kernels.
KERNEL_MIX = {
    "narrowphase": {
        "int_alu": 0.47, "branch": 0.08, "float_add": 0.04,
        "float_mult": 0.03, "rd_port": 0.28, "wr_port": 0.06,
        "other": 0.04,
    },
    "island": {
        "int_alu": 0.27, "branch": 0.04, "float_add": 0.17,
        "float_mult": 0.16, "rd_port": 0.24, "wr_port": 0.08,
        "other": 0.04,
    },
    "cloth": {
        "int_alu": 0.28, "branch": 0.05, "float_add": 0.16,
        "float_mult": 0.13, "rd_port": 0.22, "wr_port": 0.10,
        "other": 0.06,
    },
}

# §8.1.2: static kernel footprints.
KERNEL_FOOTPRINTS = {
    "narrowphase": {
        "static_insts": 277,
        "code_bytes_32bit": 1108,
        "read_bytes_per_100": 1668,
        "write_bytes_per_100": 100,
    },
    "island": {
        "static_insts": 177,
        "code_bytes_32bit": 708,
        "read_bytes_per_100": 604,
        "write_bytes_per_100": 128,
    },
    "cloth": {
        "static_insts": 221,
        "code_bytes_32bit": 884,
        "read_bytes_per_100": 376,
        "write_bytes_per_100": 308,
    },
}

# Which phase each FG kernel is cut out of, and roughly what share of
# that phase's dynamic instructions the kernel loop covers (the rest is
# CG-side marshalling that stays on the big cores).
KERNEL_PHASE = {
    "narrowphase": "narrowphase",
    "island": "island_processing",
    "cloth": "cloth",
}

FG_KERNEL_SHARE = {
    "narrowphase": 0.80,
    "island_processing": 0.88,
    "cloth": 0.92,
}


def float_share(mix: dict) -> float:
    return mix["float_add"] + mix["float_mult"]
