"""Expand recorded TouchGroups into 64-byte-block address traces.

The engine records *which records* each phase touched (geoms, bodies,
contacts, solver rows, cloth vertices) into ``FrameReport.step_touches``;
this module lays those records out in flat per-kind regions and expands
the groups into the block-address streams the cache models consume.

Record sizes follow the paper's ODE-era object layouts (§6.1): a rigid
body is ~412 B of state, a geom 116 B, a joint ~256 B, a contact 148 B;
cloth vertices stream 48 B (position + previous position) each.
"""

from __future__ import annotations

from .report import PHASES

BLOCK = 64

RECORD_BYTES = {
    "body": 412,
    "geom": 116,
    "joint": 256,
    "contact": 148,
    "row": 148,
    "clothvert": 48,
    "endpoint": 16,
}

# Disjoint address regions per record kind, far enough apart that no
# realistic scene overlaps them.
REGION_BASE = {
    "body": 1 << 28,
    "geom": 2 << 28,
    "joint": 3 << 28,
    "contact": 4 << 28,
    "row": 5 << 28,
    "clothvert": 6 << 28,
    "endpoint": 7 << 28,
}


def group_blocks(group):
    """Ordered 64B block addresses of one TouchGroup's single sweep.

    Consecutive duplicate blocks (several small records per line) are
    collapsed — a second touch of the line you just touched never
    changes LRU state or miss counts.
    """
    size = RECORD_BYTES[group.kind]
    base = REGION_BASE[group.kind]
    out = []
    last = -1
    for rid in group.ids:
        start = base + rid * size
        for addr in range(start - start % BLOCK, start + size, BLOCK):
            block = addr // BLOCK
            if block != last:
                out.append(block)
                last = block
    return out


def step_groups(report, phases=None):
    """Yield ``(phase, TouchGroup)`` in pipeline order over sub-steps."""
    wanted = PHASES if phases is None else tuple(phases)
    order = {p: i for i, p in enumerate(PHASES)}
    for step in report.step_touches:
        for phase, group in sorted(step, key=lambda pg: order[pg[0]]):
            if phase in wanted:
                yield phase, group


def expand(report, phases=None):
    """Yield ``(block, phase, writes)`` for every access, repeats
    included. Prefer :func:`step_groups` plus group-aware consumers for
    anything iteration-heavy."""
    for phase, group in step_groups(report, phases):
        blocks = group_blocks(group)
        for _ in range(group.repeat):
            for block in blocks:
                yield block, phase, group.writes


def interleaved(report, threads: int, chunk: int = 32):
    """Round-robin interleave the parallel-phase streams of ``threads``
    workers, ``chunk`` accesses at a time — the multi-core L2 traffic of
    Fig. 6. Serial phases stay on thread 0."""
    from .report import PARALLEL_PHASES

    streams = [[] for _ in range(threads)]
    turn = 0
    for phase, group in step_groups(report):
        blocks = group_blocks(group) * group.repeat
        if phase in PARALLEL_PHASES and threads > 1:
            streams[turn].extend((b, phase) for b in blocks)
            turn = (turn + 1) % threads
        else:
            streams[0].extend((b, phase) for b in blocks)
    cursors = [0] * threads
    out = []
    while True:
        progressed = False
        for t in range(threads):
            lo = cursors[t]
            if lo < len(streams[t]):
                out.extend(streams[t][lo:lo + chunk])
                cursors[t] = lo + chunk
                progressed = True
        if not progressed:
            return out
