"""Coarse-grain parallelism analysis over a frame's task structure.

Reproduces the reasoning of the paper's Fig. 7(a): with ideal cores and
free communication, the speedup of a frame is limited by its serial
phases plus, per parallel phase, the longest single task (an island, an
object pair, a cloth) vs the number of cores — a longest-processing-time
schedule bound.
"""

from __future__ import annotations

from .report import PARALLEL_PHASES, SERIAL_PHASES


def phase_schedule_length(tasks, cores: int) -> float:
    """Lower-bound makespan of scheduling ``tasks`` on ``cores``."""
    if not tasks:
        return 0.0
    total = sum(tasks)
    return max(total / cores, max(tasks))


def cg_speedup(report, cores: int) -> float:
    """Frame speedup on ``cores`` ideal CG cores (Amdahl over phases)."""
    if cores < 1:
        raise ValueError("cores must be >= 1")
    insts = report.phase_instructions()
    serial_time = sum(insts[p] for p in SERIAL_PHASES)
    one_core = serial_time + sum(insts[p] for p in PARALLEL_PHASES)
    if one_core <= 0.0:
        return 1.0
    sched = serial_time
    for phase in PARALLEL_PHASES:
        tasks = report.tasks.get(phase, [])
        if tasks:
            # Normalize task costs so they sum to the phase's modeled
            # instructions (tasks are modeled with the same weights but
            # may not cover warm-start bookkeeping etc.).
            task_total = sum(tasks)
            scale = insts[phase] / task_total if task_total > 0 else 0.0
            sched += phase_schedule_length(
                [t * scale for t in tasks], cores)
        else:
            sched += insts[phase] / cores
    if sched <= 0.0:
        return 1.0
    return one_core / sched


def speedup_curve(report, core_counts=(1, 2, 4, 8, 16, 32)):
    return {n: cg_speedup(report, n) for n in core_counts}
