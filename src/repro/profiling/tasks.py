"""Coarse-grain parallelism analysis over a frame's task structure.

Reproduces the reasoning of the paper's Fig. 7(a): with ideal cores and
free communication, the speedup of a frame is limited by its serial
phases plus, per parallel phase, the longest single task (an island, an
object pair, a cloth) vs the number of cores — a longest-processing-time
schedule bound.
"""

from __future__ import annotations

from .report import PARALLEL_PHASES, SERIAL_PHASES


def phase_schedule_length(tasks, cores: int) -> float:
    """Lower-bound makespan of scheduling ``tasks`` on ``cores``."""
    if not tasks:
        return 0.0
    total = sum(tasks)
    return max(total / cores, max(tasks))


def phase_cg_speedup(report, phase: str, cores: int) -> float:
    """Speedup of one parallel phase on ``cores`` ideal CG cores.

    Sub-steps are barriers: the phase re-runs each sub-step and cannot
    overlap tasks across them, so the achievable speedup is bounded by
    the *worst* sub-step — typically the one whose largest single task
    (a big island, the 625-vertex drape) owns the biggest share of that
    sub-step's work.
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    step_lists = report.step_tasks.get(phase)
    if not step_lists:
        tasks = report.tasks.get(phase, [])
        step_lists = [tasks] if tasks else []
    worst = None
    for tasks in step_lists:
        if not tasks:
            continue
        s = sum(tasks) / phase_schedule_length(tasks, cores)
        if worst is None or s < worst:
            worst = s
    return worst if worst is not None else 1.0


def cg_speedup(report, phase, cores: int = None) -> float:
    """Frame speedup on ``cores`` ideal CG cores (Amdahl over phases).

    ``cg_speedup(report, cores)`` analyzes the whole frame;
    ``cg_speedup(report, phase, cores)`` analyzes one parallel phase
    with sub-step barriers (see :func:`phase_cg_speedup`).
    """
    if cores is None:
        phase, cores = None, phase
    if phase is not None:
        return phase_cg_speedup(report, phase, cores)
    if cores < 1:
        raise ValueError("cores must be >= 1")
    insts = report.phase_instructions()
    serial_time = sum(insts[p] for p in SERIAL_PHASES)
    one_core = serial_time + sum(insts[p] for p in PARALLEL_PHASES)
    if one_core <= 0.0:
        return 1.0
    sched = serial_time
    for phase in PARALLEL_PHASES:
        tasks = report.tasks.get(phase, [])
        if tasks:
            # Normalize task costs so they sum to the phase's modeled
            # instructions (tasks are modeled with the same weights but
            # may not cover warm-start bookkeeping etc.).
            task_total = sum(tasks)
            scale = insts[phase] / task_total if task_total > 0 else 0.0
            sched += phase_schedule_length(
                [t * scale for t in tasks], cores)
        else:
            sched += insts[phase] / cores
    if sched <= 0.0:
        return 1.0
    return one_core / sched


def speedup_curve(report, core_counts=(1, 2, 4, 8, 16, 32)):
    return {n: cg_speedup(report, n) for n in core_counts}
