"""Workload instrumentation: frame reports, instruction-cost model,
task-level parallelism analysis."""

from .costmodel import (
    INSTRUCTION_WEIGHTS,
    phase_instructions,
    task_cost_cloth,
    task_cost_island,
    task_cost_narrowphase,
)
from .instmix import (
    FG_KERNEL_SHARE,
    KERNEL_FOOTPRINTS,
    KERNEL_MIX,
    MIX_CATEGORIES,
    PHASE_MIX,
)
from .report import (
    PARALLEL_PHASES,
    PHASES,
    SERIAL_PHASES,
    FrameReport,
    PhaseCounters,
    TouchGroup,
    mean_report,
)
from .tasks import (
    cg_speedup,
    phase_cg_speedup,
    phase_schedule_length,
    speedup_curve,
)

__all__ = [
    "TouchGroup",
    "phase_cg_speedup",
    "MIX_CATEGORIES",
    "PHASE_MIX",
    "KERNEL_MIX",
    "KERNEL_FOOTPRINTS",
    "FG_KERNEL_SHARE",
    "PHASES",
    "PARALLEL_PHASES",
    "SERIAL_PHASES",
    "FrameReport",
    "PhaseCounters",
    "mean_report",
    "INSTRUCTION_WEIGHTS",
    "phase_instructions",
    "task_cost_narrowphase",
    "task_cost_island",
    "task_cost_cloth",
    "cg_speedup",
    "phase_schedule_length",
    "speedup_curve",
]
