"""ParallAX reproduction: real-time physics workload + architecture simulator.

The package splits into two halves mirroring the paper's methodology:

* the *workload* — a from-scratch constraint-based rigid-body + cloth
  engine (``repro.math3d``, ``repro.geometry``, ``repro.collision``,
  ``repro.dynamics``, ``repro.cloth``, ``repro.engine``), the benchmark
  scenes of Table 3 (``repro.workloads``), and the per-phase
  instrumentation the architecture study consumes (``repro.profiling``);
* the *architecture model* (``repro.arch``, ``repro.analysis``) — the
  cache/core/interconnect timing models, rebuilt in a follow-up PR.

Cross-cutting: ``repro.resilience`` hardens long-running simulations —
deterministic checkpoints, a per-step watchdog with rollback-and-degrade
recovery, and the fault-injection harness that tests it.
"""

__version__ = "1.0.0"
