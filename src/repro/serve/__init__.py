"""``repro.serve`` — sharded async multi-world simulation service.

Many independent simulation sessions run across worker processes (each
worker batch-stepping its residents through one packed solve) behind an
asyncio front-end. Sessions route to shards deterministically, migrate
between shards via checkpoint/restore with bit-identical replay, and
degrade gracefully under load (quarantine, bounded-queue backpressure,
per-session watchdogs).

Quick start::

    from repro.api import SessionSpec
    from repro.serve import SimCluster

    with SimCluster(n_shards=2) as cluster:
        cluster.create_session("demo", SessionSpec("periodic",
                                                   scale=0.05,
                                                   backend="numpy"))
        cluster.step("demo", frames=10)
        print(cluster.query("demo")["digest"])

Async front-end: :class:`~repro.serve.service.SimService`. Load test:
``python -m repro.serve.loadtest`` (writes ``BENCH_9.json``).
"""

from .cluster import SimCluster
from .metrics import (FrameTimeHistogram, ShardMetrics,
                      merge_snapshots)
from .protocol import (BackpressureError, ServeError,
                       SessionExistsError, ShardDownError,
                       ShardTimeoutError, UnknownSessionError,
                       UnknownVerbError, WorkerError)
from .routing import RoutingTable, shard_for
from .service import SimService, serve_tcp
from .shard import ShardOptions, ShardWorker

__all__ = [
    "SimCluster",
    "SimService",
    "serve_tcp",
    "ShardOptions",
    "ShardWorker",
    "RoutingTable",
    "shard_for",
    "FrameTimeHistogram",
    "ShardMetrics",
    "merge_snapshots",
    "ServeError",
    "UnknownSessionError",
    "SessionExistsError",
    "UnknownVerbError",
    "BackpressureError",
    "ShardTimeoutError",
    "ShardDownError",
    "WorkerError",
]
