"""Load-test harness for the simulation service.

Drives N concurrent sessions across W shard worker processes through
the asyncio front-end, in rounds of batched step commands, migrating a
few sessions between shards mid-run, then emits ``BENCH_9.json`` with
throughput, p50/p95/p99 frame times, queue depths, and a bit-identity
verdict comparing migrated sessions against local unmigrated twins.

Usage::

    python -m repro.serve.loadtest --sessions 100 --workers 2 \\
        --frames 12 --out BENCH_9.json

Everything is deterministic — per-session seeds are their index, no
RNG is consulted — so two runs differ only in timing, never in state.
"""

from __future__ import annotations

import argparse
import asyncio
import json

from ..api import Session, SessionSpec
from .metrics import now
from .protocol import BackpressureError
from .service import SimService


def session_ids(count: int):
    return [f"s{index:05d}" for index in range(count)]


def build_spec(opts, index: int) -> SessionSpec:
    scenarios = opts.scenario.split(",")
    return SessionSpec(scenarios[index % len(scenarios)],
                       scale=opts.scale, seed=index,
                       backend=opts.backend)


async def _retrying(coro_factory, max_tries: int = 200):
    """Await ``coro_factory()`` with exponential backoff on a full
    shard inbox — the load test sheds into retries, never into OOM."""
    delay = 0.005
    for attempt in range(max_tries):
        try:
            return await coro_factory()
        except BackpressureError:
            if attempt == max_tries - 1:
                raise
            await asyncio.sleep(delay)
            delay = min(delay * 2, 0.25)


async def run_loadtest(opts) -> dict:
    ids = session_ids(opts.sessions)
    service = SimService.start(
        n_shards=opts.workers, backlog=opts.backlog,
        request_timeout=opts.timeout)
    try:
        t_create = now()
        await asyncio.gather(*(
            _retrying(lambda sid=sid, i=i: service.create_session(
                sid, build_spec(opts, i)))
            for i, sid in enumerate(ids)))
        create_seconds = now() - t_create

        rounds = max(1, opts.frames // opts.round_frames)
        per_round = [opts.round_frames] * rounds
        per_round[-1] += opts.frames - opts.round_frames * rounds
        migrate_ids = ids[:opts.migrate]
        migrated_at = {}

        t_step = now()
        for round_index, frames in enumerate(per_round):
            await asyncio.gather(*(
                _retrying(lambda sid=sid, n=frames: service.step(sid,
                                                                 n))
                for sid in ids))
            if round_index == rounds // 2:
                # Mid-run migration: push each chosen session one
                # shard over and keep stepping it there.
                for sid in migrate_ids:
                    source = service.cluster.routing.shard_of(sid)
                    target = (source + 1) % opts.workers
                    await service.migrate(sid, target)
                    migrated_at[sid] = (source, target)
        step_seconds = now() - t_step

        queries = await asyncio.gather(*(service.query(sid)
                                         for sid in ids))
        digests = {sid: q["digest"] for sid, q in zip(ids, queries)}
        stats = await service.stats()

        verification = verify_against_twins(opts, ids, digests,
                                            migrate_ids)

        await asyncio.gather(*(service.destroy(sid) for sid in ids))
    finally:
        await service.close()

    frames_total = opts.sessions * opts.frames
    summary = stats["frame_time_summary"]
    report = {
        "bench": 9,
        "kind": "serve_loadtest",
        "params": {
            "sessions": opts.sessions,
            "workers": opts.workers,
            "frames_per_session": opts.frames,
            "round_frames": opts.round_frames,
            "scenario": opts.scenario,
            "scale": opts.scale,
            "backend": opts.backend,
            "backlog": opts.backlog,
            "migrated_sessions": len(migrated_at),
        },
        "create_seconds": create_seconds,
        "step_seconds": step_seconds,
        "frames_total": frames_total,
        "throughput_fps": (frames_total / step_seconds
                           if step_seconds > 0 else 0.0),
        "frame_time_summary": summary,
        "counters": stats["counters"],
        "queue_depth_peak": stats["queue_depth_peak"],
        "shards": [
            {"shard_id": shard["shard_id"],
             "counters": shard["counters"],
             "frame_time_summary": shard["frame_time_summary"]}
            for shard in stats["shards"]
        ],
        "migration": {
            "count": len(migrated_at),
            "moves": {sid: list(move)
                      for sid, move in migrated_at.items()},
            **verification,
        },
        "acceptance": {
            "sessions": opts.sessions,
            "workers": opts.workers,
            "p95_frame_seconds": summary["p95_s"],
        },
    }
    return report


def verify_against_twins(opts, ids, digests, migrate_ids) -> dict:
    """Replay chosen sessions locally (no serve, no migration) and
    compare state digests — the bit-identity acceptance check."""
    chosen = list(migrate_ids[:opts.verify])
    for sid in ids:
        if len(chosen) >= opts.verify:
            break
        if sid not in chosen:
            chosen.append(sid)
    mismatches = []
    for sid in chosen:
        index = ids.index(sid)
        twin = Session.create(build_spec(opts, index))
        twin.step(opts.frames)
        if twin.state_digest() != digests[sid]:
            mismatches.append(sid)
        twin.close()
    return {
        "verified_sessions": chosen,
        "verified": len(chosen) > 0 and not mismatches,
        "mismatches": mismatches,
        "divergence": 0.0 if not mismatches else float(
            len(mismatches)),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadtest",
        description="Drive the sharded simulation service and emit "
                    "BENCH_9.json")
    parser.add_argument("--sessions", type=int, default=100)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--frames", type=int, default=12,
                        help="frames each session advances in total")
    parser.add_argument("--round-frames", type=int, default=3,
                        help="frames per batched step command")
    parser.add_argument("--scenario", default="periodic",
                        help="scenario name, or comma list cycled "
                             "across sessions")
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--backend", default="numpy")
    parser.add_argument("--backlog", type=int, default=256)
    parser.add_argument("--migrate", type=int, default=2,
                        help="sessions to migrate mid-run")
    parser.add_argument("--verify", type=int, default=2,
                        help="sessions replayed locally for the "
                             "bit-identity check")
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--out", default="BENCH_9.json")
    return parser


def main(argv=None) -> int:
    opts = build_parser().parse_args(argv)
    report = asyncio.run(run_loadtest(opts))
    with open(opts.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    summary = report["frame_time_summary"]
    print(f"serve loadtest: {opts.sessions} sessions on "
          f"{opts.workers} workers, "
          f"{report['frames_total']} frames in "
          f"{report['step_seconds']:.2f}s "
          f"({report['throughput_fps']:.1f} fps)")
    print(f"  frame time p50={summary['p50_s'] * 1e3:.2f}ms "
          f"p95={summary['p95_s'] * 1e3:.2f}ms "
          f"p99={summary['p99_s'] * 1e3:.2f}ms")
    migration = report["migration"]
    print(f"  migrations={migration['count']} "
          f"verified={migration['verified']} "
          f"divergence={migration['divergence']}")
    print(f"  wrote {opts.out}")
    return 0 if (migration["count"] == 0 or migration["verified"]) \
        else 1


if __name__ == "__main__":
    raise SystemExit(main())
