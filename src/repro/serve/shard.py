"""Shard worker: one process stepping many sessions.

A worker owns a disjoint set of sessions and drives them through
*frame rounds* instead of a global barrier: each round advances every
session that has pending step work by one rendered frame, batching the
eligible ones (numpy backend, unguarded, healthy) through a single
packed :class:`~repro.api.SessionGroup` solve and stepping the rest
solo. Commands arrive on the shard's bounded inbox and queue per
session in strict FIFO order — two shards never wait on each other.

Graceful degradation is per session:

* sessions with a watchdog spec step solo under the rollback ladder;
* sessions whose frames run persistently slow are *quarantined* — they
  leave the packed batch (so they stop inflating everyone's round) and
  step only every ``quarantine_backoff``-th round at degraded FPS,
  returning once they sustain fast frames again;
* the bounded inbox turns overload into a typed
  :class:`~repro.serve.protocol.BackpressureError` at the front-end
  instead of unbounded memory growth here.
"""

from __future__ import annotations

import collections
import queue

from ..api import Session, SessionGroup, SessionSpec
from . import protocol
from .metrics import ShardMetrics, now


class ShardOptions:
    """Worker tuning knobs (picklable; travels to spawned workers)."""

    def __init__(self, slow_frame_seconds: float = 0.25,
                 quarantine_after: int = 3, release_after: int = 2,
                 quarantine_backoff: int = 4,
                 idle_poll_seconds: float = 0.02):
        self.slow_frame_seconds = slow_frame_seconds
        self.quarantine_after = quarantine_after
        self.release_after = release_after
        self.quarantine_backoff = max(1, quarantine_backoff)
        self.idle_poll_seconds = idle_poll_seconds


class SessionRuntime:
    """A hosted session plus its command queue and health state."""

    def __init__(self, session_id: str, session: Session):
        self.session_id = session_id
        self.session = session
        self.pending = collections.deque()  # FIFO of queued requests
        self.step_job = None  # {"req_id": int, "remaining": int}
        self.quarantined = False
        self.slow_streak = 0
        self.fast_streak = 0
        self.watchdog_events_seen = 0


class ShardWorker:
    """The per-process service loop; see module docstring."""

    def __init__(self, shard_id: int, options: ShardOptions = None):
        self.shard_id = shard_id
        self.options = options if options is not None else ShardOptions()
        self.sessions = {}  # session_id -> SessionRuntime
        self.metrics = ShardMetrics(shard_id)
        self.round_index = 0
        self.running = True

    # -- main loop ------------------------------------------------------
    def run(self, inbox, outbox):
        while self.running:
            self._drain(inbox, outbox)
            if self._has_step_work():
                self._frame_round(outbox)

    def _has_step_work(self) -> bool:
        return any(rt.step_job is not None
                   for rt in self.sessions.values())

    def _drain(self, inbox, outbox):
        """Pull every queued request; block briefly only when idle."""
        batch = []
        try:
            if self._has_step_work():
                batch.append(inbox.get_nowait())
            else:
                batch.append(
                    inbox.get(timeout=self.options.idle_poll_seconds))
            while True:
                batch.append(inbox.get_nowait())
        except queue.Empty:
            pass
        if not batch:
            return
        self.metrics.observe_queue_depth(len(batch))
        for msg in batch:
            self._dispatch(msg, outbox)

    # -- dispatch -------------------------------------------------------
    def _dispatch(self, msg: dict, outbox):
        req_id = msg.get("req_id", -1)
        self.metrics.count("commands")
        try:
            self._dispatch_inner(msg, outbox)
        except Exception as exc:  # noqa: BLE001 - becomes a typed reply
            self.metrics.count("errors")
            outbox.put(protocol.error_reply(req_id, exc))

    def _dispatch_inner(self, msg: dict, outbox):
        verb = msg.get("verb")
        req_id = msg.get("req_id", -1)
        if verb not in protocol.VERBS:
            raise protocol.UnknownVerbError(f"unknown verb {verb!r}")

        if verb == "shutdown":
            self.running = False
            outbox.put(protocol.ok_reply(req_id,
                                         {"shard_id": self.shard_id}))
            return
        if verb == "stats":
            outbox.put(protocol.ok_reply(req_id,
                                         self.metrics.snapshot()))
            return

        session_id = msg.get("session_id")
        if session_id is None:
            raise protocol.UnknownSessionError(
                f"verb {verb!r} requires a session_id")
        runtime = self.sessions.get(session_id)

        if verb in ("create", "restore"):
            if runtime is not None:
                raise protocol.SessionExistsError(
                    f"session {session_id!r} already on shard "
                    f"{self.shard_id}")
            args = msg.get("args") or {}
            if verb == "create":
                session = Session.create(
                    SessionSpec.from_dict(args["spec"]))
                self.metrics.count("sessions_created")
            else:
                session = Session.restore(args["payload"])
                self.metrics.count("sessions_restored")
            self.sessions[session_id] = SessionRuntime(session_id,
                                                       session)
            outbox.put(protocol.ok_reply(req_id, self._describe(
                self.sessions[session_id])))
            return

        if runtime is None:
            raise protocol.UnknownSessionError(
                f"no session {session_id!r} on shard {self.shard_id}")
        # Strict per-session FIFO: the command joins the session's
        # queue and executes only once everything ahead of it (pending
        # step frames included) has finished.
        runtime.pending.append(msg)
        self._pump(runtime, outbox)

    def _pump(self, runtime: SessionRuntime, outbox):
        """Execute queued commands until a step job takes over."""
        while runtime.pending and runtime.step_job is None:
            msg = runtime.pending.popleft()
            verb = msg["verb"]
            req_id = msg.get("req_id", -1)
            args = msg.get("args") or {}
            if verb == "step":
                frames = int(args.get("frames", 1))
                if frames <= 0:
                    outbox.put(protocol.ok_reply(
                        req_id, self._describe(runtime)))
                    continue
                runtime.step_job = {"req_id": req_id,
                                    "remaining": frames}
            elif verb == "query":
                outbox.put(protocol.ok_reply(
                    req_id, runtime.session.describe()))
            elif verb == "checkpoint":
                outbox.put(protocol.ok_reply(
                    req_id, runtime.session.checkpoint()))
            elif verb == "destroy":
                runtime.session.close()
                self.sessions.pop(runtime.session_id, None)
                self.metrics.forget_session(runtime.session_id)
                self.metrics.count("sessions_destroyed")
                outbox.put(protocol.ok_reply(
                    req_id, self._describe(runtime)))
            else:
                outbox.put(protocol.error_reply(
                    req_id, protocol.UnknownVerbError(
                        f"verb {verb!r} cannot be queued")))

    # -- frame rounds ---------------------------------------------------
    def _frame_round(self, outbox):
        """Advance every stepping session by one rendered frame."""
        self.round_index += 1
        backoff = self.options.quarantine_backoff
        batched, solo = [], []
        for runtime in self.sessions.values():
            if runtime.step_job is None:
                continue
            if runtime.quarantined:
                # Degraded cadence: a probe frame every backoff rounds.
                if self.round_index % backoff == 0:
                    solo.append(runtime)
                continue
            session = runtime.session
            if session._guard is None \
                    and session.world.backend == "numpy":
                batched.append(runtime)
            else:
                solo.append(runtime)

        groups = {}
        for runtime in batched:
            config = runtime.session.world.config
            key = (config.substeps_per_frame, config.solver_iterations)
            groups.setdefault(key, []).append(runtime)
        for key in sorted(groups):
            members = groups[key]
            if len(members) == 1:
                solo.append(members[0])
                continue
            group = SessionGroup(rt.session for rt in members)
            start = now()
            group.step(1)
            share = (now() - start) / len(members)
            for runtime in members:
                self._frame_done(runtime, share, True, outbox)

        for runtime in solo:
            start = now()
            runtime.session.step(1)
            self._frame_done(runtime, now() - start, False, outbox)

    def _frame_done(self, runtime: SessionRuntime, seconds: float,
                    batched: bool, outbox):
        self.metrics.observe_frame(runtime.session_id, seconds, batched)
        self._note_watchdog(runtime)
        self._update_quarantine(runtime, seconds)
        job = runtime.step_job
        job["remaining"] -= 1
        if job["remaining"] <= 0:
            runtime.step_job = None
            outbox.put(protocol.ok_reply(job["req_id"],
                                         self._describe(runtime)))
            self._pump(runtime, outbox)

    def _note_watchdog(self, runtime: SessionRuntime):
        health = runtime.session.health
        if health is None:
            return
        fresh = len(health) - runtime.watchdog_events_seen
        if fresh > 0:
            runtime.watchdog_events_seen = len(health)
            self.metrics.count("watchdog_events", fresh)

    def _update_quarantine(self, runtime: SessionRuntime,
                           seconds: float):
        opts = self.options
        if seconds > opts.slow_frame_seconds:
            runtime.slow_streak += 1
            runtime.fast_streak = 0
        else:
            runtime.fast_streak += 1
            runtime.slow_streak = 0
        if not runtime.quarantined \
                and runtime.slow_streak >= opts.quarantine_after:
            runtime.quarantined = True
            runtime.fast_streak = 0
            self.metrics.count("quarantines")
        elif runtime.quarantined \
                and runtime.fast_streak >= opts.release_after:
            runtime.quarantined = False
            runtime.slow_streak = 0
            self.metrics.count("quarantine_releases")

    # -- replies --------------------------------------------------------
    def _describe(self, runtime: SessionRuntime) -> dict:
        world = runtime.session.world
        return {
            "session_id": runtime.session_id,
            "shard_id": self.shard_id,
            "scenario": runtime.session.spec.scenario,
            "frame_index": world.frame_index,
            "time": world.time,
            "bodies": len(world.bodies),
            "quarantined": runtime.quarantined,
            "watchdog_events": runtime.watchdog_events_seen,
        }


def shard_main(shard_id: int, inbox, outbox, options=None):
    """Process entry point (top-level so spawn can pickle it)."""
    worker = ShardWorker(shard_id, options)
    try:
        worker.run(inbox, outbox)
    except KeyboardInterrupt:
        pass
    finally:
        outbox.close()
