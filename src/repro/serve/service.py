"""Asyncio front-end over :class:`~repro.serve.cluster.SimCluster`.

:class:`SimService` exposes the session verbs as coroutines: each call
submits to the owning shard's bounded queue and awaits the worker's
reply future (``asyncio.wrap_future``), so hundreds of in-flight
commands interleave on one event loop while the physics runs in the
worker processes. :func:`serve_tcp` optionally exposes the same verbs
as a JSON-lines TCP endpoint for out-of-process clients.
"""

from __future__ import annotations

import asyncio
import json

from . import protocol
from .cluster import SimCluster


class SimService:
    """Async session API over a running cluster.

    Construct with an existing :class:`SimCluster` (or let
    :meth:`start` build one), then ``await`` the verbs. Backpressure
    surfaces synchronously at submit time; everything else resolves
    through the reply future.
    """

    def __init__(self, cluster: SimCluster):
        self.cluster = cluster

    @classmethod
    def start(cls, n_shards: int = 2, **cluster_kwargs) -> "SimService":
        """Spin up a cluster and wrap it (blocking process start)."""
        return cls(SimCluster(n_shards=n_shards, **cluster_kwargs))

    async def _call(self, shard_id: int, verb: str,
                    session_id: str = None, **args):
        future = self.cluster.submit(shard_id, verb, session_id, **args)
        reply = await asyncio.wait_for(
            asyncio.wrap_future(future),
            timeout=self.cluster.request_timeout)
        return protocol.raise_if_error(reply)

    def _shard_of(self, session_id: str) -> int:
        return self.cluster.routing.shard_of(session_id)

    # -- session verbs --------------------------------------------------
    async def create_session(self, session_id: str, spec) -> dict:
        spec_dict = spec if isinstance(spec, dict) else spec.to_dict()
        return await self._call(self._shard_of(session_id), "create",
                                session_id, spec=spec_dict)

    async def step(self, session_id: str, frames: int = 1) -> dict:
        return await self._call(self._shard_of(session_id), "step",
                                session_id, frames=frames)

    async def query(self, session_id: str) -> dict:
        return await self._call(self._shard_of(session_id), "query",
                                session_id)

    async def checkpoint(self, session_id: str) -> dict:
        return await self._call(self._shard_of(session_id),
                                "checkpoint", session_id)

    async def restore_session(self, session_id: str, payload: dict,
                              shard_id: int = None) -> dict:
        if shard_id is None:
            shard_id = self._shard_of(session_id)
        result = await self._call(shard_id, "restore", session_id,
                                  payload=payload)
        self.cluster.routing.assign(session_id, shard_id)
        return result

    async def destroy(self, session_id: str) -> dict:
        result = await self._call(self._shard_of(session_id),
                                  "destroy", session_id)
        self.cluster.routing.forget(session_id)
        return result

    async def migrate(self, session_id: str,
                      target_shard: int) -> dict:
        """checkpoint -> destroy -> restore, without blocking the loop
        for other sessions' traffic."""
        source_shard = self._shard_of(session_id)
        if target_shard == source_shard:
            return await self.query(session_id)
        payload = await self._call(source_shard, "checkpoint",
                                   session_id)
        await self._call(source_shard, "destroy", session_id)
        return await self.restore_session(session_id, payload,
                                          target_shard)

    async def stats(self) -> dict:
        from .metrics import merge_snapshots
        snapshots = await asyncio.gather(*(
            self._call(shard_id, "stats")
            for shard_id in range(self.cluster.n_shards)))
        return merge_snapshots(list(snapshots))

    async def close(self):
        await asyncio.get_event_loop().run_in_executor(
            None, self.cluster.close)

    async def __aenter__(self) -> "SimService":
        return self

    async def __aexit__(self, exc_type, exc, tb):
        await self.close()

    # -- wire-level entry (shared by the TCP server and tests) ----------
    async def handle_message(self, msg: dict) -> dict:
        """Route one wire request dict; always returns a reply dict."""
        req_id = msg.get("req_id", -1)
        verb = msg.get("verb")
        session_id = msg.get("session_id")
        args = msg.get("args") or {}
        try:
            if verb == "create":
                result = await self.create_session(session_id,
                                                   args["spec"])
            elif verb == "step":
                result = await self.step(session_id,
                                         int(args.get("frames", 1)))
            elif verb == "query":
                result = await self.query(session_id)
            elif verb == "checkpoint":
                result = await self.checkpoint(session_id)
            elif verb == "restore":
                result = await self.restore_session(
                    session_id, args["payload"], args.get("shard_id"))
            elif verb == "destroy":
                result = await self.destroy(session_id)
            elif verb == "migrate":
                result = await self.migrate(session_id,
                                            int(args["target_shard"]))
            elif verb == "stats":
                result = await self.stats()
            else:
                raise protocol.UnknownVerbError(
                    f"unknown verb {verb!r}")
        except Exception as exc:  # noqa: BLE001 - typed wire reply
            return protocol.error_reply(req_id, exc)
        return protocol.ok_reply(req_id, result)


async def serve_tcp(service: SimService, host: str = "127.0.0.1",
                    port: int = 0):
    """Expose ``service`` as a JSON-lines TCP endpoint.

    One request dict per line, one reply dict per line; concurrent
    requests from one connection interleave (each line spawns a task).
    Returns the listening ``asyncio.Server`` (``server.sockets[0]
    .getsockname()`` reveals the bound port when ``port=0``).
    """

    async def handle_connection(reader, writer):
        write_lock = asyncio.Lock()

        async def respond(msg):
            reply = await service.handle_message(msg)
            async with write_lock:
                writer.write(json.dumps(reply).encode("utf-8") + b"\n")
                await writer.drain()

        tasks = []
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    msg = json.loads(line)
                except json.JSONDecodeError as exc:
                    msg = None
                    async with write_lock:
                        writer.write(json.dumps(protocol.error_reply(
                            -1, protocol.WorkerError(
                                f"bad JSON: {exc}"))).encode("utf-8")
                            + b"\n")
                        await writer.drain()
                if msg is not None:
                    tasks.append(asyncio.ensure_future(respond(msg)))
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            writer.close()

    return await asyncio.start_server(handle_connection, host, port)
