"""``python -m repro.serve`` — delegate to the load-test harness."""

from .loadtest import main

if __name__ == "__main__":
    raise SystemExit(main())
