"""Observability for the simulation service.

Frame times land in fixed log-spaced histograms (cheap to record, cheap
to merge across shards, JSON-native to export), from which p50/p95/p99
are estimated by linear interpolation within the owning bucket. The
single wall-clock read lives here in :func:`now`: *measuring* a step is
legitimate, *feeding* wall time into the step path is not — keeping the
one suppressed call in one place preserves that boundary for PaxLint.
"""

from __future__ import annotations

import math
import time


def now() -> float:
    """Monotonic timestamp for measuring service latency.

    The only wall-clock read in ``repro.serve``; simulation code keeps
    using ``world.time`` (fixed-dt) so replay stays bit-identical.
    """
    # pax: ignore[PAX104]: latency measurement around the step, never
    # an input to it; centralized so the rest of serve stays clock-free.
    return time.perf_counter()


class FrameTimeHistogram:
    """Log-spaced latency histogram over (lo_seconds, hi_seconds).

    64 buckets spanning 10µs .. 100s by default — frame times from a
    trivial 10-body world to a pathological quarantine candidate all
    land inside. Records are O(1); percentile estimates interpolate
    within the bucket, which is plenty for p95 dashboards.
    """

    def __init__(self, lo: float = 1e-5, hi: float = 100.0,
                 buckets: int = 64):
        self.lo = lo
        self.hi = hi
        self.bucket_count = buckets
        self._log_lo = math.log(lo)
        self._scale = buckets / (math.log(hi) - self._log_lo)
        self.counts = [0] * (buckets + 2)  # +underflow, +overflow
        self.total = 0
        self.sum = 0.0
        self.max = 0.0

    def record(self, seconds: float):
        self.total += 1
        self.sum += seconds
        if seconds > self.max:
            self.max = seconds
        self.counts[self._bucket(seconds)] += 1

    def _bucket(self, seconds: float) -> int:
        if seconds < self.lo:
            return 0
        if seconds >= self.hi:
            return self.bucket_count + 1
        k = int((math.log(seconds) - self._log_lo) * self._scale)
        return min(k, self.bucket_count - 1) + 1

    def _bucket_bounds(self, index: int):
        """(lo, hi) seconds of interior bucket ``index`` (1-based)."""
        step = 1.0 / self._scale
        lo = math.exp(self._log_lo + (index - 1) * step)
        hi = math.exp(self._log_lo + index * step)
        return lo, hi

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (0..100); 0.0 when empty."""
        if self.total == 0:
            return 0.0
        rank = p / 100.0 * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if seen + count >= rank:
                if index == 0:
                    return self.lo
                if index == self.bucket_count + 1:
                    return self.max
                lo, hi = self._bucket_bounds(index)
                frac = (rank - seen) / count
                return lo + (hi - lo) * frac
            seen += count
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def merge(self, other: "FrameTimeHistogram"):
        if (other.lo, other.hi, other.bucket_count) != \
                (self.lo, self.hi, self.bucket_count):
            raise ValueError("histogram shapes differ; cannot merge")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "lo": self.lo, "hi": self.hi,
            "buckets": self.bucket_count,
            "counts": list(self.counts),
            "total": self.total, "sum": self.sum, "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FrameTimeHistogram":
        hist = cls(data["lo"], data["hi"], data["buckets"])
        hist.counts = list(data["counts"])
        hist.total = data["total"]
        hist.sum = data["sum"]
        hist.max = data["max"]
        return hist

    def summary(self) -> dict:
        """The dashboard row: count, mean, p50/p95/p99, max."""
        return {
            "count": self.total,
            "mean_s": self.mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "max_s": self.max,
        }


class ShardMetrics:
    """Per-shard counters + frame-time histograms (shard and session).

    Workers own one instance each; ``snapshot()`` travels the wire and
    :func:`merge_snapshots` folds any number of them into the
    cluster-wide view the load-test report prints.
    """

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.frame_times = FrameTimeHistogram()
        self.session_frame_times = {}  # session_id -> histogram
        self.counters = {
            "commands": 0,
            "frames": 0,
            "batched_frames": 0,
            "solo_frames": 0,
            "sessions_created": 0,
            "sessions_destroyed": 0,
            "sessions_restored": 0,
            "quarantines": 0,
            "quarantine_releases": 0,
            "watchdog_events": 0,
            "errors": 0,
        }
        self.queue_depth_peak = 0

    def count(self, name: str, delta: int = 1):
        self.counters[name] = self.counters.get(name, 0) + delta

    def observe_frame(self, session_id: str, seconds: float,
                      batched: bool):
        self.frame_times.record(seconds)
        hist = self.session_frame_times.get(session_id)
        if hist is None:
            hist = self.session_frame_times[session_id] = \
                FrameTimeHistogram()
        hist.record(seconds)
        self.count("frames")
        self.count("batched_frames" if batched else "solo_frames")

    def observe_queue_depth(self, depth: int):
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def forget_session(self, session_id: str):
        self.session_frame_times.pop(session_id, None)

    def snapshot(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "counters": dict(self.counters),
            "queue_depth_peak": self.queue_depth_peak,
            "frame_times": self.frame_times.to_dict(),
            "frame_time_summary": self.frame_times.summary(),
            "sessions": {
                session_id: hist.summary()
                for session_id, hist in
                self.session_frame_times.items()
            },
        }


def merge_snapshots(snapshots) -> dict:
    """Fold per-shard metric snapshots into the cluster-wide view."""
    merged = FrameTimeHistogram()
    counters = {}
    queue_peak = 0
    for snap in snapshots:
        merged.merge(FrameTimeHistogram.from_dict(snap["frame_times"]))
        for name, value in snap["counters"].items():
            counters[name] = counters.get(name, 0) + value
        queue_peak = max(queue_peak, snap["queue_depth_peak"])
    return {
        "counters": counters,
        "queue_depth_peak": queue_peak,
        "frame_time_summary": merged.summary(),
        "shards": list(snapshots),
    }
