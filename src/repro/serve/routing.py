"""Deterministic session -> shard routing.

The home shard is a pure function of the session id (first 8 bytes of
its SHA-256, mod shard count), so every front-end instance — and every
test — computes the same placement with no coordination. Live overrides
layer on top: a migration moves a session off its home shard by
recording ``session_id -> new_shard`` in the table, and dropping the
override sends future sessions with that id home again.
"""

from __future__ import annotations

import hashlib


def shard_for(session_id: str, n_shards: int) -> int:
    """Home shard of ``session_id`` among ``n_shards`` (stable)."""
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    digest = hashlib.sha256(session_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


class RoutingTable:
    """Hash placement plus migration overrides."""

    def __init__(self, n_shards: int):
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.n_shards = n_shards
        self.overrides = {}  # session_id -> shard_id

    def shard_of(self, session_id: str) -> int:
        override = self.overrides.get(session_id)
        if override is not None:
            return override
        return shard_for(session_id, self.n_shards)

    def assign(self, session_id: str, shard_id: int):
        """Pin ``session_id`` to ``shard_id`` (a completed migration)."""
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(f"shard {shard_id} out of range "
                             f"[0, {self.n_shards})")
        if shard_id == shard_for(session_id, self.n_shards):
            self.overrides.pop(session_id, None)
        else:
            self.overrides[session_id] = shard_id

    def forget(self, session_id: str):
        """Drop any override (the session was destroyed)."""
        self.overrides.pop(session_id, None)
