"""Multi-process simulation cluster.

:class:`SimCluster` owns N shard worker processes, each with a bounded
command inbox, plus one shared outbox drained by a reader thread that
resolves :class:`concurrent.futures.Future` objects. Submission is
non-blocking: a full inbox raises
:class:`~repro.serve.protocol.BackpressureError` immediately instead of
stalling the caller, and a dead worker raises
:class:`~repro.serve.protocol.ShardDownError`.

Sessions route to shards through a :class:`~repro.serve.routing
.RoutingTable` — hash placement with migration overrides. Migration is
checkpoint → destroy → restore on the target shard → route update, and
because session checkpoints carry their uid base and full build state,
the restored session replays bit-identically to one that never moved.

Workers are started *before* the reader thread so fork-based start
methods never fork a process while this process holds live threads.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import queue
import threading

from . import protocol
from .metrics import merge_snapshots
from .routing import RoutingTable
from .shard import ShardOptions, shard_main


def _pick_start_method(requested: str = None) -> str:
    if requested is not None:
        return requested
    # fork shares the already-imported interpreter image (fast start);
    # fall back to spawn where fork is unavailable (e.g. macOS default).
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


class SimCluster:
    """Sharded multi-world simulation service (synchronous core).

    The asyncio front-end (:class:`repro.serve.service.SimService`)
    wraps the same futures; both share this class for lifecycle,
    routing, and migration.
    """

    def __init__(self, n_shards: int = 2, backlog: int = 64,
                 start_method: str = None, request_timeout: float = 120.0,
                 shard_options: ShardOptions = None):
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.n_shards = n_shards
        self.request_timeout = request_timeout
        self.routing = RoutingTable(n_shards)
        options = shard_options if shard_options is not None \
            else ShardOptions()

        ctx = multiprocessing.get_context(
            _pick_start_method(start_method))
        self._inboxes = [ctx.Queue(maxsize=backlog)
                         for _ in range(n_shards)]
        self._outbox = ctx.Queue()
        self._procs = [
            ctx.Process(target=shard_main,
                        args=(shard_id, self._inboxes[shard_id],
                              self._outbox, options),
                        daemon=True, name=f"repro-shard-{shard_id}")
            for shard_id in range(n_shards)
        ]
        for proc in self._procs:
            proc.start()

        self._lock = threading.Lock()
        self._next_req_id = 0
        self._pending = {}  # req_id -> Future
        self._closed = False
        self._reader = threading.Thread(target=self._read_replies,
                                        daemon=True,
                                        name="repro-serve-reader")
        self._reader.start()

    # -- reply plumbing -------------------------------------------------
    def _read_replies(self):
        while True:
            msg = self._outbox.get()
            if msg is None:  # shutdown sentinel from close()
                break
            with self._lock:
                future = self._pending.pop(msg.get("req_id"), None)
            if future is not None and not future.cancelled():
                future.set_result(msg)

    # -- submission -----------------------------------------------------
    def submit(self, shard_id: int, verb: str, session_id: str = None,
               **args) -> "concurrent.futures.Future":
        """Enqueue a request; the future resolves with the raw reply.

        Raises :class:`BackpressureError` if the shard inbox is full
        and :class:`ShardDownError` if the worker process has exited.
        """
        if self._closed:
            raise protocol.ShardDownError("cluster is closed")
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(f"shard {shard_id} out of range")
        if not self._procs[shard_id].is_alive():
            raise protocol.ShardDownError(
                f"shard {shard_id} process has exited")
        with self._lock:
            req_id = self._next_req_id
            self._next_req_id += 1
            future = concurrent.futures.Future()
            self._pending[req_id] = future
        msg = protocol.request(req_id, verb, session_id, **args)
        try:
            self._inboxes[shard_id].put_nowait(msg)
        except queue.Full:
            with self._lock:
                self._pending.pop(req_id, None)
            raise protocol.BackpressureError(
                f"shard {shard_id} inbox is full; retry or shed load")
        return future

    def _call(self, shard_id: int, verb: str, session_id: str = None,
              **args):
        future = self.submit(shard_id, verb, session_id, **args)
        try:
            reply = future.result(timeout=self.request_timeout)
        except concurrent.futures.TimeoutError:
            with self._lock:
                self._pending = {rid: fut for rid, fut in
                                 self._pending.items()
                                 if fut is not future}
            raise protocol.ShardTimeoutError(
                f"shard {shard_id} gave no reply for {verb!r} within "
                f"{self.request_timeout}s")
        return protocol.raise_if_error(reply)

    # -- session lifecycle ----------------------------------------------
    def create_session(self, session_id: str, spec) -> dict:
        """Create ``session_id`` from a SessionSpec (or its dict)."""
        spec_dict = spec if isinstance(spec, dict) else spec.to_dict()
        shard_id = self.routing.shard_of(session_id)
        return self._call(shard_id, "create", session_id,
                          spec=spec_dict)

    def step(self, session_id: str, frames: int = 1) -> dict:
        return self._call(self.routing.shard_of(session_id), "step",
                          session_id, frames=frames)

    def query(self, session_id: str) -> dict:
        return self._call(self.routing.shard_of(session_id), "query",
                          session_id)

    def checkpoint(self, session_id: str) -> dict:
        return self._call(self.routing.shard_of(session_id),
                          "checkpoint", session_id)

    def restore_session(self, session_id: str, payload: dict,
                        shard_id: int = None) -> dict:
        """Restore a checkpoint as ``session_id``; optionally pin it to
        an explicit shard (the migration path)."""
        if shard_id is None:
            shard_id = self.routing.shard_of(session_id)
        result = self._call(shard_id, "restore", session_id,
                            payload=payload)
        self.routing.assign(session_id, shard_id)
        return result

    def destroy(self, session_id: str) -> dict:
        result = self._call(self.routing.shard_of(session_id),
                            "destroy", session_id)
        self.routing.forget(session_id)
        return result

    def migrate(self, session_id: str, target_shard: int) -> dict:
        """Move a live session: checkpoint -> destroy -> restore.

        The checkpoint carries the full build state and uid base, so
        the restored session continues bit-identically on the target.
        """
        source_shard = self.routing.shard_of(session_id)
        if target_shard == source_shard:
            return self.query(session_id)
        payload = self._call(source_shard, "checkpoint", session_id)
        self._call(source_shard, "destroy", session_id)
        return self.restore_session(session_id, payload, target_shard)

    # -- observability --------------------------------------------------
    def shard_stats(self, shard_id: int) -> dict:
        return self._call(shard_id, "stats")

    def stats(self) -> dict:
        """Cluster-wide metrics: per-shard snapshots plus the merge."""
        snapshots = [self.shard_stats(shard_id)
                     for shard_id in range(self.n_shards)]
        return merge_snapshots(snapshots)

    # -- lifecycle ------------------------------------------------------
    def close(self, timeout: float = 10.0):
        """Shut down workers, reader thread, and queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard_id, proc in enumerate(self._procs):
            if not proc.is_alive():
                continue
            try:
                self._inboxes[shard_id].put(
                    protocol.request(-1, "shutdown"), timeout=timeout)
            except queue.Full:
                pass
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout)
        self._outbox.put(None)  # unblock the reader thread
        self._reader.join(timeout=timeout)
        with self._lock:
            pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    protocol.ShardDownError("cluster closed"))

    def __enter__(self) -> "SimCluster":
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
