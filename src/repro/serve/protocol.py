"""Wire protocol for the sharded simulation service.

Everything crossing a process boundary is a JSON-native dict, so the
same messages flow over a ``multiprocessing.Queue``, a TCP socket, or a
test harness unchanged. A request names a *verb* plus its arguments; a
reply carries either ``result`` or a typed ``error`` that the client
re-raises as the matching exception class — backpressure, unknown
sessions, and worker crashes all surface as distinct types instead of
one opaque ``RuntimeError``.
"""

from __future__ import annotations

#: Verbs a shard worker understands.
VERBS = ("create", "step", "query", "checkpoint", "restore", "destroy",
         "stats", "shutdown")


class ServeError(RuntimeError):
    """Base class for every typed service error."""


class UnknownSessionError(ServeError):
    """The session id is not hosted on the addressed shard."""


class SessionExistsError(ServeError):
    """A session with this id already exists on the shard."""


class UnknownVerbError(ServeError):
    """The request named a verb outside :data:`VERBS`."""


class BackpressureError(ServeError):
    """The shard's command queue is full; retry later or shed load."""


class ShardTimeoutError(ServeError):
    """No reply arrived within the deadline (worker wedged or dead)."""


class ShardDownError(ServeError):
    """The addressed worker process has exited."""


class WorkerError(ServeError):
    """The worker raised while executing the request; message carries
    the original type and text."""


#: Error-type registry: wire name -> exception class. Replies carry the
#: name; clients map it back through this table (unknown names decode
#: as :class:`WorkerError` so protocol drift degrades, not crashes).
ERROR_TYPES = {
    "UnknownSessionError": UnknownSessionError,
    "SessionExistsError": SessionExistsError,
    "UnknownVerbError": UnknownVerbError,
    "BackpressureError": BackpressureError,
    "ShardTimeoutError": ShardTimeoutError,
    "ShardDownError": ShardDownError,
    "WorkerError": WorkerError,
}


def request(req_id: int, verb: str, session_id: str = None,
            **args) -> dict:
    """Build a request message."""
    msg = {"req_id": req_id, "verb": verb}
    if session_id is not None:
        msg["session_id"] = session_id
    if args:
        msg["args"] = args
    return msg


def ok_reply(req_id: int, result) -> dict:
    return {"req_id": req_id, "ok": True, "result": result}


def error_reply(req_id: int, exc: BaseException) -> dict:
    """Encode ``exc`` for the wire, preserving its service type."""
    if isinstance(exc, ServeError):
        name = type(exc).__name__
        message = str(exc)
    else:
        name = "WorkerError"
        message = f"{type(exc).__name__}: {exc}"
    return {"req_id": req_id, "ok": False,
            "error": {"type": name, "message": message}}


def raise_if_error(reply: dict):
    """Re-raise a reply's error as its typed exception; returns the
    result payload otherwise."""
    if reply.get("ok"):
        return reply.get("result")
    error = reply.get("error") or {}
    cls = ERROR_TYPES.get(error.get("type"), WorkerError)
    raise cls(error.get("message", "unspecified worker error"))
