"""Scene builders: the reusable actors of the paper's benchmark suite.

Humanoid ragdolls, mortared/prefractured brick walls, cars, rolling
terrain, obstacle fields, and cannons — the building blocks the Table 3
benchmarks (and the examples) assemble. Every builder takes explicit
seeds/positions so scenes are bit-deterministic.
"""

from __future__ import annotations

import math
import random

from ..collision import Geom
from ..dynamics import BallJoint, Body, FixedJoint, HingeJoint
from ..geometry import Box, Heightfield, Plane, Sphere
from ..math3d import Quaternion, Transform, Vec3

__all__ = [
    "Humanoid",
    "Car",
    "Cannon",
    "make_humanoid",
    "make_wall",
    "make_car",
    "make_terrain",
    "scatter_obstacles",
    "make_ground",
]


def make_ground(world, height: float = 0.0, friction: float = 0.8):
    return world.add_static_geom(Plane(Vec3(0, 1, 0), height),
                                 friction=friction)


# ---------------------------------------------------------------------------
# Humanoid ragdoll (the paper's 16-segment articulated figure)


class Humanoid:
    def __init__(self, bodies: dict, joints: list):
        self.bodies = bodies
        self.joints = joints

    def all_bodies(self):
        return list(self.bodies.values())

    def set_velocity(self, velocity: Vec3):
        for body in self.bodies.values():
            body.linear_velocity = velocity.copy()

    def center(self) -> Vec3:
        return self.bodies["torso"].position


def make_humanoid(world, base: Vec3, density: float = 900.0) -> Humanoid:
    """A 16-segment ragdoll standing on ``base`` (feet at base.y)."""

    bodies = {}
    joints = []

    def part(name, shape, x, y, z):
        body = Body(position=base + Vec3(x, y, z))
        geom = world.attach(body, shape, density=density, friction=0.7)
        geom.collision_group = ("humanoid", bodies_id)
        bodies[name] = body
        return body

    # Unique per humanoid (self-collision off): the uid the first part
    # will draw. JSON-native and reproducible under snapshot rebuild,
    # unlike an `object()` sentinel.
    bodies_id = Body._next_uid

    # Trunk (4 segments) + head.
    part("pelvis", Box(Vec3(0.16, 0.08, 0.10)), 0.0, 0.96, 0.0)
    part("abdomen", Box(Vec3(0.15, 0.08, 0.09)), 0.0, 1.12, 0.0)
    part("torso", Box(Vec3(0.17, 0.12, 0.10)), 0.0, 1.32, 0.0)
    part("head", Sphere(0.11), 0.0, 1.58, 0.0)

    # Arms: upper + forearm per side (hands folded into forearms).
    for side, sx in (("l", -1.0), ("r", 1.0)):
        part(f"upper_arm_{side}", Box(Vec3(0.05, 0.14, 0.05)),
             sx * 0.26, 1.30, 0.0)
        part(f"forearm_{side}", Box(Vec3(0.04, 0.13, 0.04)),
             sx * 0.26, 1.02, 0.0)
        part(f"hand_{side}", Sphere(0.05), sx * 0.26, 0.84, 0.0)

    # Legs: thigh + shin + foot per side.
    for side, sx in (("l", -1.0), ("r", 1.0)):
        part(f"thigh_{side}", Box(Vec3(0.07, 0.19, 0.07)),
             sx * 0.10, 0.68, 0.0)
        part(f"shin_{side}", Box(Vec3(0.05, 0.18, 0.05)),
             sx * 0.10, 0.30, 0.0)
        part(f"foot_{side}", Box(Vec3(0.05, 0.04, 0.11)),
             sx * 0.10, 0.06, 0.03)

    def ball(a, b, x, y, z):
        j = BallJoint(bodies[a], bodies[b], base + Vec3(x, y, z))
        joints.append(world.add_joint(j))

    def hinge(a, b, x, y, z, axis):
        j = HingeJoint(bodies[a], bodies[b], base + Vec3(x, y, z), axis)
        joints.append(world.add_joint(j))

    lateral = Vec3(1, 0, 0)
    ball("pelvis", "abdomen", 0.0, 1.04, 0.0)
    ball("abdomen", "torso", 0.0, 1.20, 0.0)
    ball("torso", "head", 0.0, 1.47, 0.0)
    for side, sx in (("l", -1.0), ("r", 1.0)):
        ball("torso", f"upper_arm_{side}", sx * 0.23, 1.42, 0.0)
        hinge(f"upper_arm_{side}", f"forearm_{side}",
              sx * 0.26, 1.16, 0.0, lateral)
        ball(f"forearm_{side}", f"hand_{side}", sx * 0.26, 0.89, 0.0)
        ball("pelvis", f"thigh_{side}", sx * 0.10, 0.88, 0.0)
        hinge(f"thigh_{side}", f"shin_{side}",
              sx * 0.10, 0.49, 0.0, lateral)
        hinge(f"shin_{side}", f"foot_{side}",
              sx * 0.10, 0.11, 0.0, lateral)

    return Humanoid(bodies, joints)


# ---------------------------------------------------------------------------
# Brick walls: plain, bonded (breakable mortar), prefractured


BRICK_HALF = Vec3(0.30, 0.15, 0.15)


def make_wall(world, base: Vec3, bricks_x: int = 4, bricks_y: int = 4,
              prefractured: bool = False, bonded: bool = False,
              break_threshold: float = 1.0e4, density: float = 600.0):
    """A wall of boxes in the xy plane centered on base.x.

    ``bonded`` mortars neighboring bricks with breakable fixed joints;
    ``prefractured`` registers each brick to shatter into 8 debris
    pieces when caught in a blast. Returns the list of brick bodies.
    """
    bricks = []
    grid = {}
    width = bricks_x * 2 * BRICK_HALF.x
    for j in range(bricks_y):
        for i in range(bricks_x):
            x = base.x - 0.5 * width + BRICK_HALF.x * (2 * i + 1)
            y = base.y + BRICK_HALF.y * (2 * j + 1) + 0.001 * j
            body = Body(position=Vec3(x, y, base.z))
            geom = world.attach(body, Box(BRICK_HALF), density=density,
                                friction=0.8)
            bricks.append(body)
            grid[(i, j)] = body
            if prefractured:
                _register_prefracture(world, body, geom, density)

    if bonded:
        for (i, j), body in grid.items():
            if (i + 1, j) in grid:
                world.add_joint(FixedJoint(body, grid[(i + 1, j)],
                                           break_threshold))
            if (i, j + 1) in grid:
                world.add_joint(FixedJoint(body, grid[(i, j + 1)],
                                           break_threshold))
    return bricks


def _register_prefracture(world, body, geom, density):
    """Author 8 half-size debris boxes (disabled until fracture)."""
    half = Vec3(0.5 * BRICK_HALF.x, 0.5 * BRICK_HALF.y,
                0.5 * BRICK_HALF.z)
    debris = []
    group = ("debris", body.uid)
    for sx in (-1.0, 1.0):
        for sy in (-1.0, 1.0):
            for sz in (-1.0, 1.0):
                # Debris positions are authored as offsets local to the
                # parent brick; fracture() maps them into world space.
                piece = Body(position=Vec3(sx * half.x, sy * half.y,
                                           sz * half.z))
                piece_geom = world.attach(piece, Box(half),
                                          density=density, friction=0.8)
                piece_geom.collision_group = group
                debris.append((piece, piece_geom))
    world.add_prefractured(body, geom, debris)


# ---------------------------------------------------------------------------
# Cars: chassis + four motorized wheels


class Car:
    def __init__(self, chassis, wheels, axles):
        self.chassis = chassis
        self.wheels = wheels
        self.axles = axles  # hinge joints, one per wheel

    def all_bodies(self):
        return [self.chassis] + list(self.wheels)

    def set_throttle(self, wheel_speed: float, max_force: float = 400.0):
        """Drive all wheels toward ``wheel_speed`` rad/s."""
        for axle in self.axles:
            axle.set_motor(wheel_speed, max_force)

    def speed(self) -> float:
        return self.chassis.linear_velocity.length()


def make_car(world, base: Vec3, heading: float = 0.0,
             simple: bool = False) -> Car:
    """A car resting on ``base`` pointing along its local +z rotated by
    ``heading`` around y. ``simple`` skips wheel detailing used by
    bigger scenes (kept for API compatibility; same rig)."""
    q = Quaternion.from_axis_angle(Vec3(0, 1, 0), heading)
    wheel_r = 0.35
    chassis_half = Vec3(0.70, 0.22, 1.30)
    clearance = 0.18  # chassis floor above the axle line

    def to_world(local: Vec3) -> Vec3:
        return base + q.rotate(local)

    chassis = Body(position=to_world(Vec3(0, wheel_r + clearance, 0)),
                   orientation=q)
    chassis_geom = world.attach(chassis, Box(chassis_half),
                                density=260.0, friction=0.4)
    group = ("car", chassis.uid)
    chassis_geom.collision_group = group

    wheels = []
    axles = []
    for sx, sz in ((-1.0, 1.0), (1.0, 1.0), (-1.0, -1.0), (1.0, -1.0)):
        center = to_world(Vec3(sx * 0.72, wheel_r, sz * 0.95))
        wheel = Body(position=center, orientation=q)
        wheel_geom = world.attach(wheel, Sphere(wheel_r), density=500.0,
                                  friction=1.4)
        wheel_geom.collision_group = group
        axle_axis = q.rotate(Vec3(1, 0, 0))
        axle = HingeJoint(chassis, wheel, center, axle_axis)
        world.add_joint(axle)
        wheels.append(wheel)
        axles.append(axle)

    if not simple:
        # A low ballast keeps the center of mass under the axle line so
        # the car corners without rolling.
        chassis.gravity_scale = 1.0
    return Car(chassis, wheels, axles)


# ---------------------------------------------------------------------------
# Terrain + obstacles


def make_terrain(world, extent: float = 80.0, resolution: int = 24,
                 amplitude: float = 0.6, seed: int = 0) -> Heightfield:
    """Rolling heightfield terrain: smooth seeded sum of sinusoids."""
    rng = random.Random(seed)
    waves = [
        (rng.uniform(0.5, 2.0), rng.uniform(0.5, 2.0),
         rng.uniform(0.0, 2.0 * math.pi), rng.uniform(0.3, 1.0))
        for _ in range(4)
    ]
    n = resolution
    heights = []
    for j in range(n + 1):
        row = []
        for i in range(n + 1):
            u = (i / n - 0.5) * 2 * math.pi
            v = (j / n - 0.5) * 2 * math.pi
            h = sum(
                w * math.sin(fu * u + phase) * math.cos(fv * v)
                for fu, fv, phase, w in waves
            )
            row.append(amplitude * h / len(waves) * 2.0)
        heights.append(row)
    terrain = Heightfield(extent, heights)
    world.add_static_geom(terrain, friction=1.0)
    return terrain


def scatter_obstacles(world, count: int, area: float = 50.0,
                      seed: int = 0, terrain: Heightfield = None):
    """Static box obstacles scattered in ``[-area/2, area/2]^2``."""
    rng = random.Random(seed)
    obstacles = []
    for _ in range(count):
        x = rng.uniform(-0.5 * area, 0.5 * area)
        z = rng.uniform(-0.5 * area, 0.5 * area)
        half = Vec3(rng.uniform(0.3, 0.8), rng.uniform(0.3, 0.9),
                    rng.uniform(0.3, 0.8))
        y = (terrain.height_at(x, z) if terrain is not None else 0.0)
        geom = Geom(Box(half), body=None,
                    transform=Transform(Vec3(x, y + half.y * 0.8, z)),
                    friction=0.9)
        world.add_static_geom(geom)
        obstacles.append(geom)
    return obstacles


# ---------------------------------------------------------------------------
# Cannon: periodic projectiles, optionally explosive


class Cannon:
    """Fires spheres from ``position`` toward ``target`` every
    ``period_steps`` sub-steps. Explosive shells detonate on contact."""

    def __init__(self, world, position: Vec3, target: Vec3,
                 speed: float = 30.0, period_steps: int = 20,
                 explosive: bool = False, shell_radius: float = 0.18,
                 blast_radius: float = 2.5, blast_impulse: float = 900.0):
        self.world = world
        self.position = position
        self.target = target
        self.speed = speed
        self.period_steps = period_steps
        self.explosive = explosive
        self.shell_radius = shell_radius
        self.blast_radius = blast_radius
        self.blast_impulse = blast_impulse
        self.steps = 0
        self.shells = []
        self.fired = 0
        self.detonations = 0
        # Cannons are stateful mid-run spawners: register with the
        # world so checkpoints roll their state back too. The actor
        # slot doubles as a reproducible collision-group tag (id(self)
        # would differ across a snapshot rebuild in another process).
        self.actor_slot = len(world.actors)
        world.register_actor(self)

    def tick(self):
        """Call once per sub-step (this is the benchmark 'driver')."""
        if self.steps % self.period_steps == 0:
            self._fire()
        self.steps += 1
        self._check_impacts()

    def _fire(self):
        direction = (self.target - self.position).normalized()
        shell = Body(position=self.position)
        geom = self.world.attach(shell, Sphere(self.shell_radius),
                                 density=2500.0, friction=0.6)
        geom.collision_group = ("cannon", self.actor_slot)
        shell.linear_velocity = direction * self.speed
        shell.gravity_scale = 0.3  # flat-ish trajectory
        self.shells.append(shell)
        self.fired += 1

    # -- checkpointing --------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "kind": "cannon",
            "steps": self.steps,
            "fired": self.fired,
            "detonations": self.detonations,
            "shell_uids": [shell.uid for shell in self.shells],
        }

    def restore_state(self, state: dict):
        self.steps = state["steps"]
        self.fired = state["fired"]
        self.detonations = state["detonations"]
        by_uid = {b.uid: b for b in self.world.bodies}
        self.shells = [by_uid[uid] for uid in state["shell_uids"]
                       if uid in by_uid]
        return self

    def _check_impacts(self):
        still_tracked = []
        for shell in self.shells:
            if not shell.enabled:
                continue
            hit = self.world.body_had_contact(shell)
            fallen = shell.position.y < self.shell_radius * 1.5
            if hit or fallen:
                if self.explosive:
                    self.world.explode(shell.position, self.blast_radius,
                                       self.blast_impulse)
                    self.detonations += 1
                    shell.enabled = False
                # Inert shells keep their momentum; either way the
                # cannon stops tracking them after impact.
            else:
                still_tracked.append(shell)
        self.shells = still_tracked
