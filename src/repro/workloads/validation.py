"""Numeric plausibility validation — the headless stand-in for the
paper's visual verification of each benchmark.

Checks every enabled body for non-finite state, escape from the world
bounds, deep inter-penetration, and joint anchor drift; cloths for
non-finite vertices. ``validate_world`` is part of each benchmark run's
acceptance gate.
"""

from __future__ import annotations

import math

import numpy as np

from ..collision import collide


class ValidationReport:
    def __init__(self):
        self.bodies_checked = 0
        self.non_finite_bodies = 0
        self.escaped_bodies = 0
        self.disabled_bodies = 0  # culled or watchdog-quarantined
        self.max_penetration = 0.0
        self.max_joint_drift = 0.0
        self.non_finite_cloth_vertices = 0
        self.unrecovered_incidents = 0  # from an attached HealthReport
        self.notes = []

    @property
    def ok(self) -> bool:
        return (self.non_finite_bodies == 0
                and self.escaped_bodies == 0
                and self.non_finite_cloth_vertices == 0
                and self.unrecovered_incidents == 0)

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        return (
            f"{status}: {self.bodies_checked} bodies,"
            f" {self.non_finite_bodies} non-finite,"
            f" {self.escaped_bodies} escaped,"
            f" {self.disabled_bodies} disabled,"
            f" max penetration {self.max_penetration:.4f} m,"
            f" max joint drift {self.max_joint_drift:.4f} m"
        )

    def __repr__(self):
        return f"ValidationReport({self.summary()})"


def validate_world(world, bounds: float = None,
                   penetration_tolerance: float = 0.15,
                   joint_tolerance: float = 0.08,
                   health=None) -> ValidationReport:
    """``health`` (a ``repro.resilience.HealthReport``) folds a guarded
    run's incident log into the verdict: unrecovered incidents fail."""
    report = ValidationReport()
    if bounds is None:
        bounds = world.config.world_bounds

    # Debris authored for not-yet-triggered prefracture starts disabled
    # by design; don't count it against the run.
    dormant = set()
    for pf in world.prefracture_registry:
        if not pf.broken:
            dormant.update(b.uid for b, _ in pf.debris)

    for body in world.bodies:
        if body.is_static:
            continue
        if not body.enabled:
            if body.uid not in dormant:
                report.disabled_bodies += 1
            continue
        report.bodies_checked += 1
        if not body.is_finite():
            report.non_finite_bodies += 1
            report.notes.append(f"non-finite state on body #{body.uid}")
            continue
        p = body.position
        if max(abs(p.x), abs(p.y), abs(p.z)) > bounds:
            report.escaped_bodies += 1
            report.notes.append(
                f"body #{body.uid} escaped bounds at {p!r}")

    # Penetration audit over current broadphase pairs.
    live = [g for g in world.geoms if g.enabled]
    for ga, gb in world.broadphase.pairs(live):
        if world._pair_filtered(ga, gb):
            continue
        for contact in collide(ga, gb):
            if math.isfinite(contact.depth):
                report.max_penetration = max(report.max_penetration,
                                             contact.depth)
    if report.max_penetration > penetration_tolerance:
        report.notes.append(
            f"max penetration {report.max_penetration:.4f} m exceeds"
            f" tolerance {penetration_tolerance} m")

    # Joint drift: positional error of ball-type anchors.
    for joint in world.joints:
        if joint.broken or not joint.enabled:
            continue
        anchor_error = getattr(joint, "anchor_error", None)
        if anchor_error is not None:
            drift = anchor_error()
            report.max_joint_drift = max(report.max_joint_drift, drift)
    if report.max_joint_drift > joint_tolerance:
        report.notes.append(
            f"max joint drift {report.max_joint_drift:.4f} m exceeds"
            f" tolerance {joint_tolerance} m")

    for k, cloth in enumerate(world.cloths):
        bad = int((~np.isfinite(cloth.positions)).sum())
        if bad:
            report.non_finite_cloth_vertices += bad
            report.notes.append(
                f"cloth {k} has {bad} non-finite vertex components")

    if health is not None:
        report.unrecovered_incidents = health.unrecovered
        if len(health):
            report.notes.append(f"watchdog: {health.summary()}")

    return report
