"""Benchmarks, scene builders, run harness, and validation."""

from . import scenes
from .benchmarks import (
    BENCHMARKS,
    Benchmark,
    BenchmarkRun,
    get_benchmark,
    run_all,
    run_benchmark,
)
from .validation import ValidationReport, validate_world

__all__ = [
    "scenes",
    "BENCHMARKS",
    "Benchmark",
    "BenchmarkRun",
    "get_benchmark",
    "run_benchmark",
    "run_all",
    "ValidationReport",
    "validate_world",
]
