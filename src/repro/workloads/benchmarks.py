"""The eight benchmarks of the paper's Table 3, parameterized by scale.

``scale=1.0`` targets the paper's entity counts (30 humanoids, hundreds
to thousands of objects); smaller scales shrink every population
proportionally (Table 1's "parameterization and scaling"), keeping the
same phase structure at tractable pure-Python cost.

Each benchmark builds ``(world, driver)``: the driver is called once per
sub-step and animates the scenario (cannon fire, throttle, explosion
schedules).
"""

from __future__ import annotations

import math
import random
import warnings

from ..dynamics import Body
from ..cloth import Cloth
from ..engine import World
from ..geometry import Box, Sphere
from ..math3d import Vec3
from ..profiling import mean_report
from . import scenes


def _count(base: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(base * scale)))


class Benchmark:
    def __init__(self, name: str, description: str, builder):
        self.name = name
        self.description = description
        self._builder = builder

    def build(self, scale: float = 1.0, seed: int = 0):
        """Returns (world, driver); driver may be None."""
        world, driver = self._builder(scale, seed)
        return world, driver

    def __repr__(self):
        return f"Benchmark({self.name!r})"


# ---------------------------------------------------------------------------
# builders


def _build_periodic(scale, seed):
    """Bouncing balls/crates in periodic motion (Table 3: Periodic)."""
    rng = random.Random(seed)
    world = World()
    scenes.make_ground(world)
    n = _count(480, scale)
    side = max(2, int(math.sqrt(n)))
    for k in range(n):
        i, j = k % side, k // side
        x = (i - side / 2) * 1.4 + rng.uniform(-0.1, 0.1)
        z = (j - side / 2) * 1.4 + rng.uniform(-0.1, 0.1)
        y = 1.5 + (k % 5) * 0.8
        body = Body(position=Vec3(x, y, z))
        if k % 3 == 0:
            world.attach(body, Box.from_dimensions(0.5, 0.5, 0.5),
                         density=400.0, restitution=0.6)
        else:
            world.attach(body, Sphere(0.3), density=600.0,
                         restitution=0.75)
    return world, None


def _build_ragdoll(scale, seed):
    """Tossed humanoids (Table 3: Ragdoll)."""
    rng = random.Random(seed)
    world = World()
    scenes.make_ground(world)
    n = _count(30, scale)
    side = max(1, int(math.sqrt(n)))
    ragdolls = []
    for k in range(n):
        i, j = k % side, k // side
        base = Vec3((i - side / 2) * 2.0, 0.4 + 0.2 * (k % 3),
                    (j - side / 2) * 2.0)
        doll = scenes.make_humanoid(world, base)
        doll.set_velocity(Vec3(rng.uniform(-1.5, 1.5), rng.uniform(0, 1),
                               rng.uniform(-1.5, 1.5)))
        ragdolls.append(doll)
    return world, None


def _build_continuous(scale, seed):
    """Cars racing over terrain — continuous contact (Table 3)."""
    world = World()
    terrain = scenes.make_terrain(world, extent=60.0, resolution=16,
                                  amplitude=0.4, seed=seed)
    scenes.scatter_obstacles(world, _count(16, scale), area=30.0,
                             seed=seed, terrain=terrain)
    n = _count(8, scale)
    cars = []
    for k in range(n):
        angle = 2 * math.pi * k / n
        x, z = 10 * math.cos(angle), 10 * math.sin(angle)
        car = scenes.make_car(
            world, Vec3(x, terrain.height_at(x, z) + 0.25, z),
            heading=angle + math.pi / 2)
        car.set_throttle(14.0, max_force=700.0)
        forward = car.chassis.orientation.rotate(Vec3(0, 0, 1))
        for body in car.all_bodies():
            body.linear_velocity = forward * 4.0
        cars.append(car)
    return world, None


def _build_breakable(scale, seed):
    """Bonded walls shelled by heavy projectiles (Table 3: Breakable)."""
    world = World()
    scenes.make_ground(world)
    bricks = _count(6, scale, minimum=3)
    walls = _count(3, scale)
    cannons = []
    width = bricks * 2 * scenes.BRICK_HALF.x + 2.0
    for w in range(walls):
        x = (w - (walls - 1) / 2) * width
        scenes.make_wall(world, Vec3(x, 0, 0), bricks_x=bricks,
                         bricks_y=bricks, bonded=True,
                         break_threshold=6.0e3)
        cannons.append(scenes.Cannon(
            world, Vec3(x + 1.0, 1.2, 12.0), Vec3(x, 1.0, 0.0),
            speed=40.0, period_steps=25, explosive=False,
            shell_radius=0.25))
    # A few ragdoll bystanders make the island structure heterogeneous.
    for k in range(_count(4, scale, minimum=1)):
        scenes.make_humanoid(world, Vec3(-6.0 + 4.0 * k, 0.0, 6.0))

    def driver():
        for cannon in cannons:
            cannon.tick()
    return world, driver


def _build_deformable(scale, seed):
    """Cloth-heavy scene (Table 3: Deformable)."""
    world = World()
    scenes.make_ground(world)
    # The paper's 625-vertex drape, kept at full size at every scale:
    # its cost dominates the Cloth phase and (because it is a single CG
    # unit) bounds cloth-phase parallel speedup — the Fig. 7(a) shape.
    big = 25
    drape = Cloth(big, big, 0.1, Vec3(-big * 0.05, 2.2, 0.0),
                  pin_top_row=True)
    drape.ground_height = 0.0
    world.add_cloth(drape)
    # Small uniforms (5x5) over spheres and ragdolls scale the rest of
    # the phase toward the paper's 2,000-vertex total.
    n_small = _count(55, scale)
    for k in range(n_small):
        x = (k % 6 - 2.5) * 1.2
        z = 1.5 + (k // 6) * 1.2
        cloth = Cloth(5, 5, 0.12, Vec3(x, 1.6, z), pin_top_row=False)
        cloth.ground_height = 0.0
        world.add_cloth(cloth)
    for k in range(_count(6, scale, minimum=2)):
        body = Body(position=Vec3((k % 3 - 1) * 1.5, 0.5,
                                  1.8 + (k // 3) * 1.5))
        world.attach(body, Sphere(0.4), density=500.0)
    for k in range(_count(3, scale, minimum=1)):
        scenes.make_humanoid(world, Vec3(-2.0 + 2.0 * k, 0.0, -1.5))
    return world, None


def _build_explosions(scale, seed):
    """Prefractured structures + explosive shells (Table 3: Explosions).

    Full scale targets the paper's 3,459-object count through debris
    multiplication (each brick authors 8 pieces)."""
    world = World()
    scenes.make_ground(world)
    bricks = _count(6, scale, minimum=3)
    walls = _count(4, scale)
    width = bricks * 2 * scenes.BRICK_HALF.x + 2.5
    cannons = []
    for w in range(walls):
        x = (w - (walls - 1) / 2) * width
        scenes.make_wall(world, Vec3(x, 0, 0), bricks_x=bricks,
                         bricks_y=bricks, prefractured=True)
        cannons.append(scenes.Cannon(
            world, Vec3(x, 1.5, 10.0), Vec3(x, 1.0, 0.0),
            speed=35.0, period_steps=18, explosive=True))
    for k in range(_count(6, scale, minimum=1)):
        scenes.make_humanoid(world, Vec3(-4.0 + 3.0 * k, 0.0, 4.0))

    def driver():
        for cannon in cannons:
            cannon.tick()
    return world, driver


def _build_highspeed(scale, seed):
    """Very fast movers vs thin structures (Table 3: Highspeed)."""
    rng = random.Random(seed)
    world = World()
    scenes.make_ground(world)
    bricks = _count(8, scale, minimum=4)
    scenes.make_wall(world, Vec3(0, 0, 0), bricks_x=bricks,
                     bricks_y=_count(5, scale, minimum=3))
    n = _count(24, scale)
    for k in range(n):
        body = Body(position=Vec3(
            rng.uniform(-bricks * 0.3, bricks * 0.3),
            0.4 + 0.25 * (k % 4),
            14.0 + 1.5 * (k // 4)))
        world.attach(body, Sphere(0.15), density=4000.0, friction=0.3)
        body.linear_velocity = Vec3(rng.uniform(-2, 2), 2.0,
                                    -rng.uniform(45.0, 60.0))
        body.gravity_scale = 0.5
    return world, None


def _build_mix(scale, seed):
    """All phenomena combined (Table 3: Mix) at fractional sub-scales."""
    world = World()
    scenes.make_ground(world)
    sub = 0.4 * scale
    for k in range(_count(8, sub)):
        doll = scenes.make_humanoid(
            world, Vec3(-6.0 + 2.0 * k, 0.0, -4.0))
        doll.set_velocity(Vec3(0.5 * (k % 3 - 1), 0, 0.5))
    bricks = _count(5, scale, minimum=3)
    scenes.make_wall(world, Vec3(6, 0, 0), bricks_x=bricks,
                     bricks_y=bricks, bonded=True, break_threshold=6.0e3)
    scenes.make_wall(world, Vec3(-6, 0, 0), bricks_x=bricks,
                     bricks_y=bricks, prefractured=True)
    cannon = scenes.Cannon(world, Vec3(-6, 1.5, 12.0), Vec3(-6, 1.0, 0.0),
                           speed=35.0, period_steps=30, explosive=True)
    # Mix carries the same full-size 625-vertex drape as Deformable
    # (paper Table 4: 2,625 cloth vertices at full scale) ...
    size = 25
    drape = Cloth(size, size, 0.1, Vec3(2.0, 2.0, 3.0), pin_top_row=True)
    drape.ground_height = 0.0
    world.add_cloth(drape)
    # ... plus 5x5 uniforms toward the paper's vertex total.
    for k in range(_count(80, scale)):
        cloth = Cloth(5, 5, 0.12,
                      Vec3((k % 8 - 3.5) * 1.1, 1.7, -2.0 - (k // 8)),
                      pin_top_row=False)
        cloth.ground_height = 0.0
        world.add_cloth(cloth)
    rng = random.Random(seed)
    for k in range(_count(40, sub)):
        body = Body(position=Vec3(rng.uniform(-3, 3),
                                  1.0 + 0.5 * (k % 4),
                                  rng.uniform(4, 8)))
        world.attach(body, Sphere(0.25), density=500.0, restitution=0.5)

    def driver():
        cannon.tick()
    return world, driver


BENCHMARKS = {
    "periodic": Benchmark(
        "periodic", "bodies in periodic bouncing motion", _build_periodic),
    "ragdoll": Benchmark(
        "ragdoll", "tossed articulated humanoids", _build_ragdoll),
    "continuous": Benchmark(
        "continuous", "cars in continuous contact with terrain",
        _build_continuous),
    "breakable": Benchmark(
        "breakable", "mortared walls with breakable joints",
        _build_breakable),
    "deformable": Benchmark(
        "deformable", "cloth drapes and uniforms", _build_deformable),
    "explosions": Benchmark(
        "explosions", "blasts and prefractured debris", _build_explosions),
    "highspeed": Benchmark(
        "highspeed", "very fast movers vs structures", _build_highspeed),
    "mix": Benchmark(
        "mix", "all phenomena combined", _build_mix),
}


def get_benchmark(name: str) -> Benchmark:
    try:
        return BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") \
            from None


# ---------------------------------------------------------------------------
# run harness


class BenchmarkRun:
    """A simulated benchmark: per-frame reports + the measured average."""

    def __init__(self, name: str, scale: float, seed: int, world,
                 reports, measure_from: int, health=None, injector=None):
        self.name = name
        self.scale = scale
        self.seed = seed
        self.world = world
        self.reports = reports
        self.measure_from = measure_from
        self.measured = mean_report(reports[measure_from:])
        # Watchdog incident log (repro.resilience.HealthReport) when the
        # run was guarded, and the fault injector when faults were on.
        self.health = health
        self.injector = injector

    def instructions_per_frame(self) -> dict:
        per_phase = self.measured.phase_instructions()
        per_phase["total"] = sum(per_phase.values())
        return per_phase

    def total_instructions(self) -> float:
        """Modeled instructions per measured frame (all phases)."""
        return self.measured.total_instructions()

    def _prefractured_fragments(self) -> int:
        """Fragments pre-fractured at authoring time: bodies held
        together by breakable bonds (mortared walls). The Explosions
        benchmark's debris swaps are blast-triggered whole-body
        replacements, which Table 4 counts under ``objects`` instead.
        """
        bonded = set()
        for joint in self.world.joints:
            if getattr(joint, "break_threshold", None) is None:
                continue
            for body in joint.connected_bodies():
                if body is not None:
                    bonded.add(body.uid)
        return len(bonded)

    def table4_row(self) -> dict:
        m = self.measured
        pairs = m["broadphase"].get("pairs")
        return {
            "benchmark": self.name,
            "objects": len(self.world.dynamic_bodies()),
            "obj_pairs": pairs,
            "object_pairs": pairs,
            "contacts": m["narrowphase"].get("contacts"),
            "islands": m["island_creation"].get("islands"),
            "cloth_objects": len(self.world.cloths),
            "cloth_vertices": sum(c.num_vertices
                                  for c in self.world.cloths),
            "prefractured": self._prefractured_fragments(),
        }

    def __repr__(self):
        return (f"BenchmarkRun({self.name!r}, scale={self.scale},"
                f" frames={len(self.reports)})")


def _scenario_spec(name: str, scale: float, seed: int, watchdog: bool,
                   watchdog_config, fault_schedule, backend):
    """Map the legacy harness arguments onto a SessionSpec."""
    from ..api import SessionSpec
    return SessionSpec(
        name, scale=scale, seed=seed, backend=backend,
        watchdog=watchdog, watchdog_config=watchdog_config,
        faults=fault_schedule)


def run_benchmark(name: str, scale: float = 1.0, frames: int = 5,
                  measure_from: int = None, seed: int = 0,
                  watchdog: bool = False, watchdog_config=None,
                  fault_schedule=None, backend: str = None) -> BenchmarkRun:
    """Deprecated: use :func:`repro.api.run_scenario`.

    Thin shim over the session-first API — the run is bit-identical to
    the historical loop (``Session.step`` preserves it verbatim). Will
    be removed in the next release; build a
    :class:`repro.api.SessionSpec` instead: the watchdog, fault and
    backend policies travel as JSON-serializable data, and the same
    spec drives ``repro.serve`` sessions.
    """
    warnings.warn(
        "run_benchmark() is deprecated and will be removed in the next "
        "release; use repro.api.run_scenario(SessionSpec(name, ...)) "
        "(same loop, same BenchmarkRun result)",
        DeprecationWarning, stacklevel=2)
    from ..api import run_scenario
    spec = _scenario_spec(name, scale, seed, watchdog, watchdog_config,
                          fault_schedule, backend)
    return run_scenario(spec, frames=frames, measure_from=measure_from)


def run_all(scale: float = 1.0, frames: int = 5, measure_from: int = None,
            seed: int = 0) -> dict:
    from ..api import run_scenario
    return {
        name: run_scenario(
            _scenario_spec(name, scale, seed, False, None, None, None),
            frames=frames, measure_from=measure_from)
        for name in BENCHMARKS
    }
