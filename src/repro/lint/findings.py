"""The :class:`Finding` record every PaxLint rule emits."""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple


class Finding:
    """One rule violation, anchored to a file and line.

    ``line`` is where a ``# pax: ignore[...]`` suppression must sit
    (same line or the standalone comment line directly above).  The
    baseline intentionally matches on ``(rule, path, message)`` and not
    the line number, so unrelated edits that shift lines don't churn
    it.
    """

    __slots__ = ("rule", "path", "line", "message", "suppressed",
                 "suppress_reason", "baselined")

    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.suppressed = False
        self.suppress_reason: Optional[str] = None
        self.baselined = False

    # -- identity -------------------------------------------------------
    @property
    def rel_path(self) -> str:
        """Path relative to the cwd, for stable report/baseline text."""
        try:
            rel = os.path.relpath(self.path)
        except ValueError:  # different drive (windows)
            return self.path.replace(os.sep, "/")
        if rel.startswith(".."):
            return self.path.replace(os.sep, "/")
        return rel.replace(os.sep, "/")

    def key(self) -> Tuple[str, str, str]:
        """Line-independent identity used by the baseline."""
        return (self.rule, self.rel_path, self.message)

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.rel_path, self.line, self.rule)

    # -- rendering ------------------------------------------------------
    def render(self) -> str:
        return (f"{self.rel_path}:{self.line}: {self.rule} "
                f"{self.message}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.rel_path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
            "baselined": self.baselined,
        }

    def __repr__(self) -> str:
        return f"Finding({self.render()!r})"
