"""Parsed source files and their classification.

A :class:`SourceFile` bundles everything a rule needs about one module:
its AST, raw lines, comments (via :mod:`tokenize`, so strings that
merely *contain* ``#`` don't confuse suppression parsing), its dotted
module name under the ``repro`` package root, and whether it belongs to
the simulation core that the PAX1xx determinism rules police.
"""

from __future__ import annotations

import ast
import io
import os
import tokenize
from typing import Dict, List, Optional

#: Packages whose code runs inside (or mutates state read by) the
#: deterministic step path.  The PAX1xx rules apply only here; analysis
#: / profiling / workload-builder code may freely use clocks and RNGs.
SIM_PACKAGES = (
    "collision",
    "dynamics",
    "engine",
    "cloth",
    "fastpath",
    "resilience",
    "serve",
)


class SourceFile:
    """One parsed Python file plus derived lint metadata."""

    def __init__(self, path: str, text: str):
        self.path = os.path.abspath(path)
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.Module = ast.parse(text, filename=path)
        #: line number -> comment text (including the leading ``#``).
        self.comments: Dict[int, str] = _extract_comments(text)
        #: lines that hold *only* a comment (suppressions there apply
        #: to the next code line).
        self.standalone_comment_lines = {
            lineno for lineno, _ in self.comments.items()
            if self._line_is_only_comment(lineno)
        }
        self.repro_root = _find_repro_root(self.path)
        self.module = _module_name(self.path, self.repro_root)

    def _line_is_only_comment(self, lineno: int) -> bool:
        if not 1 <= lineno <= len(self.lines):
            return False
        return self.lines[lineno - 1].lstrip().startswith("#")

    # -- classification -------------------------------------------------
    @property
    def package_parts(self) -> List[str]:
        return self.module.split(".") if self.module else []

    def is_sim_module(self) -> bool:
        """True for files in the deterministic simulation core."""
        parts = self.package_parts
        return len(parts) >= 2 and parts[0] == "repro" \
            and parts[1] in SIM_PACKAGES

    def in_package(self, package: str) -> bool:
        parts = self.package_parts
        return len(parts) >= 2 and parts[0] == "repro" \
            and parts[1] == package

    def __repr__(self) -> str:
        return f"SourceFile({self.module or self.path!r})"


def _extract_comments(text: str) -> Dict[int, str]:
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the ast parse already succeeded; comments best-effort
    return comments


def _find_repro_root(path: str) -> Optional[str]:
    """Absolute path of the ``repro`` package directory above ``path``.

    Identified by walking up until a directory literally named
    ``repro`` containing an ``__init__.py``; lets the contract rules
    resolve dotted names like ``repro.cloth.Cloth.step`` to files even
    when only a sub-package was passed on the command line.
    """
    cur = os.path.dirname(path)
    while True:
        if os.path.basename(cur) == "repro" and \
                os.path.isfile(os.path.join(cur, "__init__.py")):
            return cur
        nxt = os.path.dirname(cur)
        if nxt == cur:
            return None
        cur = nxt


def _module_name(path: str, repro_root: Optional[str]) -> str:
    """Dotted module name (``repro.engine.world``) for ``path``."""
    if repro_root is None:
        stem = os.path.splitext(os.path.basename(path))[0]
        return stem if stem != "__init__" else ""
    rel = os.path.relpath(path, os.path.dirname(repro_root))
    parts = rel.replace(os.sep, "/").split("/")
    parts[-1] = os.path.splitext(parts[-1])[0]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def load_source(path: str) -> SourceFile:
    with open(path, encoding="utf-8") as fh:
        return SourceFile(path, fh.read())


def collect_files(paths: List[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith("."))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(
                f"not a Python file or directory: {path}")
    seen = set()
    unique: List[str] = []
    for path in out:
        ap = os.path.abspath(path)
        if ap not in seen:
            seen.add(ap)
            unique.append(path)
    return unique
