"""Rule registry.

Rules come in two kinds:

* ``file`` rules get one :class:`~repro.lint.sources.SourceFile` at a
  time (the PAX1xx determinism family);
* ``project`` rules get the whole parsed file set at once (the PAX2xx
  contract family — snapshot completeness and kernel coverage span
  several modules).

Each rule owns a ``rationale``: the paragraph ``--explain PAXNNN``
prints, stating *why* the pattern threatens bit-identical replay and
what to do instead.  Shipping a rule without a rationale is a bug —
the CLI refuses to register one.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from ..findings import Finding
from ..sources import SourceFile

FileCheck = Callable[[SourceFile], List[Finding]]
ProjectCheck = Callable[[List[SourceFile]], List[Finding]]


class Rule:
    """One registered PAX rule."""

    __slots__ = ("code", "name", "kind", "rationale", "check")

    def __init__(self, code: str, name: str, kind: str, rationale: str,
                 check: Callable[..., List[Finding]]):
        self.code = code
        self.name = name
        self.kind = kind  # "file" | "project" | "meta"
        self.rationale = rationale
        self.check = check


_REGISTRY: Dict[str, Rule] = {}


def register(code: str, name: str, kind: str,
             rationale: str) -> Callable[[Callable[..., List[Finding]]],
                                         Callable[..., List[Finding]]]:
    def deco(fn: Callable[..., List[Finding]]
             ) -> Callable[..., List[Finding]]:
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code {code}")
        if kind not in ("file", "project", "meta"):
            raise ValueError(f"bad rule kind {kind!r} for {code}")
        if not rationale.strip():
            raise ValueError(f"rule {code} has no rationale")
        _REGISTRY[code] = Rule(code, name, kind, rationale.strip(), fn)
        return fn
    return deco


def all_rules() -> List[Rule]:
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def all_codes() -> Tuple[str, ...]:
    return tuple(rule.code for rule in all_rules())


def get_rule(code: str) -> Rule:
    _ensure_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"unknown rule {code!r}; known: "
                       f"{', '.join(sorted(_REGISTRY))}") from None


def select_rules(selectors: Iterable[str]) -> List[Rule]:
    """Resolve ``--select`` patterns: exact codes or prefixes.

    ``PAX1`` selects the whole determinism family, ``PAX105`` exactly
    one rule.  Unknown selectors raise so typos can't silently lint
    nothing.
    """
    _ensure_loaded()
    chosen: Dict[str, Rule] = {}
    for selector in selectors:
        sel = selector.strip().upper()
        matches = [r for code, r in _REGISTRY.items()
                   if code.startswith(sel)]
        if not matches:
            raise KeyError(f"--select {selector!r} matches no rule")
        for rule in matches:
            chosen[rule.code] = rule
    return [chosen[code] for code in sorted(chosen)]


# PAX001 has no checker function: the suppression parser emits it
# directly.  Registered here so --explain / --select know it.
register(
    "PAX001", "malformed-suppression", "meta",
    """\
Every '# pax: ignore[PAXNNN]: reason' must name known rule codes and
carry a non-empty reason.  Suppressions are the pressure valve that
keeps the determinism rules strict — an unexplained one hides exactly
the information a reviewer (or the next PR's author) needs to judge
whether the exception is still safe, so PaxLint treats it as a
violation in its own right.""",
)(lambda _src: [])


def _ensure_loaded() -> None:
    from . import contracts, determinism  # noqa: F401


__all__ = [
    "FileCheck",
    "ProjectCheck",
    "Rule",
    "all_codes",
    "all_rules",
    "get_rule",
    "register",
    "select_rules",
]
