"""PAX1xx: determinism / numeric-safety rules for the simulation core.

These rules fire only in the simulation packages (``collision``,
``dynamics``, ``engine``, ``cloth``, ``fastpath``, ``resilience`` —
see :data:`repro.lint.sources.SIM_PACKAGES`): code there runs inside
the deterministic step path, where bit-identical replay is the
contract the differential oracle, checkpoint rollback, and future
shard migration all stand on.  Analysis, profiling, and workload
builders are deliberately out of scope.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..findings import Finding
from ..sources import SourceFile
from . import register
from ._astutil import (
    SetTypes,
    build_parents,
    call_arg_of,
    func_name_of_call,
    import_aliases,
    resolve_call_name,
)

#: Consumers that reduce an iterable order-insensitively, so feeding
#: them an unordered iterable is fine (sum is handled by PAX105: float
#: addition is order-*sensitive* in the last ulp).
_ORDER_FREE_CONSUMERS = ("sorted", "min", "max", "any", "all", "set",
                        "frozenset", "len")

_WALL_CLOCK = (
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns", "time.clock",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
)

_MUTABLE_CALLS = ("list", "dict", "set", "bytearray", "defaultdict",
                  "deque", "OrderedDict", "Counter")

#: numpy.random attributes that are fine *when given arguments* (they
#: construct / seed an explicit generator instead of using the hidden
#: process-global one).
_NP_SEEDED_OK = ("default_rng", "RandomState", "SeedSequence", "seed")


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _MUTABLE_CALLS:
        return True
    return False


# -- PAX101 / PAX105: unordered iteration & accumulation ----------------

@register(
    "PAX101", "unordered-iteration", "file",
    """\
Iterating a set (or anything set-typed in this file) visits elements
in hash order, which varies with insertion history and, for str keys,
across interpreter runs (PYTHONHASHSEED).  Any state mutation, contact
generation, or list built inside such a loop therefore breaks
bit-identical replay — the oracle the differential tests, checkpoint
rollback, and shard migration all rely on.  Iterate a list, or wrap
the iterable in sorted(...) with a deterministic key.  Order-free
reductions (len/min/max/any/all/sorted itself) are exempt.""",
)
def check_pax101(src: SourceFile) -> List[Finding]:
    if not src.is_sim_module():
        return []
    sets = SetTypes(src)
    parents = build_parents(src.tree)
    findings: List[Finding] = []

    def describe(node: ast.expr) -> str:
        text = ast.dump(node)
        if isinstance(node, ast.Name):
            text = node.id
        elif isinstance(node, ast.Attribute):
            text = node.attr
        elif isinstance(node, (ast.Set, ast.SetComp)):
            text = "a set display"
        elif isinstance(node, ast.Call):
            text = f"{func_name_of_call(node)}(...)"
        return text

    for node in ast.walk(src.tree):
        if isinstance(node, ast.For):
            if sets.is_set_expr(node.iter):
                findings.append(Finding(
                    "PAX101", src.path, node.lineno,
                    f"for-loop iterates unordered set "
                    f"'{describe(node.iter)}'; iterate a list or "
                    f"sorted(...) instead"))
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                               ast.DictComp)):
            hits = [gen for gen in node.generators
                    if sets.is_set_expr(gen.iter)]
            if not hits:
                continue
            consumer = call_arg_of(parents, node)
            if consumer is not None:
                name = func_name_of_call(consumer)
                if name in _ORDER_FREE_CONSUMERS:
                    continue
                if name in ("sum", "fsum"):
                    continue  # PAX105 owns the accumulation case
            kind = ("dict" if isinstance(node, ast.DictComp)
                    else "sequence")
            findings.append(Finding(
                "PAX101", src.path, node.lineno,
                f"{kind} comprehension draws from unordered set "
                f"'{describe(hits[0].iter)}'; its element order is "
                f"not reproducible"))
    return findings


@register(
    "PAX105", "unordered-float-accumulation", "file",
    """\
Float addition is not associative: summing the same values in a
different order changes the last ulp, and one ulp is all it takes to
break the engine's divergence==0.0 oracle.  sum()/accumulation over a
set (or generator drawing from one) therefore silently varies run to
run even though the *mathematical* result is order-free.  Accumulate
over a list or sorted(...) sequence; math.fsum (correctly rounded,
order-independent) is exempt.""",
)
def check_pax105(src: SourceFile) -> List[Finding]:
    if not src.is_sim_module():
        return []
    sets = SetTypes(src)
    findings: List[Finding] = []

    def genexp_over_set(node: ast.expr) -> bool:
        if isinstance(node, (ast.GeneratorExp, ast.ListComp,
                             ast.SetComp)):
            return any(sets.is_set_expr(gen.iter)
                       for gen in node.generators)
        return False

    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call):
            name = func_name_of_call(node)
            if name != "sum" or not node.args:
                continue
            arg = node.args[0]
            if sets.is_set_expr(arg) or genexp_over_set(arg):
                findings.append(Finding(
                    "PAX105", src.path, node.lineno,
                    "sum() over an unordered iterable: float addition "
                    "is order-sensitive in the last ulp"))
        elif isinstance(node, ast.For) and sets.is_set_expr(node.iter):
            for sub in ast.walk(node):
                if isinstance(sub, ast.AugAssign) and isinstance(
                        sub.op, (ast.Add, ast.Sub, ast.Mult)):
                    findings.append(Finding(
                        "PAX105", src.path, sub.lineno,
                        "accumulation inside a loop over an unordered "
                        "set: result depends on hash order"))
    return findings


# -- PAX102: id() -------------------------------------------------------

@register(
    "PAX102", "id-as-key-or-order", "file",
    """\
id() returns a memory address, which differs between runs, between the
scalar and numpy backends, and after a checkpoint restore respawns
objects.  Using it in a sort key, a hash/dict key, or any comparison
makes behavior depend on the allocator, not the simulation.  Engine
objects carry a deterministic creation-ordered .uid for exactly this
purpose — key and sort on that instead.""",
)
def check_pax102(src: SourceFile) -> List[Finding]:
    if not src.is_sim_module():
        return []
    findings: List[Finding] = []
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id == "id":
            findings.append(Finding(
                "PAX102", src.path, node.lineno,
                "id() is address-dependent and varies across runs; "
                "use the object's deterministic .uid"))
    return findings


# -- PAX103: unseeded randomness ----------------------------------------

@register(
    "PAX103", "unseeded-rng", "file",
    """\
The process-global RNGs (random.*, numpy.random.* legacy functions)
and unseeded generator constructors (random.Random(),
numpy.random.default_rng() with no argument) draw from OS entropy or
shared hidden state, so two runs — or two worlds in one process —
see different streams.  Everything stochastic in the engine must flow
from an explicit seed threaded through the call (random.Random(seed),
default_rng(seed)), the pattern repro.resilience.FaultInjector
already uses.""",
)
def check_pax103(src: SourceFile) -> List[Finding]:
    if not src.is_sim_module():
        return []
    aliases = import_aliases(src.tree)
    findings: List[Finding] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        origin = resolve_call_name(node.func, aliases)
        if origin is None:
            continue
        message = _rng_violation(origin, bool(node.args or
                                              node.keywords))
        if message is not None:
            findings.append(Finding(
                "PAX103", src.path, node.lineno, message))
    return findings


def _rng_violation(origin: str, has_args: bool) -> Optional[str]:
    if origin == "random.SystemRandom":
        return "random.SystemRandom draws OS entropy and can never " \
               "replay; use random.Random(seed)"
    if origin in ("random.Random", "numpy.random.default_rng",
                  "numpy.random.RandomState",
                  "numpy.random.SeedSequence"):
        if not has_args:
            return f"{origin}() without a seed draws OS entropy; " \
                   f"pass an explicit seed"
        return None
    if origin == "random.seed" or origin == "numpy.random.seed":
        if not has_args:
            return f"{origin}() with no argument reseeds from OS " \
                   f"entropy"
        return None
    if origin.startswith("random.") and origin.count(".") == 1:
        return f"{origin}() uses the hidden process-global RNG; " \
               f"thread an explicit random.Random(seed) instead"
    if origin.startswith("numpy.random.") \
            and origin.split(".")[-1] not in ("Generator",
                                              "BitGenerator",
                                              "Philox", "PCG64"):
        return f"{origin}() uses numpy's hidden global RNG; use a " \
               f"seeded numpy.random.default_rng(seed)"
    return None


# -- PAX104: wall clock in the step path --------------------------------

@register(
    "PAX104", "wall-clock-in-step-path", "file",
    """\
Wall-clock reads (time.time, perf_counter, datetime.now, ...) differ
every run, so any value derived from them inside the step path makes
trajectories non-replayable — and sneaks real time into code that
must behave identically on a live shard and on its migrated replica
replaying a checkpoint.  Simulation time is world.time/step_index,
advanced by fixed dt.  Timing *measurement* belongs in
repro.profiling or the benchmark harnesses, which are out of scope
for this rule.""",
)
def check_pax104(src: SourceFile) -> List[Finding]:
    if not src.is_sim_module() or src.in_package("profiling"):
        return []
    aliases = import_aliases(src.tree)
    findings: List[Finding] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        origin = resolve_call_name(node.func, aliases)
        if origin in _WALL_CLOCK:
            findings.append(Finding(
                "PAX104", src.path, node.lineno,
                f"wall-clock call {origin}() in the step path; use "
                f"world.time / step_index (fixed-dt simulation time)"))
    return findings


# -- PAX106: swallowed exceptions ---------------------------------------

@register(
    "PAX106", "silent-exception-swallow", "file",
    """\
A bare 'except:' (or a broad 'except Exception: pass') inside the
step path converts a corrupted simulation state into a silently
wrong one: the step completes, the divergence only surfaces frames
later, and the watchdog's rollback ladder never fires because nothing
raised.  The engine's failure policy is the opposite — validate,
raise, and let repro.resilience.StepWatchdog roll back to the last
good snapshot.  Catch specific exceptions and either re-raise or
leave a visible trace in the world's health signals.""",
)
def check_pax106(src: SourceFile) -> List[Finding]:
    if not src.is_sim_module():
        return []
    findings: List[Finding] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append(Finding(
                "PAX106", src.path, node.lineno,
                "bare 'except:' in the step path hides corrupted "
                "state from the watchdog"))
            continue
        if _is_broad(node.type) and _body_is_silent(node.body):
            findings.append(Finding(
                "PAX106", src.path, node.lineno,
                "broad exception handler silently swallows errors in "
                "the step path"))
    return findings


def _is_broad(type_node: ast.expr) -> bool:
    names = []
    if isinstance(type_node, ast.Name):
        names = [type_node.id]
    elif isinstance(type_node, ast.Tuple):
        names = [e.id for e in type_node.elts
                 if isinstance(e, ast.Name)]
    return any(n in ("Exception", "BaseException") for n in names)


def _body_is_silent(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant):
            continue  # docstring / Ellipsis
        return False
    return True


# -- PAX107: mutable module/default-arg state ---------------------------

@register(
    "PAX107", "mutable-shared-state", "file",
    """\
Mutable module-level containers and mutable default arguments are
process-global state: two worlds stepping in one process (BatchWorld,
the future sharded service) would observe each other through them,
and a world's behavior would depend on what ran before it — the exact
coupling that makes replay-from-checkpoint diverge.  Keep per-world
state on the World, pass explicit arguments, and reserve module level
for immutable constants (ALL_CAPS names are treated as such and are
exempt; write-once registries qualify).""",
)
def check_pax107(src: SourceFile) -> List[Finding]:
    if not src.is_sim_module():
        return []
    findings: List[Finding] = []
    findings.extend(_module_level_mutables(src))
    for node in ast.walk(src.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_literal(default):
                    findings.append(Finding(
                        "PAX107", src.path, node.lineno,
                        f"function '{node.name}' has a mutable "
                        f"default argument; it is shared across every "
                        f"call in the process"))
    return findings


def _module_level_mutables(src: SourceFile) -> List[Finding]:
    findings: List[Finding] = []

    def scan(stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.If, ast.Try)):
                for block in _blocks_of(stmt):
                    scan(block)
                continue
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_literal(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue
                if name == name.upper():
                    continue  # ALL_CAPS: write-once constant/registry
                findings.append(Finding(
                    "PAX107", src.path, stmt.lineno,
                    f"module-level mutable '{name}' is process-global "
                    f"state shared by every world"))

    scan(src.tree.body)
    return findings


def _blocks_of(stmt: ast.stmt) -> List[List[ast.stmt]]:
    blocks: List[List[ast.stmt]] = []
    for field in ("body", "orelse", "finalbody"):
        block = getattr(stmt, field, None)
        if block:
            blocks.append(block)
    handlers = getattr(stmt, "handlers", None)
    if handlers:
        for handler in handlers:
            blocks.append(handler.body)
    return blocks
