"""PAX2xx: cross-module contract rules.

These rules read *several* files' ASTs at once and encode the two
contracts that keep the engine's bit-identical-replay guarantee from
rotting:

* **PAX201** — snapshot completeness.  Every mutable field a
  ``Body.__init__`` or ``World.__init__`` creates must be captured by
  ``Body.snapshot_state``/``restore_state`` and by
  ``WorldSnapshot.capture``/``restore`` respectively.  Add a field
  without snapshotting it and checkpoint rollback (and the future
  checkpoint->migrate->replay shard move) silently loses state.
* **PAX202** — kernel coverage.  Every vectorized kernel in
  ``repro.fastpath`` must be mapped to its named scalar counterpart in
  the ``SCALAR_COUNTERPARTS`` registry (``repro/fastpath/__init__``),
  and both endpoints must exist.  Rename either side and the
  differential oracle would silently stop covering that kernel;
  PAX202 turns that into a lint failure instead.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Set, Tuple

from ..findings import Finding
from ..sources import SourceFile, load_source
from . import register
from ._astutil import (
    attr_names_on,
    dict_literal_keys,
    find_class,
    find_method,
    self_assigned_fields,
    subscript_str_keys,
)

#: Name of the fastpath kernel -> scalar counterpart registry that
#: PAX202 verifies (a plain dict literal in repro/fastpath/__init__).
REGISTRY_NAME = "SCALAR_COUNTERPARTS"


# -- PAX201 -------------------------------------------------------------

@register(
    "PAX201", "snapshot-completeness", "project",
    """\
WorldSnapshot restore replaying bit-identically is the resilience
layer's rollback primitive and the planned shard-migration primitive
(checkpoint -> move -> replay).  That only holds while the snapshot is
*complete*: every mutable field Body.__init__ or World.__init__
creates must appear in Body.snapshot_state AND Body.restore_state
(for bodies) or be read by WorldSnapshot.capture AND written by
WorldSnapshot.restore (for world state).  This rule diffs those
ASTs, so adding a field without wiring it through checkpointing is a
lint error at the line that declared it.  Derived caches and
construction-time structure are legitimately excluded — suppress at
the declaring line with the reason.""",
)
def check_pax201(files: List[SourceFile]) -> List[Finding]:
    findings: List[Finding] = []
    body_src, body_cls = _find_one(files, "Body",
                                   ("__init__", "snapshot_state",
                                    "restore_state"))
    if body_src is not None and body_cls is not None:
        findings.extend(_check_body(body_src, body_cls))

    world_src, world_cls = _find_one(files, "World", ("__init__",))
    snap_src, snap_cls = _find_one(files, "WorldSnapshot",
                                   ("capture", "restore"))
    if None not in (world_src, world_cls, snap_src, snap_cls):
        findings.extend(_check_world(
            world_src, world_cls, snap_src, snap_cls))
    return findings


def _find_one(
        files: List[SourceFile], class_name: str,
        methods: Tuple[str, ...],
) -> Tuple[Optional[SourceFile], Optional[ast.ClassDef]]:
    """First class named ``class_name`` defining all ``methods``."""
    for src in sorted(files, key=lambda s: s.path):
        cls = find_class(src.tree, class_name)
        if cls is None:
            continue
        if all(find_method(cls, m) is not None for m in methods):
            return src, cls
    return None, None


def _check_body(src: SourceFile,
                cls: ast.ClassDef) -> List[Finding]:
    init = find_method(cls, "__init__")
    snapshot = find_method(cls, "snapshot_state")
    restore = find_method(cls, "restore_state")
    assert init and snapshot and restore
    fields = self_assigned_fields(init)
    snap_keys = dict_literal_keys(snapshot)
    restore_keys = subscript_str_keys(restore)
    findings: List[Finding] = []
    for name, lineno in sorted(fields.items()):
        missing = []
        if name not in snap_keys:
            missing.append("snapshot_state")
        if name not in restore_keys:
            missing.append("restore_state")
        if missing:
            findings.append(Finding(
                "PAX201", src.path, lineno,
                f"Body field '{name}' is not covered by "
                f"{' or '.join(missing)}; checkpoint restore would "
                f"lose it"))
    return findings


def _check_world(world_src: SourceFile, world_cls: ast.ClassDef,
                 snap_src: SourceFile,
                 snap_cls: ast.ClassDef) -> List[Finding]:
    init = find_method(world_cls, "__init__")
    capture = find_method(snap_cls, "capture")
    restore = find_method(snap_cls, "restore")
    assert init and capture and restore
    fields = self_assigned_fields(init)
    captured = attr_names_on(capture, _world_param(capture, 1))
    restored = attr_names_on(restore, _world_param(restore, 1))
    findings: List[Finding] = []
    for name, lineno in sorted(fields.items()):
        missing = []
        if name not in captured:
            missing.append("WorldSnapshot.capture")
        if name not in restored:
            missing.append("WorldSnapshot.restore")
        if missing:
            findings.append(Finding(
                "PAX201", world_src.path, lineno,
                f"World field '{name}' is not touched by "
                f"{' or '.join(missing)}; checkpoint/rollback would "
                f"lose it"))
    return findings


def _world_param(func: ast.FunctionDef, index: int) -> str:
    """Name of the world parameter (skipping cls/self at slot 0)."""
    args = func.args.args
    if len(args) > index:
        return args[index].arg
    return args[-1].arg if args else "world"


# -- PAX202 -------------------------------------------------------------

@register(
    "PAX202", "fastpath-kernel-coverage", "project",
    """\
The numpy backend is only trustworthy because every vectorized kernel
is held bit-identical to a named scalar oracle by the differential
tests.  That link is recorded in fastpath.SCALAR_COUNTERPARTS:
'module.kernel' -> 'repro.x.y.func' (or 'repro.x.y.Class.method').
PAX202 cross-checks the registry against the ASTs on both sides:
every public fastpath kernel must have an entry, every entry's key
must still name a real kernel, and every entry's value must resolve
to a real scalar symbol.  Rename or delete either side and the lint
fails at the stale line instead of the oracle silently losing
coverage.  Pure packing/precompute helpers with no scalar analogue
are suppressed at their def line with the reason.""",
)
def check_pax202(files: List[SourceFile]) -> List[Finding]:
    fastpath_files = [
        src for src in files
        if src.in_package("fastpath")
        and os.path.basename(src.path) != "__init__.py"
    ]
    if not fastpath_files:
        return []
    findings: List[Finding] = []
    kernels = _collect_kernels(fastpath_files)

    registry = _find_registry(files)
    if registry is None:
        anchor = sorted(fastpath_files, key=lambda s: s.path)[0]
        findings.append(Finding(
            "PAX202", anchor.path, 1,
            f"no {REGISTRY_NAME} registry found; fastpath kernels "
            f"have no declared scalar counterparts"))
        return findings
    reg_src, reg_entries = registry

    for key, (src, lineno) in sorted(kernels.items()):
        if key not in reg_entries:
            findings.append(Finding(
                "PAX202", src.path, lineno,
                f"fastpath kernel '{key}' has no scalar counterpart "
                f"in {REGISTRY_NAME}"))
    for key, (value, lineno) in sorted(reg_entries.items()):
        if key not in kernels:
            findings.append(Finding(
                "PAX202", reg_src.path, lineno,
                f"{REGISTRY_NAME} maps unknown kernel '{key}' "
                f"(renamed or removed?)"))
            continue
        problem = _resolve_scalar(value, files, reg_src)
        if problem is not None:
            findings.append(Finding(
                "PAX202", reg_src.path, lineno,
                f"scalar counterpart '{value}' of kernel '{key}' "
                f"does not resolve: {problem}"))
    return findings


def _collect_kernels(
        fastpath_files: List[SourceFile],
) -> Dict[str, Tuple[SourceFile, int]]:
    """Public kernels: ``mod.func`` and ``mod.Class.method``."""
    kernels: Dict[str, Tuple[SourceFile, int]] = {}
    for src in fastpath_files:
        mod = src.module.split(".")[-1]
        for node in src.tree.body:
            if isinstance(node, ast.FunctionDef) \
                    and not node.name.startswith("_"):
                kernels[f"{mod}.{node.name}"] = (src, node.lineno)
            elif isinstance(node, ast.ClassDef) \
                    and not node.name.startswith("_"):
                for sub in node.body:
                    if isinstance(sub, ast.FunctionDef) \
                            and not sub.name.startswith("_"):
                        key = f"{mod}.{node.name}.{sub.name}"
                        kernels[key] = (src, sub.lineno)
    return kernels


def _find_registry(
        files: List[SourceFile],
) -> Optional[Tuple[SourceFile, Dict[str, Tuple[str, int]]]]:
    for src in sorted(files, key=lambda s: s.path):
        for node in src.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            names = [t.id for t in node.targets
                     if isinstance(t, ast.Name)]
            if REGISTRY_NAME not in names:
                continue
            if not isinstance(node.value, ast.Dict):
                continue
            entries: Dict[str, Tuple[str, int]] = {}
            for key, value in zip(node.value.keys, node.value.values):
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str) \
                        and isinstance(value, ast.Constant) \
                        and isinstance(value.value, str):
                    entries[key.value] = (value.value, key.lineno)
            return src, entries
    return None


_parse_cache: Dict[str, Optional[ast.Module]] = {}


def _resolve_scalar(dotted: str, files: List[SourceFile],
                    reg_src: SourceFile) -> Optional[str]:
    """Check ``repro.a.b.Symbol[.method]`` exists; None when it does.

    Resolution prefers the linted file set but falls back to parsing
    the module off disk (relative to the ``repro`` package root), so
    linting just ``src/repro/fastpath`` still verifies counterparts
    living in ``src/repro/dynamics``.
    """
    parts = dotted.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return "counterpart must be a dotted 'repro.*' path"
    root = reg_src.repro_root
    if root is None:
        return "cannot locate the repro package root"
    dir_path = root
    idx = 1
    while idx < len(parts):
        nxt = os.path.join(dir_path, parts[idx])
        if os.path.isdir(nxt):
            dir_path = nxt
            idx += 1
            continue
        break
    if idx < len(parts) and \
            os.path.isfile(os.path.join(dir_path,
                                        parts[idx] + ".py")):
        mod_file = os.path.join(dir_path, parts[idx] + ".py")
        symbols = parts[idx + 1:]
    else:
        mod_file = os.path.join(dir_path, "__init__.py")
        symbols = parts[idx:]
    if not os.path.isfile(mod_file):
        return f"module file for '{dotted}' not found"
    if not symbols:
        return "counterpart names a module, not a function/method"
    tree = _module_tree(mod_file, files)
    if tree is None:
        return f"could not parse {mod_file}"
    return _lookup_symbol(tree, symbols, dotted)


def _module_tree(mod_file: str,
                 files: List[SourceFile]) -> Optional[ast.Module]:
    ap = os.path.abspath(mod_file)
    for src in files:
        if src.path == ap:
            return src.tree
    if ap not in _parse_cache:
        try:
            _parse_cache[ap] = load_source(ap).tree
        except (OSError, SyntaxError):
            _parse_cache[ap] = None
    return _parse_cache[ap]


def _lookup_symbol(tree: ast.Module, symbols: List[str],
                   dotted: str) -> Optional[str]:
    name = symbols[0]
    target: Optional[ast.AST] = None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.ClassDef)) \
                and node.name == name:
            target = node
            break
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name
                for t in node.targets):
            target = node
            break
    if target is None:
        return f"no top-level symbol '{name}'"
    if len(symbols) == 1:
        return None
    if not isinstance(target, ast.ClassDef):
        return f"'{name}' is not a class but '{dotted}' names a " \
               f"method on it"
    method = symbols[1]
    if len(symbols) > 2:
        return f"too many trailing parts in '{dotted}'"
    if find_method(target, method) is None:
        found: Set[str] = {
            n.name for n in target.body
            if isinstance(n, ast.FunctionDef)}
        hint = ", ".join(sorted(found)[:6])
        return f"class '{name}' has no method '{method}' " \
               f"(has: {hint})"
    return None
