"""Shared AST plumbing for the rule implementations.

Everything here is deliberately *syntactic*: PaxLint never imports the
code under analysis (importing `repro.engine` to lint it would execute
module-level state — the very thing PAX107 polices).  Type knowledge
is therefore heuristic: "set-typed" means *assigned a set display /
``set()`` call / set comprehension somewhere in this file*, which is
exactly the local evidence a reviewer would use.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from ..sources import SourceFile


def build_parents(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child -> parent map for one module tree."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin for every import in the module.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Relative
    imports keep their leading dots (callers only match absolute
    stdlib/numpy names, so relative origins simply never match).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                origin = item.name if item.asname else \
                    item.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = f"{prefix}.{item.name}" if prefix \
                    else item.name
    return aliases


def resolve_call_name(node: ast.expr,
                      aliases: Dict[str, str]) -> Optional[str]:
    """Dotted origin of a callable expression, or None.

    ``np.random.rand`` with ``np -> numpy`` resolves to
    ``numpy.random.rand``; a bare name resolves through the alias map
    (``pc`` -> ``time.perf_counter``) or to itself.
    """
    parts = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = aliases.get(cur.id, cur.id)
    parts.append(root)
    return ".".join(reversed(parts))


# -- set-typed inference ------------------------------------------------

_SET_CALLS = ("set", "frozenset")
_SET_METHODS = ("union", "intersection", "difference",
                "symmetric_difference", "copy")


class SetTypes:
    """Names / attribute names assigned a set anywhere in the file."""

    def __init__(self, src: SourceFile):
        self.names: Set[str] = set()
        self.attrs: Set[str] = set()
        self._collect(src.tree)

    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            targets: Tuple[ast.expr, ...] = ()
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = tuple(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value:
                targets, value = (node.target,), node.value
            if value is None or not self.is_set_expr(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    # keyed by attribute name regardless of receiver:
                    # 'world._no_collide_pairs' in another module still
                    # counts.  Aggressive, but suppressible.
                    self.attrs.add(target.attr)

    def is_set_expr(self, node: ast.expr) -> bool:
        """Syntactic evidence that ``node`` evaluates to a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in _SET_CALLS:
                return True
            if isinstance(fn, ast.Attribute) \
                    and fn.attr in _SET_METHODS \
                    and self.is_set_expr(fn.value):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self.is_set_expr(node.left) \
                or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            return node.attr in self.attrs
        return False


# -- misc ---------------------------------------------------------------

def iter_comprehension_loops(
        node: ast.AST) -> Iterator[Tuple[ast.AST, ast.comprehension]]:
    """(owner, generator) pairs for every comprehension generator."""
    for sub in ast.walk(node):
        if isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp,
                            ast.GeneratorExp)):
            for gen in sub.generators:
                yield sub, gen


def call_arg_of(parents: Dict[ast.AST, ast.AST],
                node: ast.AST) -> Optional[ast.Call]:
    """The Call whose *direct* argument list contains ``node``."""
    parent = parents.get(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        return parent
    return None


def func_name_of_call(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def enclosing_function(
        parents: Dict[ast.AST, ast.AST],
        node: ast.AST) -> Optional[ast.AST]:
    cur: Optional[ast.AST] = parents.get(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cur
        cur = parents.get(cur)
    return None


def dict_literal_keys(node: ast.AST) -> Set[str]:
    """All constant string keys of dict displays under ``node``."""
    keys: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Dict):
            for key in sub.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(sub, ast.Assign):
            # d["k"] = ... also publishes key "k"
            for target in sub.targets:
                if isinstance(target, ast.Subscript):
                    keys |= _const_str_slice(target)
    return keys


def subscript_str_keys(node: ast.AST) -> Set[str]:
    """Constant string subscripts (``state["x"]``) under ``node``,
    plus ``.get("x")`` calls."""
    keys: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Subscript):
            keys |= _const_str_slice(sub)
        elif isinstance(sub, ast.Call) \
                and isinstance(sub.func, ast.Attribute) \
                and sub.func.attr == "get" and sub.args:
            arg = sub.args[0]
            if isinstance(arg, ast.Constant) \
                    and isinstance(arg.value, str):
                keys.add(arg.value)
    return keys


def _const_str_slice(sub: ast.Subscript) -> Set[str]:
    sl: ast.AST = sub.slice
    if isinstance(sl, ast.Index):  # py38 compat shape
        sl = sl.value  # type: ignore[attr-defined]
    if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
        return {sl.value}
    return set()


def self_assigned_fields(func: ast.FunctionDef) -> Dict[str, int]:
    """``self.X = ...`` targets in ``func`` -> first assignment line."""
    fields: Dict[str, int] = {}
    for node in ast.walk(func):
        targets: Tuple[ast.expr, ...] = ()
        if isinstance(node, ast.Assign):
            targets = tuple(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = (node.target,)
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                fields.setdefault(target.attr, node.lineno)
    return fields


def find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def find_method(cls: ast.ClassDef,
                name: str) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def attr_names_on(node: ast.AST, receiver: str) -> Set[str]:
    """Attribute names accessed on the name ``receiver`` under node."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) \
                and isinstance(sub.value, ast.Name) \
                and sub.value.id == receiver:
            out.add(sub.attr)
    return out
