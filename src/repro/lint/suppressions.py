"""Inline suppressions: ``# pax: ignore[PAXNNN]: reason``.

A suppression silences one or more rule codes on the line it occupies,
or — when it is a standalone comment line — on the next code line
(hand-wrapped 79-column code can't always fit a justification at the
end of the offending statement).  The reason string is **mandatory and
non-empty**: an unexcused suppression is itself a finding (PAX001), so
every exception to the determinism rules carries its rationale in the
diff forever.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .findings import Finding
from .sources import SourceFile

#: ``# pax: ignore[PAX101]: reason`` / ``# pax: ignore[PAX101, PAX105]: ...``
_PAX_RE = re.compile(
    r"#\s*pax:\s*ignore\s*\[(?P<codes>[^\]]*)\]\s*(?::\s*(?P<reason>.*))?$")
_CODE_RE = re.compile(r"^PAX\d{3}$")


class Suppression:
    """One parsed suppression comment."""

    __slots__ = ("codes", "reason", "line", "used")

    def __init__(self, codes: List[str], reason: str, line: int):
        self.codes = codes
        self.reason = reason
        self.line = line
        self.used = False


def parse_suppressions(
        src: SourceFile,
        known_codes: Tuple[str, ...],
) -> Tuple[Dict[int, Suppression], List[Finding]]:
    """Map *effective* line -> suppression, plus PAX001 findings.

    The effective line of a standalone suppression comment is the next
    non-comment line, so rationales can sit above wrapped statements.
    """
    by_line: Dict[int, Suppression] = {}
    problems: List[Finding] = []
    for lineno in sorted(src.comments):
        match = _PAX_RE.search(src.comments[lineno])
        if match is None:
            continue
        codes = [c.strip() for c in match.group("codes").split(",")
                 if c.strip()]
        reason = (match.group("reason") or "").strip()
        bad = [c for c in codes if not _CODE_RE.match(c)]
        unknown = [c for c in codes
                   if _CODE_RE.match(c) and c not in known_codes]
        if not codes:
            problems.append(Finding(
                "PAX001", src.path, lineno,
                "suppression lists no rule codes"))
            continue
        if bad:
            problems.append(Finding(
                "PAX001", src.path, lineno,
                f"malformed rule code(s) {', '.join(sorted(bad))} in "
                f"suppression (expected PAXNNN)"))
            continue
        if unknown:
            problems.append(Finding(
                "PAX001", src.path, lineno,
                f"unknown rule code(s) {', '.join(sorted(unknown))} "
                f"in suppression"))
            continue
        if not reason:
            problems.append(Finding(
                "PAX001", src.path, lineno,
                f"suppression of {', '.join(codes)} has no reason; "
                f"write '# pax: ignore[CODE]: why it is safe'"))
            continue
        effective = lineno
        if lineno in src.standalone_comment_lines:
            effective = _next_code_line(src, lineno)
        by_line[effective] = Suppression(codes, reason, lineno)
    return by_line, problems


def _next_code_line(src: SourceFile, lineno: int) -> int:
    total = len(src.lines)
    cur = lineno + 1
    while cur <= total:
        stripped = src.lines[cur - 1].strip()
        if stripped and not stripped.startswith("#"):
            return cur
        cur += 1
    return lineno


def apply_suppressions(
        findings: List[Finding],
        by_line: Dict[int, Suppression],
) -> None:
    """Mark findings covered by a suppression on their anchor line."""
    for finding in findings:
        sup = by_line.get(finding.line)
        if sup is not None and finding.rule in sup.codes:
            finding.suppressed = True
            finding.suppress_reason = sup.reason
            sup.used = True
