"""Orchestration: files -> rules -> suppressions -> baseline -> result."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .baseline import Baseline
from .findings import Finding
from .rules import Rule, all_codes, all_rules, select_rules
from .sources import SourceFile, collect_files, load_source
from .suppressions import apply_suppressions, parse_suppressions


class LintResult:
    """Everything one lint run produced."""

    def __init__(self, findings: List[Finding], files: int,
                 rules: List[Rule]):
        #: every finding, including suppressed and baselined ones
        self.findings = sorted(findings, key=Finding.sort_key)
        self.files = files
        self.rules = rules

    @property
    def active(self) -> List[Finding]:
        """Findings neither suppressed inline nor in the baseline."""
        return [f for f in self.findings
                if not f.suppressed and not f.baselined]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings
                if f.baselined and not f.suppressed]

    def counts_by_rule(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return out

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               baseline: Optional[Baseline] = None) -> LintResult:
    """Lint ``paths`` (files and/or directories) and return the result.

    ``select`` holds ``--select`` patterns (exact codes or prefixes
    like ``PAX1``); ``baseline`` absorbs known findings so only new
    ones count toward the exit code.
    """
    rules = select_rules(select) if select else all_rules()
    files = [load_source(path) for path in collect_files(list(paths))]
    findings = run_rules(rules, files)
    if baseline is not None:
        baseline.absorb([f for f in findings if not f.suppressed])
    return LintResult(findings, len(files), rules)


def run_rules(rules: List[Rule],
              files: List[SourceFile]) -> List[Finding]:
    """Run rules over parsed files and apply inline suppressions."""
    codes = all_codes()
    selected = {rule.code for rule in rules}
    findings: List[Finding] = []
    suppression_maps = {}
    for src in files:
        by_line, problems = parse_suppressions(src, codes)
        suppression_maps[src.path] = by_line
        if "PAX001" in selected:
            findings.extend(problems)
        for rule in rules:
            if rule.kind == "file":
                findings.extend(rule.check(src))
    for rule in rules:
        if rule.kind == "project":
            findings.extend(rule.check(files))
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    for path, group in by_path.items():
        sup = suppression_maps.get(path)
        if sup:
            apply_suppressions(group, sup)
    return findings
