"""The committed findings baseline.

The baseline lets the linter be adopted (or a new rule be shipped)
without blocking CI on a pre-existing backlog: known findings are
parked in ``paxlint.baseline.json`` and only **new** findings fail the
run.  Entries match on ``(rule, path, message)`` — never line numbers —
so unrelated edits don't churn the file.  The repo's policy is a
*clean* baseline (the PR-8 sweep fixed or suppressed everything); the
machinery stays so future rules can land before their sweep does.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from .findings import Finding

DEFAULT_BASELINE = "paxlint.baseline.json"
_SCHEMA = "paxlint-baseline/1"


class Baseline:
    """Multiset of known findings keyed line-independently."""

    def __init__(self, counts: Dict[Tuple[str, str, str], int]):
        self.counts = counts

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("schema") != _SCHEMA:
            raise ValueError(
                f"unrecognized baseline schema in {path}: "
                f"{data.get('schema')!r}")
        counts: Dict[Tuple[str, str, str], int] = {}
        for entry in data.get("findings", []):
            key = (entry["rule"], entry["path"], entry["message"])
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            key = finding.key()
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    def save(self, path: str) -> None:
        entries = [
            {"rule": rule, "path": rel, "message": message,
             "count": count}
            for (rule, rel, message), count in sorted(self.counts.items())
        ]
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"schema": _SCHEMA, "findings": entries}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")

    def absorb(self, findings: List[Finding]) -> None:
        """Mark findings present in the baseline (mutates in order, so
        N baselined entries absorb the first N matching findings)."""
        budget = dict(self.counts)
        for finding in findings:
            key = finding.key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                finding.baselined = True
