"""PaxLint: the engine's determinism & contract static analyzer.

The whole reproduction rests on one invariant: the scalar engine, the
``repro.fastpath`` NumPy backend, and ``WorldSnapshot`` restore must
replay **bit-identically** (trajectory divergence exactly 0.0).  That
identity is the differential-test oracle, the resilience rollback
primitive, and the precondition for sharding worlds across processes
(checkpoint -> migrate -> replay).  Nothing *runtime* prevents a change
from silently breaking it — an unordered ``set`` iteration, an
``id()``-keyed sort, a new ``Body`` field missing from the snapshot —
so PaxLint proves the cheap half of the invariant at lint time.

Two rule families (see ``repro.lint.rules``):

* **PAX1xx — determinism / numeric safety**, scoped to the simulation
  modules (``collision``, ``dynamics``, ``engine``, ``cloth``,
  ``fastpath``, ``resilience``): unordered iteration, ``id()``,
  unseeded RNGs, wall-clock reads, unordered float accumulation,
  swallowed exceptions, mutable module/default-arg state.
* **PAX2xx — cross-module contracts**, read from several files' ASTs
  at once: snapshot completeness (``Body``/``World`` state vs
  ``WorldSnapshot``) and fastpath-kernel -> scalar-oracle coverage.

Findings are suppressed inline with ``# pax: ignore[PAXNNN]: reason``
(the reason is mandatory) or parked in a committed baseline file.  Run
``python -m repro.lint --explain PAXNNN`` for any rule's rationale, or
see ``docs/lint.md``.
"""

from __future__ import annotations

from .findings import Finding
from .runner import LintResult, lint_paths
from .rules import Rule, all_rules, get_rule

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
]
