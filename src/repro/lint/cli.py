"""The ``python -m repro.lint`` command line.

Exit codes: 0 = clean (or every finding suppressed/baselined),
1 = new findings, 2 = usage or input error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .baseline import DEFAULT_BASELINE, Baseline
from .runner import LintResult, lint_paths
from .rules import all_rules, get_rule


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="PaxLint: determinism & contract static analysis "
                    "for the ParallAX engine.")
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro if it "
             "exists, else the repro package this tool lives in)")
    parser.add_argument(
        "--select", action="append", default=None, metavar="CODES",
        help="comma-separated rule codes or prefixes (e.g. "
             "'PAX1' for the determinism family, 'PAX201')")
    parser.add_argument(
        "--explain", metavar="CODE",
        help="print the rationale for a rule (or 'all') and exit")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE} next to the "
             f"linted tree, when present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file: report every finding as new")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the current findings to the baseline and exit 0")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also list inline-suppressed findings (text format)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.explain:
        return _explain(args.explain)

    paths = args.paths or _default_paths()
    if not paths:
        print("paxlint: no paths given and no src/repro found",
              file=sys.stderr)
        return 2

    selectors = None
    if args.select:
        selectors = [c for chunk in args.select
                     for c in chunk.split(",") if c.strip()]

    baseline_path = args.baseline or _default_baseline(paths)
    baseline = None
    if not args.no_baseline and not args.update_baseline \
            and baseline_path and os.path.isfile(baseline_path):
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"paxlint: bad baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    try:
        result = lint_paths(paths, select=selectors, baseline=baseline)
    except (FileNotFoundError, KeyError, SyntaxError) as exc:
        print(f"paxlint: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        out = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(
            [f for f in result.findings if not f.suppressed]).save(out)
        print(f"paxlint: wrote baseline with "
              f"{len([f for f in result.findings if not f.suppressed])}"
              f" finding(s) to {out}")
        return 0

    if args.format == "json":
        print(json.dumps(_to_json(result), indent=2, sort_keys=True))
    else:
        _print_text(result, show_suppressed=args.show_suppressed)
    return result.exit_code


def _default_paths() -> List[str]:
    if os.path.isdir(os.path.join("src", "repro")):
        return [os.path.join("src", "repro")]
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [here] if os.path.isdir(here) else []


def _default_baseline(paths: List[str]) -> Optional[str]:
    """Nearest paxlint.baseline.json at or above the first path."""
    cur = os.path.abspath(paths[0])
    if os.path.isfile(cur):
        cur = os.path.dirname(cur)
    for _ in range(16):
        candidate = os.path.join(cur, DEFAULT_BASELINE)
        if os.path.isfile(candidate):
            return candidate
        nxt = os.path.dirname(cur)
        if nxt == cur:
            break
        cur = nxt
    return None


def _explain(code: str) -> int:
    if code.lower() == "all":
        for rule in all_rules():
            print(f"{rule.code} [{rule.name}] ({rule.kind})")
            print(_indent(rule.rationale))
            print()
        return 0
    try:
        rule = get_rule(code.upper())
    except KeyError as exc:
        print(f"paxlint: {exc}", file=sys.stderr)
        return 2
    print(f"{rule.code} [{rule.name}] ({rule.kind})")
    print(_indent(rule.rationale))
    return 0


def _indent(text: str) -> str:
    return "\n".join(f"  {line}" for line in text.splitlines())


def _print_text(result: LintResult, show_suppressed: bool) -> None:
    for finding in result.active:
        print(finding.render())
    if show_suppressed:
        for finding in result.suppressed:
            print(f"{finding.render()}  [suppressed: "
                  f"{finding.suppress_reason}]")
    active = len(result.active)
    print(f"paxlint: {result.files} file(s), "
          f"{len(result.rules)} rule(s): "
          f"{active} new finding(s), "
          f"{len(result.baselined)} baselined, "
          f"{len(result.suppressed)} suppressed")


def _to_json(result: LintResult) -> dict:
    return {
        "schema": "paxlint-report/1",
        "files": result.files,
        "rules": [r.code for r in result.rules],
        "findings": [f.to_dict() for f in result.findings],
        "counts": {
            "new": len(result.active),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "by_rule": result.counts_by_rule(),
        },
    }
