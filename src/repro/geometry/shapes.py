"""Primitive collision shapes.

Each shape lives in its body's local frame and knows how to produce a
world-space AABB given a transform. ``kind`` is the narrowphase dispatch
tag (kept as a string so new shapes slot in without an enum migration).
"""

from __future__ import annotations

import math

from ..math3d import Transform, Vec3
from .aabb import AABB


class Shape:
    kind = "shape"

    def aabb(self, transform: Transform) -> AABB:
        raise NotImplementedError

    def bounding_radius(self) -> float:
        raise NotImplementedError

    def to_dict(self) -> dict:
        """JSON-native construction record (see ``shape_from_dict``)."""
        raise NotImplementedError


class Sphere(Shape):
    kind = "sphere"
    __slots__ = ("radius",)

    def __init__(self, radius: float):
        if radius <= 0:
            raise ValueError("sphere radius must be positive")
        self.radius = float(radius)

    def __repr__(self):
        return f"Sphere({self.radius})"

    def aabb(self, transform: Transform) -> AABB:
        r = Vec3(self.radius, self.radius, self.radius)
        return AABB.from_center(transform.position, r)

    def bounding_radius(self) -> float:
        return self.radius

    def volume(self) -> float:
        return (4.0 / 3.0) * math.pi * self.radius ** 3

    def to_dict(self) -> dict:
        return {"kind": self.kind, "radius": self.radius}


class Box(Shape):
    kind = "box"
    __slots__ = ("half_extents",)

    def __init__(self, half_extents: Vec3):
        if min(half_extents.x, half_extents.y, half_extents.z) <= 0:
            raise ValueError("box half extents must be positive")
        self.half_extents = half_extents

    @staticmethod
    def from_dimensions(dx: float, dy: float, dz: float) -> "Box":
        """Full edge lengths, like ODE's dBoxCreate."""
        return Box(Vec3(0.5 * dx, 0.5 * dy, 0.5 * dz))

    def __repr__(self):
        h = self.half_extents
        return f"Box(half={h.x}x{h.y}x{h.z})"

    def corners(self):
        h = self.half_extents
        return [
            Vec3(sx * h.x, sy * h.y, sz * h.z)
            for sx in (-1.0, 1.0)
            for sy in (-1.0, 1.0)
            for sz in (-1.0, 1.0)
        ]

    def aabb(self, transform: Transform) -> AABB:
        # Rotate the three half-axes and sum absolute components.
        rot = transform.orientation.to_mat3()
        h = self.half_extents
        ex = (abs(rot[0][0]) * h.x + abs(rot[0][1]) * h.y
              + abs(rot[0][2]) * h.z)
        ey = (abs(rot[1][0]) * h.x + abs(rot[1][1]) * h.y
              + abs(rot[1][2]) * h.z)
        ez = (abs(rot[2][0]) * h.x + abs(rot[2][1]) * h.y
              + abs(rot[2][2]) * h.z)
        return AABB.from_center(transform.position, Vec3(ex, ey, ez))

    def bounding_radius(self) -> float:
        return self.half_extents.length()

    def volume(self) -> float:
        h = self.half_extents
        return 8.0 * h.x * h.y * h.z

    def to_dict(self) -> dict:
        h = self.half_extents
        return {"kind": self.kind, "half_extents": [h.x, h.y, h.z]}


class Capsule(Shape):
    """Capsule along the local y axis (cylinder of ``length`` + caps)."""

    kind = "capsule"
    __slots__ = ("radius", "length")

    def __init__(self, radius: float, length: float):
        if radius <= 0 or length < 0:
            raise ValueError("bad capsule dimensions")
        self.radius = float(radius)
        self.length = float(length)

    def __repr__(self):
        return f"Capsule(r={self.radius}, l={self.length})"

    def endpoints(self, transform: Transform):
        half = Vec3(0, 0.5 * self.length, 0)
        return (transform.apply(half), transform.apply(-half))

    def aabb(self, transform: Transform) -> AABB:
        a, b = self.endpoints(transform)
        r = Vec3(self.radius, self.radius, self.radius)
        return AABB(
            Vec3(min(a.x, b.x), min(a.y, b.y), min(a.z, b.z)) - r,
            Vec3(max(a.x, b.x), max(a.y, b.y), max(a.z, b.z)) + r,
        )

    def bounding_radius(self) -> float:
        return 0.5 * self.length + self.radius

    def to_dict(self) -> dict:
        return {"kind": self.kind, "radius": self.radius,
                "length": self.length}


class Plane(Shape):
    """Infinite static half-space: points with normal.p <= offset are
    inside the solid."""

    kind = "plane"
    __slots__ = ("normal", "offset")

    def __init__(self, normal: Vec3, offset: float = 0.0):
        self.normal = normal.normalized()
        self.offset = float(offset)

    def __repr__(self):
        return f"Plane(n={self.normal!r}, d={self.offset})"

    def signed_distance(self, p: Vec3) -> float:
        return self.normal.dot(p) - self.offset

    def aabb(self, transform: Transform) -> AABB:
        # Planes are infinite; the broadphase treats them as everything.
        return AABB.everything()

    def bounding_radius(self) -> float:
        return float("inf")

    def to_dict(self) -> dict:
        n = self.normal
        return {"kind": self.kind, "normal": [n.x, n.y, n.z],
                "offset": self.offset}


class Heightfield(Shape):
    """Square static heightfield centered at the origin of its geom.

    ``heights`` is a (n+1)x(n+1) row-major grid of y values covering
    [-extent/2, extent/2] in both x and z; queries outside clamp to the
    border (so the terrain effectively extends flat to infinity, which
    keeps cars from falling off the edge of the world).
    """

    kind = "heightfield"
    __slots__ = ("extent", "n", "heights", "_min_h", "_max_h")

    def __init__(self, extent: float, heights):
        self.extent = float(extent)
        self.heights = [[float(v) for v in row] for row in heights]
        self.n = len(self.heights) - 1
        if self.n < 1 or any(len(r) != self.n + 1 for r in self.heights):
            raise ValueError("heights must be a square (n+1)x(n+1) grid")
        flat = [v for row in self.heights for v in row]
        self._min_h = min(flat)
        self._max_h = max(flat)

    def __repr__(self):
        return f"Heightfield(extent={self.extent}, n={self.n})"

    def _cell(self, x: float, z: float):
        half = 0.5 * self.extent
        u = (x + half) / self.extent * self.n
        v = (z + half) / self.extent * self.n
        u = min(max(u, 0.0), float(self.n) - 1e-9)
        v = min(max(v, 0.0), float(self.n) - 1e-9)
        i, j = int(u), int(v)
        return i, j, u - i, v - j

    def height_at(self, x: float, z: float) -> float:
        """Bilinear height sample in the heightfield's local frame."""
        i, j, fu, fv = self._cell(x, z)
        h = self.heights
        h00 = h[j][i]
        h10 = h[j][i + 1]
        h01 = h[j + 1][i]
        h11 = h[j + 1][i + 1]
        return (h00 * (1 - fu) * (1 - fv) + h10 * fu * (1 - fv)
                + h01 * (1 - fu) * fv + h11 * fu * fv)

    def normal_at(self, x: float, z: float) -> Vec3:
        eps = max(1e-3, self.extent / (self.n * 8.0))
        dhdx = (self.height_at(x + eps, z) - self.height_at(x - eps, z)) \
            / (2 * eps)
        dhdz = (self.height_at(x, z + eps) - self.height_at(x, z - eps)) \
            / (2 * eps)
        return Vec3(-dhdx, 1.0, -dhdz).normalized()

    def aabb(self, transform: Transform) -> AABB:
        # Clamped-border semantics make it infinite in x/z; bound y so
        # airborne objects above the peaks generate no pairs.
        p = transform.position
        return AABB(
            Vec3(-1e9, -1e9, -1e9),
            Vec3(1e9, p.y + self._max_h, 1e9),
        )

    def bounding_radius(self) -> float:
        return float("inf")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "extent": self.extent,
                "heights": [row[:] for row in self.heights]}


def shape_from_dict(data: dict) -> Shape:
    """Rebuild a shape from its ``to_dict`` construction record.

    This is the geometry half of the snapshot wire format: a restored
    world must be able to *reconstruct* geoms that were spawned after
    the original scene build (cannon shells, debris), not just overwrite
    their dynamic state.
    """
    kind = data.get("kind")
    if kind == "sphere":
        return Sphere(data["radius"])
    if kind == "box":
        return Box(Vec3(*data["half_extents"]))
    if kind == "capsule":
        return Capsule(data["radius"], data["length"])
    if kind == "plane":
        return Plane(Vec3(*data["normal"]), data["offset"])
    if kind == "heightfield":
        return Heightfield(data["extent"], data["heights"])
    raise ValueError(f"unknown shape kind {kind!r}")
