"""Axis-aligned bounding box."""

from __future__ import annotations

from ..math3d import Vec3


class AABB:
    __slots__ = ("min", "max")

    def __init__(self, lo: Vec3, hi: Vec3):
        self.min = lo
        self.max = hi

    @staticmethod
    def from_center(center: Vec3, half: Vec3) -> "AABB":
        return AABB(center - half, center + half)

    @staticmethod
    def everything(bound: float = 1e9) -> "AABB":
        return AABB(Vec3(-bound, -bound, -bound), Vec3(bound, bound, bound))

    def __repr__(self):
        return f"AABB({self.min!r}, {self.max!r})"

    def overlaps(self, o: "AABB") -> bool:
        return (
            self.min.x <= o.max.x and o.min.x <= self.max.x
            and self.min.y <= o.max.y and o.min.y <= self.max.y
            and self.min.z <= o.max.z and o.min.z <= self.max.z
        )

    def contains_point(self, p: Vec3) -> bool:
        return (
            self.min.x <= p.x <= self.max.x
            and self.min.y <= p.y <= self.max.y
            and self.min.z <= p.z <= self.max.z
        )

    def merged(self, o: "AABB") -> "AABB":
        return AABB(
            Vec3(min(self.min.x, o.min.x), min(self.min.y, o.min.y),
                 min(self.min.z, o.min.z)),
            Vec3(max(self.max.x, o.max.x), max(self.max.y, o.max.y),
                 max(self.max.z, o.max.z)),
        )

    def expanded(self, margin: float) -> "AABB":
        m = Vec3(margin, margin, margin)
        return AABB(self.min - m, self.max + m)

    def center(self) -> Vec3:
        return (self.min + self.max) * 0.5

    def extents(self) -> Vec3:
        return self.max - self.min
