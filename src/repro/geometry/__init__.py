"""Collision shapes and axis-aligned bounding boxes."""

from .aabb import AABB
from .shapes import (Box, Capsule, Heightfield, Plane, Shape, Sphere,
                     shape_from_dict)

__all__ = ["AABB", "Shape", "Sphere", "Box", "Capsule", "Plane",
           "Heightfield", "shape_from_dict"]
