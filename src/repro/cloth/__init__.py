"""Jakobsen position-based cloth (Verlet + averaged-Jacobi relaxation).

The paper's Deformable benchmark uses exactly this formulation: Verlet
integration, iterative distance-constraint relaxation over structural /
shear / bend links, and collision handled by projecting vertices out of
rigid bodies. Vertices are stored in a numpy array so the per-vertex
work vectorizes (the FG-parallel Cloth phase of Fig. 1).
"""

from __future__ import annotations

import numpy as np

from ..math3d import Vec3


class Cloth:
    """Rectangular nx-by-ny cloth hung vertically from ``origin``.

    Vertex (i, j) starts at ``origin + (i*spacing, -j*spacing, 0)`` —
    a curtain in the xy plane; ``pin_top_row`` freezes row j=0 (the
    highest), so drapes hang and fall naturally under gravity.
    """

    ITERATIONS = 8
    DAMPING = 0.985
    GROUND_FRICTION = 0.6

    def __init__(self, nx: int, ny: int, spacing: float, origin: Vec3,
                 pin_top_row: bool = False):
        if nx < 2 or ny < 2:
            raise ValueError("cloth needs at least a 2x2 grid")
        self.nx = nx
        self.ny = ny
        self.spacing = float(spacing)
        self.origin = origin

        pos = np.zeros((nx * ny, 3), dtype=np.float64)
        for j in range(ny):
            for i in range(nx):
                pos[j * nx + i] = (
                    origin.x + i * spacing,
                    origin.y - j * spacing,
                    origin.z,
                )
        self.positions = pos
        self.prev_positions = pos.copy()
        self.pinned = np.zeros(nx * ny, dtype=bool)
        if pin_top_row:
            self.pinned[:nx] = True

        self._build_constraints()
        self.ground_height = None  # y of an infinite floor, or None
        self.contact_bodies = set()
        self.projection_count = 0

    # -- topology -------------------------------------------------------
    def _vid(self, i: int, j: int) -> int:
        return j * self.nx + i

    def _build_constraints(self):
        links = []

        def add(i0, j0, i1, j1, kind):
            a, b = self._vid(i0, j0), self._vid(i1, j1)
            rest = self.spacing * (
                1.0 if kind == "structural"
                else (2.0 ** 0.5 if kind == "shear" else 2.0))
            links.append((a, b, rest))

        for j in range(self.ny):
            for i in range(self.nx):
                if i + 1 < self.nx:
                    add(i, j, i + 1, j, "structural")
                if j + 1 < self.ny:
                    add(i, j, i, j + 1, "structural")
                if i + 1 < self.nx and j + 1 < self.ny:
                    add(i, j, i + 1, j + 1, "shear")
                    add(i + 1, j, i, j + 1, "shear")
                if i + 2 < self.nx:
                    add(i, j, i + 2, j, "bend")
                if j + 2 < self.ny:
                    add(i, j, i, j + 2, "bend")

        self._ci = np.array([l[0] for l in links], dtype=np.int64)
        self._cj = np.array([l[1] for l in links], dtype=np.int64)
        self._rest = np.array([l[2] for l in links], dtype=np.float64)
        # Per-vertex constraint degree: Jacobi corrections are averaged
        # by it so heavily-linked vertices don't overshoot and oscillate.
        degree = np.zeros(self.nx * self.ny, dtype=np.float64)
        np.add.at(degree, self._ci, 1.0)
        np.add.at(degree, self._cj, 1.0)
        self._inv_degree = (1.0 / np.maximum(degree, 1.0))[:, None]

    @property
    def num_vertices(self) -> int:
        return self.nx * self.ny

    @property
    def num_constraints(self) -> int:
        return len(self._rest)

    def pin(self, i: int, j: int):
        self.pinned[self._vid(i, j)] = True

    # -- checkpointing --------------------------------------------------
    def snapshot_state(self) -> dict:
        """Vertex state as JSON-native data; ``tolist`` round-trips
        float64 exactly, so restore is bit-identical."""
        return {
            "positions": self.positions.tolist(),
            "prev_positions": self.prev_positions.tolist(),
        }

    def restore_state(self, state: dict):
        self.positions = np.array(state["positions"], dtype=np.float64)
        self.prev_positions = np.array(state["prev_positions"],
                                       dtype=np.float64)
        return self

    def max_stretch(self) -> float:
        """Worst constraint-length error as a fraction of rest length."""
        d = self.positions[self._cj] - self.positions[self._ci]
        lengths = np.sqrt((d * d).sum(axis=1))
        return float(np.abs(lengths - self._rest).max() / self.spacing)

    # -- simulation -----------------------------------------------------
    def step(self, dt: float, gravity: Vec3, colliders=()):
        """One Verlet step + relaxation + collision projection.

        ``colliders`` is an iterable of geoms (sphere/box) to push the
        cloth out of. Returns the phase stats dict the world's frame
        report accumulates.
        """
        pos = self.positions
        prev = self.prev_positions
        g = np.array([gravity.x, gravity.y, gravity.z])

        velocity = (pos - prev) * self.DAMPING
        new_pos = pos + velocity + g * (dt * dt)
        new_pos[self.pinned] = pos[self.pinned]
        self.prev_positions = pos
        self.positions = new_pos

        for _ in range(self.ITERATIONS):
            self._relax_once()

        self.projection_count = 0
        self.contact_bodies = set()
        for geom in colliders:
            self._project_out_of(geom)
        if self.ground_height is not None:
            self._project_ground()

        return {
            "vertices": self.num_vertices,
            "constraints": self.num_constraints,
            "constraint_updates": self.ITERATIONS * self.num_constraints,
            "projections": self.projection_count,
            "contacts": len(self.contact_bodies),
        }

    def _relax_once(self):
        pos = self.positions
        d = pos[self._cj] - pos[self._ci]
        lengths = np.sqrt((d * d).sum(axis=1))
        np.maximum(lengths, 1e-12, out=lengths)
        # Half the error to each endpoint (Jacobi-averaged Jakobsen).
        corr = (d.T * ((lengths - self._rest) / lengths * 0.5)).T
        delta = np.zeros_like(pos)
        np.add.at(delta, self._ci, corr)
        np.add.at(delta, self._cj, -corr)
        delta[self.pinned] = 0.0
        pos += delta * self._inv_degree

    def _project_ground(self):
        pos = self.positions
        below = pos[:, 1] < self.ground_height
        if below.any():
            # Clamp to the floor and bleed off tangential motion.
            prev = self.prev_positions
            pos[below, 1] = self.ground_height
            slide = pos[below] - prev[below]
            prev[below] = pos[below] - slide * (1.0 - self.GROUND_FRICTION)
            self.projection_count += int(below.sum())

    def _project_out_of(self, geom):
        kind = geom.shape.kind
        if kind == "sphere":
            self._project_sphere(geom)
        elif kind == "box":
            self._project_box(geom)

    def _project_sphere(self, geom):
        c = geom.transform.position
        r = geom.shape.radius + 0.01
        pos = self.positions
        d = pos - np.array([c.x, c.y, c.z])
        dist = np.sqrt((d * d).sum(axis=1))
        inside = dist < r
        if inside.any():
            safe = np.maximum(dist[inside], 1e-9)
            pos[inside] += (d[inside].T * ((r - safe) / safe)).T
            self.projection_count += int(inside.sum())
            if geom.body is not None:
                self.contact_bodies.add(geom.body)

    def _project_box(self, geom):
        tf = geom.transform
        h = geom.shape.half_extents
        margin = 0.01
        pos = self.positions
        # Work in box-local coordinates (vectorized via the rotation
        # matrix rather than per-vertex quaternion rotates).
        rot = tf.orientation.to_mat3()
        r = np.array(rot.m)
        center = np.array([tf.position.x, tf.position.y, tf.position.z])
        local = (pos - center) @ r  # R^T applied row-wise
        half = np.array([h.x + margin, h.y + margin, h.z + margin])
        inside = (np.abs(local) < half).all(axis=1)
        if not inside.any():
            return
        li = local[inside]
        # Push each inside vertex out through its nearest face.
        gaps = half - np.abs(li)
        axis = gaps.argmin(axis=1)
        rows = np.arange(len(li))
        sign = np.where(li[rows, axis] >= 0.0, 1.0, -1.0)
        li[rows, axis] = sign * half[axis]
        local[inside] = li
        pos[inside] = local[inside] @ r.T + center
        self.projection_count += int(inside.sum())
        if geom.body is not None:
            self.contact_bodies.add(geom.body)


__all__ = ["Cloth"]
