"""Run the feature-ablation matrix and emit ``BENCH_10.json``.

    PYTHONPATH=src python -m repro.ablation \\
        --features all --workloads table3 --scale 0.03

``--features`` takes a comma-separated subset of the registry (or
``all``); ``--workloads`` takes Table 3 benchmark names (or
``table3``/``all``).  ``--pairwise`` adds the two-feature interaction
cells.  ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_FRAMES`` provide the
defaults CI uses.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .features import default_registry
from .runner import AblationConfig, AblationRunner, make_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.ablation", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--features", default="all",
                        help="comma-separated feature names, or 'all'")
    parser.add_argument("--workloads", default="table3",
                        help="comma-separated Table 3 workloads, or "
                             "'table3'/'all'")
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get(
                            "REPRO_BENCH_SCALE", "0.03")))
    parser.add_argument("--frames", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_FRAMES", "4")))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: min(4, cores))")
    parser.add_argument("--batch-n", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_BATCH", "4")),
                        help="worlds packed per BatchWorld cell")
    parser.add_argument("--repeats", type=int, default=2,
                        help="simulate each cell N times, keep the "
                             "fastest sample (non-timing metrics are "
                             "identical across repeats)")
    parser.add_argument("--pairwise", action="store_true",
                        help="add two-feature interaction cells")
    parser.add_argument("--list", action="store_true",
                        help="list registered features and exit")
    parser.add_argument("--out", default="BENCH_10.json")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    registry = default_registry()
    if args.list:
        for feature in registry:
            state = "on" if feature.default_on else "off"
            print(f"{feature.name:16s} [{feature.kind}, default {state}]"
                  f" {feature.description}")
        return 0

    config = AblationConfig(
        features=args.features, workloads=args.workloads,
        scale=args.scale, frames=args.frames, seed=args.seed,
        jobs=args.jobs, batch_worlds=args.batch_n,
        pairwise=args.pairwise, repeats=args.repeats)
    runner = AblationRunner(config, registry)
    payload = runner.run(progress=lambda msg: print(f"# {msg}",
                                                    flush=True))
    report = make_report(payload)

    for name, feature in sorted(payload["features"].items()):
        summary = feature["summary"]
        print(f"{name:16s} dfps {summary['mean_delta_fps_pct']:+7.1f}% "
              f"drows {summary['mean_delta_row_updates_pct']:+7.1f}% "
              f"digest {summary['digest_changed_workloads']}/"
              f"{summary['workloads']} "
              f"importance {summary['importance']:.3f} "
              f"{'OK' if summary['all_validate_ok'] else 'INVALID'}")

    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0 if all(f["summary"]["all_validate_ok"]
                    for f in payload["features"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
