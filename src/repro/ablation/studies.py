"""Focused single-mechanism ablation scenes.

These are the four original ad-hoc ablation studies (warm starting,
auto-sleep, CCD, broadphase strategy), extracted from the benchmark
harness so that both ``python -m repro.analysis`` (which regenerates
``results/ablation_*.txt``) and ``benchmarks/test_ablations.py`` (which
asserts each mechanism is load-bearing) drive one implementation.

Unlike the :class:`~repro.ablation.runner.AblationRunner` matrix —
which toggles features on the Table 3 workloads and scores importance —
each study here uses a purpose-built scene that isolates its mechanism
(a box stack for warm starting, a quiescent grid for sleep, a bullet
vs a thin wall for CCD).  Output text is byte-compatible with the
historical scripts.  Every study is scale-independent and returns
``(rows, text)``.
"""

from __future__ import annotations

import random

from ..analysis.tables import format_table
from ..collision import (
    BruteForceBroadphase,
    SpatialHashBroadphase,
    SweepAndPrune,
)
from ..collision.geom import Geom
from ..dynamics import Body
from ..engine import World, WorldConfig
from ..geometry import Box, Plane, Sphere
from ..math3d import Transform, Vec3

__all__ = ["warmstart_study", "autosleep_study", "ccd_study",
           "broadphase_study", "STUDIES"]


def _ground(**cfg):
    w = World(WorldConfig(**cfg))
    w.add_static_geom(Plane(Vec3(0, 1, 0), 0.0))
    return w


def _stack_error(warm, iterations, steps=200, height=6):
    w = _ground(warm_starting=warm, solver_iterations=iterations)
    boxes = []
    for i in range(height):
        b = Body(position=Vec3(0, 0.5 + 1.001 * i, 0))
        w.attach(b, Box.from_dimensions(1, 1, 1))
        boxes.append(b)
    for _ in range(steps):
        w.step()
    return max(abs(b.position.y - (0.5 + i))
               for i, b in enumerate(boxes))


def warmstart_study():
    """Stack drift with vs without contact warm starting."""
    rows = []
    for iters in (4, 8, 20):
        cold = _stack_error(False, iters)
        warm = _stack_error(True, iters)
        rows.append((iters, f"{cold:.3f}", f"{warm:.3f}"))
    text = format_table(
        ("solver iterations", "cold-start error (m)",
         "warm-start error (m)"),
        rows, "ablation — contact warm starting vs stack drift",
    )
    return rows, text


def _autosleep_updates(auto_sleep):
    w = _ground(auto_sleep=auto_sleep)
    for i in range(12):
        b = Body(position=Vec3((i % 4) * 1.2, 0.5, (i // 4) * 1.2))
        w.attach(b, Box.from_dimensions(1, 1, 1))
    total_updates = 0
    for _ in range(100):
        w.report = None
        rep = w.step_frame()
        total_updates += rep["island_processing"].get("row_updates")
    return total_updates


def autosleep_study():
    """Solver row updates on a quiescent scene, awake vs auto-sleep."""
    awake = _autosleep_updates(False)
    asleep = _autosleep_updates(True)
    rows = [("always awake", int(awake)), ("auto-sleep", int(asleep))]
    text = format_table(
        ("config", "solver row updates (100 frames)"),
        rows, "ablation — auto-sleep solver work on a quiescent scene",
    )
    return rows, text


def _tunnel_test(speed, use_ccd):
    w = World(WorldConfig(gravity=Vec3.zero(), ccd=use_ccd))
    w.add_static_geom(
        Box(Vec3(0.1, 2.0, 2.0)), offset=Transform(Vec3(5.0, 2.0, 0))
    )
    bullet = Body(position=Vec3(0, 2.0, 0))
    w.attach(bullet, Sphere(0.2), density=8000.0)
    bullet.linear_velocity = Vec3(speed, 0, 0)
    for _ in range(40):
        w.step()
    return bullet.position.x < 5.0  # stopped by the wall?


def ccd_study():
    """Tunneling vs projectile speed with and without the swept test."""
    rows = []
    # 144/288 m/s step exactly over the wall's 0.6m collision window
    # at discrete 0.01s sampling; 30 m/s cannot skip it.
    for speed in (30.0, 144.0, 288.0):
        rows.append(
            (
                f"{speed:.0f} m/s",
                "stopped" if _tunnel_test(speed, False) else "TUNNELED",
                "stopped" if _tunnel_test(speed, True) else "TUNNELED",
            )
        )
    text = format_table(
        ("projectile speed", "without CCD", "with CCD"),
        rows, "ablation — continuous collision detection",
    )
    return rows, text


def broadphase_study():
    """AABB-test counts of the three broadphase strategies."""
    rng = random.Random(5)
    geoms = []
    for _ in range(300):
        b = Body(
            position=Vec3(
                rng.uniform(-25, 25), rng.uniform(0, 8),
                rng.uniform(-25, 25)
            )
        )
        b.set_mass_from_shape(Sphere(0.5), 1.0)
        geoms.append(Geom(Sphere(0.5), body=b))

    rows = []
    oracle = None
    for name, bp in (
        ("brute-force", BruteForceBroadphase()),
        ("sweep-and-prune", SweepAndPrune()),
        ("spatial-hash", SpatialHashBroadphase(cell_size=2.0)),
    ):
        pairs = bp.pairs(geoms)
        found = {(a.gid, b.gid) for a, b in pairs}
        if oracle is None:
            oracle = found
        elif found != oracle:
            raise AssertionError(
                f"{name} disagrees with the brute-force oracle")
        rows.append((name, bp.last_stats["tests"], len(pairs)))
    text = format_table(
        ("strategy", "AABB tests", "pairs"),
        rows, "ablation — broadphase strategies (300 spheres)",
    )
    return rows, text


#: name (matches the results/<name>.txt artifact) -> study callable.
STUDIES = {
    "ablation_warmstart": warmstart_study,
    "ablation_autosleep": autosleep_study,
    "ablation_ccd": ccd_study,
    "ablation_broadphase": broadphase_study,
}
