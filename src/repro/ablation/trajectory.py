"""The committed bench trajectory and its per-metric tolerance bands.

``results/bench/trajectory.json`` pins, per metric, the value a fresh
smoke run must reproduce and the band it must stay inside.  Deterministic
quantities (lint finding counts, migration divergence, trajectory
digests, solver row-update counters, modeled-FPS numbers derived from
recorded touch traces) are gated **exactly**; wall-clock throughput gets
a relative band (default: no worse than −15%, the smoke-scale budget
from the CI contract).

Schema (``repro-bench-trajectory/1``)::

    {"schema": "...", "settings": {...}, "metrics": [
        {"id": "lint.new_findings", "source": "BENCH_8.json",
         "path": "lint.new_findings", "value": 0,
         "tolerance": {"kind": "exact"}},
        ...]}

Tolerance kinds:

``exact``             value must compare equal (``==``).
``rel``               ``min_ratio <= fresh/expected <= max_ratio``
                      (either bound optional).
``abs``               ``|fresh - expected| <= max_delta``.
``min`` / ``max``     fresh bounded below / above by ``value``
                      (the committed value is the bound itself).

``check_directory`` locates each metric's source file anywhere under
the checked directory (CI artifacts flatten paths unpredictably), so a
*missing* source is a hard failure — a deleted emission step cannot
silently pass the gate.
"""

from __future__ import annotations

import json
import os

__all__ = ["SCHEMA", "MetricResult", "load", "save",
           "check_directory", "build_trajectory"]

SCHEMA = "repro-bench-trajectory/1"

#: Wall-clock fps must stay within -15% of the committed value
#: (ISSUE-10 CI contract; bands are data — edit the trajectory to
#: retune).
FPS_MIN_RATIO = 0.85
#: Per-feature importance is fps-derived, so it gets an absolute band
#: (importance is a fraction; +/-0.35 tolerates smoke-scale noise while
#: catching order-of-magnitude regressions).  Large importances (the
#: numpy fast path sits near 1.2) scale proportionally: the band is
#: ``max(IMPORTANCE_MAX_DELTA, IMPORTANCE_REL_FRACTION * value)``.
IMPORTANCE_MAX_DELTA = 0.35
IMPORTANCE_REL_FRACTION = 0.5
#: Committed geomean backend speedups are floors scaled by this factor
#: (a 2.7x speedup gates at >= 1.35x on a noisy runner).
SPEEDUP_FLOOR_FACTOR = 0.5


class MetricResult:
    """Outcome of checking one trajectory metric."""

    def __init__(self, metric: dict, ok: bool, fresh, detail: str):
        self.metric = metric
        self.ok = ok
        self.fresh = fresh
        self.detail = detail

    @property
    def id(self) -> str:
        return self.metric["id"]

    def __repr__(self):
        status = "PASS" if self.ok else "FAIL"
        return f"MetricResult({self.id!r}, {status})"


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, "
            f"got {doc.get('schema')!r}")
    return doc


def save(doc: dict, path: str):
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def extract(doc, path: str):
    """Walk a dotted ``path`` through nested dicts; KeyError if absent."""
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(path)
        node = node[part]
    return node


def _compare(tolerance: dict, expected, fresh):
    """(ok, detail) for one metric under its tolerance band."""
    kind = tolerance.get("kind", "exact")
    if kind == "exact":
        ok = fresh == expected
        return ok, f"{fresh!r} {'==' if ok else '!='} {expected!r}"
    if kind == "rel":
        if not expected:
            return False, f"rel band undefined for expected={expected!r}"
        ratio = fresh / expected
        lo = tolerance.get("min_ratio")
        hi = tolerance.get("max_ratio")
        ok = ((lo is None or ratio >= lo)
              and (hi is None or ratio <= hi))
        band = (f"[{lo if lo is not None else '-inf'}, "
                f"{hi if hi is not None else 'inf'}]")
        return ok, f"ratio {ratio:.4f} vs {band} (expected {expected:g})"
    if kind == "abs":
        delta = abs(fresh - expected)
        limit = tolerance["max_delta"]
        return delta <= limit, (f"|delta| {delta:.4f} <= {limit:g} "
                                f"(expected {expected:g})")
    if kind == "min":
        return fresh >= expected, f"{fresh:g} >= floor {expected:g}"
    if kind == "max":
        return fresh <= expected, f"{fresh:g} <= ceiling {expected:g}"
    return False, f"unknown tolerance kind {kind!r}"


def _locate_sources(directory: str) -> dict:
    """filename -> path for every .json under ``directory`` (sorted
    walk; the first match wins, so layout quirks are deterministic)."""
    found = {}
    for dirpath, dirnames, filenames in os.walk(directory):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".json") and name not in found:
                found[name] = os.path.join(dirpath, name)
    return found


def check_directory(trajectory: dict, directory: str):
    """Check every trajectory metric against fresh files in
    ``directory``; returns a list of :class:`MetricResult`."""
    sources = _locate_sources(directory)
    docs = {}
    results = []
    for metric in trajectory.get("metrics", []):
        source = metric["source"]
        if source not in docs:
            path = sources.get(source)
            if path is None:
                results.append(MetricResult(
                    metric, False, None,
                    f"source file {source} missing from {directory}"))
                continue
            with open(path, encoding="utf-8") as fh:
                docs[source] = json.load(fh)
        try:
            fresh = extract(docs[source], metric["path"])
        except KeyError:
            results.append(MetricResult(
                metric, False, None,
                f"path {metric['path']!r} missing from {source}"))
            continue
        ok, detail = _compare(metric["tolerance"], metric["value"],
                              fresh)
        results.append(MetricResult(metric, ok, fresh, detail))
    return results


# ---------------------------------------------------------------------------
# trajectory construction (the band policy, in one place)


def _metric(id_, source, path, value, tolerance) -> dict:
    return {"id": id_, "source": source, "path": path, "value": value,
            "tolerance": tolerance}


def _lint_metrics(doc) -> list:
    src = "BENCH_8.json"
    out = []
    for field in ("new_findings", "baselined_findings", "exit_code"):
        out.append(_metric(
            f"lint.{field}", src, f"lint.{field}",
            extract(doc, f"lint.{field}"), {"kind": "exact"}))
    return out


def _serve_metrics(doc) -> list:
    src = "BENCH_9.json"
    # ``repro.serve.loadtest --out`` writes the raw report; the
    # ``perf_report.py --serve`` envelope nests it under ``serve``.
    prefix = "serve." if "serve" in doc else ""
    out = []
    for field, tolerance in (
            ("migration.divergence", {"kind": "exact"}),
            ("migration.verified", {"kind": "exact"})):
        path = prefix + field
        out.append(_metric(
            f"serve.{field}", src, path, extract(doc, path), tolerance))
    return out


def _backend_metrics(doc) -> list:
    src = "BENCH_6.json"
    out = []
    for field in ("geomean_numpy_speedup", "geomean_batch_speedup"):
        value = extract(doc, f"comparison.{field}")
        out.append(_metric(
            f"backend.{field}", src, f"comparison.{field}",
            value * SPEEDUP_FLOOR_FACTOR, {"kind": "min"}))
    return out


def _ablation_metrics(doc) -> list:
    src = "BENCH_10.json"
    out = []
    ablation = extract(doc, "ablation")
    for workload, metrics in sorted(ablation["baseline"].items()):
        out.append(_metric(
            f"ablation.baseline.{workload}.fps", src,
            f"ablation.baseline.{workload}.fps", metrics["fps"],
            {"kind": "rel", "min_ratio": FPS_MIN_RATIO}))
    for name, feature in sorted(ablation["features"].items()):
        base = f"ablation.features.{name}"
        for workload, cell in sorted(feature["workloads"].items()):
            wbase = f"{base}.workloads.{workload}"
            out.append(_metric(
                f"{wbase}.validate_ok", src, f"{wbase}.validate_ok",
                cell["validate_ok"], {"kind": "exact"}))
            out.append(_metric(
                f"{wbase}.digest_changed", src,
                f"{wbase}.digest_changed", cell["digest_changed"],
                {"kind": "exact"}))
            out.append(_metric(
                f"{wbase}.delta_row_updates_pct", src,
                f"{wbase}.delta_row_updates_pct",
                cell["delta_row_updates_pct"], {"kind": "exact"}))
            if feature["kind"] == "arch":
                # Modeled FPS is computed from deterministic counters
                # and touch traces — gate it exactly.
                out.append(_metric(
                    f"{wbase}.delta_fps_pct", src,
                    f"{wbase}.delta_fps_pct", cell["delta_fps_pct"],
                    {"kind": "exact"}))
        importance = feature["summary"]["importance"]
        out.append(_metric(
            f"{base}.summary.importance", src,
            f"{base}.summary.importance", importance,
            {"kind": "abs", "max_delta": max(
                IMPORTANCE_MAX_DELTA,
                IMPORTANCE_REL_FRACTION * abs(importance))}))
        out.append(_metric(
            f"{base}.summary.all_validate_ok", src,
            f"{base}.summary.all_validate_ok",
            feature["summary"]["all_validate_ok"], {"kind": "exact"}))
    return out


#: filename -> builder; a file absent from the directory is skipped at
#: *build* time (its metrics simply aren't gated) but NOT at check time.
SOURCE_BUILDERS = {
    "BENCH_8.json": _lint_metrics,
    "BENCH_9.json": _serve_metrics,
    "BENCH_6.json": _backend_metrics,
    "BENCH_10.json": _ablation_metrics,
}


def build_trajectory(directory: str, settings: dict = None) -> dict:
    """Derive a trajectory document from the BENCH files present in
    ``directory`` using the band policy above."""
    sources = _locate_sources(directory)
    metrics = []
    used = []
    for filename, builder in SOURCE_BUILDERS.items():
        path = sources.get(filename)
        if path is None:
            continue
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        metrics.extend(builder(doc))
        used.append(filename)
    if not metrics:
        raise FileNotFoundError(
            f"no BENCH files found under {directory}; expected any of "
            f"{', '.join(SOURCE_BUILDERS)}")
    return {
        "schema": SCHEMA,
        "sources": used,
        "settings": dict(settings or {}),
        "metrics": metrics,
    }
