"""Ablation run matrix: generation, parallel execution, importance.

The :class:`AblationRunner` expands a :class:`FeatureRegistry` into the
baseline-plus-one-off run matrix (optionally plus pairwise cells),
executes every *unique* configuration exactly once — the baseline is
shared by most features, so the matrix dedups hard — in parallel via
:mod:`multiprocessing`, and folds the per-run metrics into per-feature
importance scores:

* ``delta_fps_pct`` — wall-throughput change of the toggled state
  (CPU-time based, so parallel workers don't skew each other);
* ``delta_row_updates_pct`` — solver work change (PGS row relaxations
  per frame, a deterministic counter);
* ``digest_changed`` — whether toggling the feature changes the
  trajectory at all (:meth:`repro.api.Session.state_digest`).

Arch-kind features never re-simulate: the baseline run's recorded
frame report is re-priced through :class:`~repro.arch.ParallaxMachine`
variants (paper-partitioned L2, one shared L2, next-4-line prefetch),
so their importance is a modeled-FPS delta computed from the same
deterministic touch trace.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import time

from .features import FeatureRegistry, default_registry

__all__ = ["AblationConfig", "AblationRunner", "SCHEMA",
           "TABLE3_WORKLOADS", "make_report"]

SCHEMA = "repro-ablation-report/1"

TABLE3_WORKLOADS = ("periodic", "ragdoll", "continuous", "breakable",
                    "deformable", "explosions", "highspeed", "mix")

#: Machine variants priced on every baseline run (arch features diff
#: pairs of these; see Feature.arch_keys).
ARCH_VARIANTS = ("modeled_fps_paper", "modeled_fps_shared_l2",
                 "modeled_fps_prefetch")

PREFETCH_DEPTH = 4
PREFETCH_L2_BYTES = 1024 * 1024


class AblationConfig:
    """What to run: features x workloads at one scale/frames/seed."""

    def __init__(self, features="all", workloads="table3",
                 scale: float = 0.03, frames: int = 4, seed: int = 0,
                 measure_from: int = None, jobs: int = None,
                 batch_worlds: int = 4, pairwise: bool = False,
                 repeats: int = 2):
        self.features = features
        self.workloads = self._resolve_workloads(workloads)
        self.scale = float(scale)
        self.frames = int(frames)
        self.seed = int(seed)
        self.measure_from = (max(0, self.frames - 2)
                             if measure_from is None else measure_from)
        self.jobs = jobs
        self.batch_worlds = int(batch_worlds)
        self.pairwise = bool(pairwise)
        #: Each configuration simulates ``repeats`` times and keeps the
        #: fastest sample: fps feeds a lower-bound perf gate, so the
        #: slow-outlier tail is what must be suppressed.  Deterministic
        #: metrics are identical across repeats by construction.
        self.repeats = max(1, int(repeats))

    @staticmethod
    def _resolve_workloads(workloads):
        if workloads in (None, "all", "table3"):
            return list(TABLE3_WORKLOADS)
        if isinstance(workloads, str):
            workloads = [w.strip() for w in workloads.split(",")
                         if w.strip()]
        unknown = set(workloads) - set(TABLE3_WORKLOADS)
        if unknown:
            raise ValueError(
                f"unknown workloads: {sorted(unknown)}; choose from "
                f"{', '.join(TABLE3_WORKLOADS)}")
        return list(workloads)

    def resolved_jobs(self) -> int:
        if self.jobs:
            return max(1, int(self.jobs))
        return max(1, min(4, os.cpu_count() or 1))


# ---------------------------------------------------------------------------
# request execution (multiprocessing workers import this module)


def _request_key(request: dict) -> str:
    return json.dumps(request, sort_keys=True)


def _prefetch_coverage(measured) -> dict:
    """phase -> fraction of L2 misses a next-N-line prefetcher covers,
    measured by replaying the recorded touch trace through an exact
    :class:`~repro.arch.cache.CacheSim` with and without prefetch."""
    from ..arch.cache import CacheSim
    from ..profiling import memtrace
    from ..profiling.report import PHASES

    coverage = {}
    for phase in PHASES:
        blocks = [b for b, _p, _w in memtrace.expand(measured, (phase,))]
        if not blocks:
            continue
        base = CacheSim(PREFETCH_L2_BYTES).run(blocks)
        if base.misses <= 0:
            continue
        pf = CacheSim(PREFETCH_L2_BYTES,
                      prefetch_depth=PREFETCH_DEPTH).run(blocks)
        coverage[phase] = max(
            0.0, (base.misses - pf.misses) / base.misses)
    return coverage


def _arch_variants(measured) -> dict:
    """Modeled FPS of the baseline report under the machine variants."""
    from ..arch import L2Partitioning, ParallaxConfig, ParallaxMachine

    mb = 1024 * 1024
    paper = ParallaxMachine(ParallaxConfig(
        cg_cores=4, l2=L2Partitioning.paper_scheme()))
    shared = ParallaxMachine(ParallaxConfig(
        cg_cores=4, l2=L2Partitioning.shared(12 * mb)))
    coverage = _prefetch_coverage(measured)
    prefetch = ParallaxMachine(ParallaxConfig(
        cg_cores=4, l2=L2Partitioning.paper_scheme(),
        prefetch_coverage=coverage))
    return {
        "modeled_fps_paper": 1.0 / paper.frame_seconds(
            measured, threads=4),
        "modeled_fps_shared_l2": 1.0 / shared.frame_seconds(
            measured, threads=4),
        "modeled_fps_prefetch": 1.0 / prefetch.frame_seconds(
            measured, threads=4),
        "prefetch_coverage": coverage,
    }


def _session_metrics(session, reports, measure_from, frames,
                     sim_seconds, worlds_per_frame=1):
    from ..profiling import mean_report
    from ..workloads import validate_world

    measured = mean_report(reports[measure_from:])
    world = session.world
    vreport = validate_world(world, health=session.health)
    world_frames = frames * worlds_per_frame
    fps = world_frames / sim_seconds if sim_seconds > 0 else 0.0
    metrics = {
        "fps": fps,
        "ms_per_world_frame": (sim_seconds / world_frames * 1e3
                               if world_frames else 0.0),
        "sim_cpu_seconds": sim_seconds,
        "row_updates": measured["island_processing"].get(
            "row_updates", 0.0),
        "broadphase_pairs": measured["broadphase"].get("pairs", 0.0),
        "narrowphase_contacts": measured["narrowphase"].get(
            "contacts", 0.0),
        "digest": session.state_digest(),
        "validate_ok": vreport.ok,
        "validate": vreport.summary(),
        "sleeping": sum(1 for b in world.bodies if b.sleeping),
        "culled": world.culled,
        "watchdog_events": (len(session.health)
                            if session.health is not None else 0),
    }
    return metrics, measured


def _execute_once(request: dict) -> dict:
    from ..api import Session, SessionGroup, SessionSpec

    spec = SessionSpec.from_dict(request["spec"])
    frames = request["frames"]
    measure_from = request["measure_from"]
    batch = request.get("batch", 0)

    t0 = time.perf_counter()
    if batch:
        specs = [spec]
        for k in range(1, batch):
            data = spec.to_dict()
            data["seed"] = spec.seed + k
            specs.append(SessionSpec.from_dict(data))
        sessions = [Session.create(s) for s in specs]
        group = SessionGroup(sessions)
        build_seconds = time.perf_counter() - t0
        t0 = time.process_time()
        group.step(frames)
        sim_seconds = time.process_time() - t0
        metrics, _measured = _session_metrics(
            sessions[0], sessions[0].reports, measure_from, frames,
            sim_seconds, worlds_per_frame=batch)
    else:
        session = Session.create(spec)
        build_seconds = time.perf_counter() - t0
        t0 = time.process_time()
        reports = session.step(frames)
        sim_seconds = time.process_time() - t0
        metrics, measured = _session_metrics(
            session, reports, measure_from, frames, sim_seconds)
        if request.get("arch"):
            metrics["modeled"] = _arch_variants(measured)
    metrics["build_seconds"] = build_seconds
    return metrics


def execute_request(request: dict) -> dict:
    """Run one configuration and return its plain-dict metrics.

    Top-level so :mod:`multiprocessing` workers can pickle it.  The
    request is self-contained: a resolved ``SessionSpec`` dict plus
    ``frames`` / ``measure_from`` / ``batch`` / ``repeats`` / ``arch``
    flags.  The whole simulation runs ``repeats`` times and the fastest
    sample wins (every non-timing metric is identical across repeats —
    the engine is deterministic per spec).
    """
    best = None
    for _ in range(request.get("repeats", 1)):
        metrics = _execute_once(request)
        if best is None or metrics["fps"] > best["fps"]:
            best = metrics
    return best


# ---------------------------------------------------------------------------
# runner


class AblationRunner:
    """Expand, dedup, execute, and score the ablation matrix."""

    def __init__(self, config: AblationConfig = None,
                 registry: FeatureRegistry = None):
        self.config = config if config is not None else AblationConfig()
        self.registry = (registry if registry is not None
                         else default_registry())
        self.features = self.registry.select(self.config.features)

    # -- matrix ---------------------------------------------------------
    def _spec_dict(self, workload: str, patch: dict) -> dict:
        """The resolved SessionSpec for ``workload`` + ``patch``."""
        from ..api import SessionSpec
        spec = SessionSpec(
            workload, scale=self.config.scale, seed=self.config.seed,
            backend=patch.get("backend", "scalar"),
            config=(dict(patch["config"])
                    if patch.get("config") else None),
            watchdog=bool(patch.get("watchdog", False)))
        return spec.to_dict()

    def _request(self, workload: str, patch: dict) -> dict:
        request = {
            "spec": self._spec_dict(workload, patch),
            "frames": self.config.frames,
            "measure_from": self.config.measure_from,
            "repeats": self.config.repeats,
        }
        batch = patch.get("batch", 0)
        if batch:
            request["batch"] = (self.config.batch_worlds
                                if batch is True else int(batch))
        if not patch or patch == {"config": None}:
            request["arch"] = True
        return request

    @staticmethod
    def _merge_patches(a: dict, b: dict):
        """Merged patch, or ``None`` when the two conflict."""
        merged = {}
        for key in set(a) | set(b):
            if key == "config":
                ca, cb = a.get("config") or {}, b.get("config") or {}
                clash = {f for f in set(ca) & set(cb)
                         if ca[f] != cb[f]}
                if clash:
                    return None
                merged["config"] = {**ca, **cb}
            elif key in a and key in b and a[key] != b[key]:
                return None
            else:
                merged[key] = a.get(key, b.get(key))
        return merged

    def build_matrix(self):
        """Every (cell, request) the run needs; cells share requests.

        Returns ``(cells, requests)`` where ``cells`` maps
        ``(feature, workload, role)`` to a request key and ``requests``
        maps request keys to request dicts (the deduped work list).
        """
        cells = {}
        requests = {}

        def add(feature_name, workload, role, patch):
            request = self._request(workload, patch)
            key = _request_key(request)
            requests.setdefault(key, request)
            cells[(feature_name, workload, role)] = key

        for workload in self.config.workloads:
            add(None, workload, "baseline", {})
        for feature in self.features:
            if feature.kind == "arch":
                continue  # priced off the baseline run
            for workload in self.config.workloads:
                if not feature.applicable(workload):
                    continue
                add(feature.name, workload, "base", feature.base_patch)
                add(feature.name, workload, "toggled", feature.patch)
        if self.config.pairwise:
            for fa, fb, merged in self._pairwise_patches():
                for workload in self.config.workloads:
                    if not (fa.applicable(workload)
                            and fb.applicable(workload)):
                        continue
                    add(f"{fa.name}+{fb.name}", workload, "pair",
                        merged)
        return cells, requests

    def _pairwise_patches(self):
        engine = [f for f in self.features if f.kind == "engine"]
        out = []
        for i, fa in enumerate(engine):
            for fb in engine[i + 1:]:
                merged = self._merge_patches(fa.patch, fb.patch)
                if merged is not None:
                    out.append((fa, fb, merged))
        return out

    # -- execution ------------------------------------------------------
    def run(self, progress=None) -> dict:
        """Execute the matrix; returns the BENCH_10 ``ablation`` payload."""
        cells, requests = self.build_matrix()
        jobs = self.config.resolved_jobs()
        keys = sorted(requests)
        worklist = [requests[k] for k in keys]
        if progress:
            progress(f"ablation: {len(cells)} cells -> "
                     f"{len(worklist)} unique runs on {jobs} process(es)")
        t0 = time.perf_counter()
        if jobs > 1 and len(worklist) > 1:
            with multiprocessing.Pool(processes=jobs) as pool:
                outcomes = pool.map(execute_request, worklist)
        else:
            outcomes = [execute_request(r) for r in worklist]
        wall_seconds = time.perf_counter() - t0
        results = dict(zip(keys, outcomes))
        if progress:
            progress(f"ablation: matrix done in {wall_seconds:.1f}s")
        return self._assemble(cells, requests, results, wall_seconds)

    # -- scoring --------------------------------------------------------
    @staticmethod
    def _deltas(base: dict, toggled: dict) -> dict:
        def pct(new, old):
            return (new - old) / old * 100.0 if old else 0.0
        return {
            "base_fps": base["fps"],
            "toggled_fps": toggled["fps"],
            "delta_fps_pct": pct(toggled["fps"], base["fps"]),
            "base_row_updates": base["row_updates"],
            "toggled_row_updates": toggled["row_updates"],
            "delta_row_updates_pct": pct(toggled["row_updates"],
                                         base["row_updates"]),
            "digest_changed": toggled["digest"] != base["digest"],
            "validate_ok": toggled["validate_ok"],
            "validate": toggled["validate"],
        }

    @staticmethod
    def _summary(per_workload: dict) -> dict:
        deltas = [w["delta_fps_pct"] for w in per_workload.values()]
        rows = [w["delta_row_updates_pct"] for w in per_workload.values()]
        n = max(1, len(per_workload))
        mean_fps = sum(deltas) / n
        return {
            "workloads": len(per_workload),
            "mean_delta_fps_pct": mean_fps,
            "max_abs_delta_fps_pct": max(
                (abs(d) for d in deltas), default=0.0),
            "mean_delta_row_updates_pct": sum(rows) / n,
            "digest_changed_workloads": sum(
                1 for w in per_workload.values() if w["digest_changed"]),
            "all_validate_ok": all(
                w["validate_ok"] for w in per_workload.values()),
            # Scalar importance: mean absolute throughput impact of the
            # toggle, as a fraction (NeoPhysIx-style cost accounting).
            "importance": sum(abs(d) for d in deltas) / n / 100.0,
        }

    def _assemble(self, cells, requests, results, wall_seconds) -> dict:
        cfg = self.config
        baseline = {}
        for workload in cfg.workloads:
            baseline[workload] = results[cells[(None, workload,
                                                "baseline")]]

        features = {}
        for feature in self.features:
            per_workload = {}
            for workload in cfg.workloads:
                if not feature.applicable(workload):
                    continue
                if feature.kind == "arch":
                    modeled = baseline[workload].get("modeled", {})
                    base_key, toggled_key = feature.arch_keys
                    base_fps = modeled.get(base_key, 0.0)
                    toggled_fps = modeled.get(toggled_key, 0.0)
                    per_workload[workload] = {
                        "base_fps": base_fps,
                        "toggled_fps": toggled_fps,
                        "delta_fps_pct": (
                            (toggled_fps - base_fps) / base_fps * 100.0
                            if base_fps else 0.0),
                        "base_row_updates":
                            baseline[workload]["row_updates"],
                        "toggled_row_updates":
                            baseline[workload]["row_updates"],
                        "delta_row_updates_pct": 0.0,
                        "digest_changed": False,
                        "validate_ok": baseline[workload]["validate_ok"],
                        "validate": baseline[workload]["validate"],
                    }
                else:
                    base = results[cells[(feature.name, workload,
                                          "base")]]
                    toggled = results[cells[(feature.name, workload,
                                             "toggled")]]
                    per_workload[workload] = self._deltas(base, toggled)
            features[feature.name] = {
                "description": feature.description,
                "kind": feature.kind,
                "default_on": feature.default_on,
                "workloads": per_workload,
                "summary": self._summary(per_workload),
            }

        payload = {
            "settings": {
                "scale": cfg.scale,
                "frames": cfg.frames,
                "seed": cfg.seed,
                "measure_from": cfg.measure_from,
                "jobs": cfg.resolved_jobs(),
                "batch_worlds": cfg.batch_worlds,
                "pairwise": cfg.pairwise,
                "repeats": cfg.repeats,
            },
            "workloads": list(cfg.workloads),
            "baseline": baseline,
            "features": features,
            "matrix": {
                "total_cells": len(cells),
                "unique_runs": len(requests),
                "memo_hits": len(cells) - len(requests),
                "wall_seconds": wall_seconds,
            },
        }
        if cfg.pairwise:
            payload["pairwise"] = self._assemble_pairwise(cells, results,
                                                          features)
        return payload

    def _assemble_pairwise(self, cells, results, features) -> dict:
        out = {}
        for fa, fb, _merged in self._pairwise_patches():
            pair_name = f"{fa.name}+{fb.name}"
            per_workload = {}
            for workload in self.config.workloads:
                key = cells.get((pair_name, workload, "pair"))
                if key is None:
                    continue
                base = results[cells[(None, workload, "baseline")]]
                pair = results[key]
                da = features[fa.name]["workloads"][workload][
                    "delta_fps_pct"]
                db = features[fb.name]["workloads"][workload][
                    "delta_fps_pct"]
                dpair = ((pair["fps"] - base["fps"]) / base["fps"]
                         * 100.0 if base["fps"] else 0.0)
                per_workload[workload] = {
                    "delta_fps_pct": dpair,
                    "interaction_pct": dpair - (da + db),
                    "digest": pair["digest"],
                    "validate_ok": pair["validate_ok"],
                }
            out[pair_name] = per_workload
        return out


def make_report(payload: dict) -> dict:
    """Wrap an ablation payload in the BENCH-file envelope."""
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "ablation": payload,
    }
