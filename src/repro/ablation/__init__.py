"""Unified feature-ablation framework (ROADMAP item 4).

One registry of every toggleable engine/arch feature, one runner that
expands the baseline-plus-one-off matrix, executes it in parallel with
memoized per-config results, and scores per-feature importance (Δfps,
Δsolver-row-updates, Δdeterminism-digest) per Table 3 workload::

    PYTHONPATH=src python -m repro.ablation \\
        --features all --workloads table3 --scale 0.03

emits a schema-versioned ``BENCH_10.json``; ``scripts/perf_report.py
--check`` gates fresh runs against the committed
``results/bench/trajectory.json`` (see :mod:`repro.ablation.trajectory`
for the tolerance-band semantics).  :mod:`repro.ablation.studies` holds
the four focused single-mechanism scenes behind
``results/ablation_*.txt``.
"""

from .features import Feature, FeatureRegistry, default_registry
from .runner import (
    SCHEMA,
    TABLE3_WORKLOADS,
    AblationConfig,
    AblationRunner,
    make_report,
)

__all__ = [
    "AblationConfig",
    "AblationRunner",
    "Feature",
    "FeatureRegistry",
    "SCHEMA",
    "TABLE3_WORKLOADS",
    "default_registry",
    "make_report",
]
