"""The feature registry: every toggleable engine/arch mechanism.

A :class:`Feature` names one mechanism the engine (or the modeled
machine) can run without, and declares the *spec patch* that flips it
relative to the registry baseline — the plain scalar-backend scenario
with default :class:`~repro.engine.WorldConfig` tunables.  Three kinds:

``engine``
    The patch changes how the simulation itself runs (a
    ``WorldConfig`` override, the backend, or the watchdog).  Toggled
    runs re-simulate and are compared against the feature's base run.
``batch``
    Like ``engine``, but the toggled run packs ``batch_worlds`` copies
    of the workload through one :class:`~repro.fastpath.BatchWorld`
    solve; throughput is per world-frame.
``arch``
    No re-simulation: the baseline run's recorded
    :class:`~repro.profiling.FrameReport` is re-priced through two
    :class:`~repro.arch.ParallaxMachine` variants (``arch_keys``), so
    the feature's cost is a modeled-FPS delta in the style of the
    paper's L2/prefetch studies.

``default_on`` records whether the patch *disables* a mechanism that
is on by default (warm starting, CCD, SAP, L2 partitioning) or
*enables* one that is off by default (auto-sleep, the numpy fast path,
batch packing, the watchdog, prefetch); importance scores are reported
with the same sign convention either way (positive Δfps = the toggled
state is faster).
"""

from __future__ import annotations

from ..engine import WorldConfig

__all__ = ["Feature", "FeatureRegistry", "default_registry"]


class Feature:
    """One toggleable mechanism and how to flip it."""

    def __init__(self, name: str, description: str, kind: str = "engine",
                 patch: dict = None, base_patch: dict = None,
                 workloads=None, default_on: bool = True,
                 arch_keys: tuple = None):
        if kind not in ("engine", "batch", "arch"):
            raise ValueError(f"unknown feature kind {kind!r}")
        self.name = name
        self.description = description
        self.kind = kind
        #: Spec patch for the TOGGLED state: ``config`` (WorldConfig
        #: overrides), ``backend``, ``watchdog``, ``batch``.
        self.patch = dict(patch or {})
        #: Spec patch for this feature's reference state (defaults to
        #: the global baseline — empty patch).
        self.base_patch = dict(base_patch or {})
        #: Applicable workload names, or ``None`` for every workload.
        self.workloads = None if workloads is None else tuple(workloads)
        self.default_on = default_on
        #: For ``kind="arch"``: ``(base_metric_key, toggled_metric_key)``
        #: into the baseline run's modeled-FPS variants.
        self.arch_keys = arch_keys
        self._validate()

    def _validate(self):
        known_keys = {"config", "backend", "watchdog", "batch"}
        for patch in (self.patch, self.base_patch):
            unknown = set(patch) - known_keys
            if unknown:
                raise ValueError(
                    f"feature {self.name!r}: unknown patch keys "
                    f"{sorted(unknown)}")
            config = patch.get("config")
            if config:
                bad = set(config) - set(WorldConfig.field_names())
                if bad:
                    raise ValueError(
                        f"feature {self.name!r}: unknown WorldConfig "
                        f"fields {sorted(bad)}")
        if self.kind == "arch" and not self.arch_keys:
            raise ValueError(
                f"arch feature {self.name!r} needs arch_keys")
        if self.kind != "arch" and self.arch_keys:
            raise ValueError(
                f"feature {self.name!r}: arch_keys is arch-only")
        if self.kind == "batch" and "batch" not in self.patch:
            raise ValueError(
                f"batch feature {self.name!r} needs a 'batch' patch key")

    def applicable(self, workload: str) -> bool:
        return self.workloads is None or workload in self.workloads

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "kind": self.kind,
            "patch": dict(self.patch),
            "base_patch": dict(self.base_patch),
            "workloads": (None if self.workloads is None
                          else list(self.workloads)),
            "default_on": self.default_on,
            "arch_keys": (None if self.arch_keys is None
                          else list(self.arch_keys)),
        }

    def __repr__(self):
        return f"Feature({self.name!r}, kind={self.kind!r})"


class FeatureRegistry:
    """Ordered, name-unique collection of :class:`Feature` entries."""

    def __init__(self, features=()):
        self._features = {}
        for feature in features:
            self.register(feature)

    def register(self, feature: Feature) -> Feature:
        if feature.name in self._features:
            raise ValueError(
                f"feature {feature.name!r} already registered")
        self._features[feature.name] = feature
        return feature

    def names(self):
        return list(self._features)

    def get(self, name: str) -> Feature:
        try:
            return self._features[name]
        except KeyError:
            known = ", ".join(self._features)
            raise KeyError(
                f"unknown feature {name!r}; known: {known}") from None

    def select(self, names=None):
        """Features for ``names`` (``None`` / ``"all"`` = every one)."""
        if names is None or names == "all":
            return list(self._features.values())
        if isinstance(names, str):
            names = [n.strip() for n in names.split(",") if n.strip()]
        return [self.get(name) for name in names]

    def __len__(self):
        return len(self._features)

    def __iter__(self):
        return iter(self._features.values())

    def __contains__(self, name):
        return name in self._features

    def __repr__(self):
        return f"FeatureRegistry({', '.join(self._features)})"


def default_registry() -> FeatureRegistry:
    """Every toggleable feature the engine and arch layers expose."""
    return FeatureRegistry([
        Feature(
            "warm_start",
            "seed contact rows with last step's impulses "
            "(WorldConfig.warm_starting)",
            patch={"config": {"warm_starting": False}}),
        Feature(
            "autosleep",
            "skip the solver for quiescent islands "
            "(WorldConfig.auto_sleep; off by default)",
            patch={"config": {"auto_sleep": True}},
            default_on=False),
        Feature(
            "ccd",
            "swept-clamp fast movers so bullets cannot tunnel "
            "(WorldConfig.ccd)",
            patch={"config": {"ccd": False}}),
        Feature(
            "broadphase_sap",
            "incremental sweep-and-prune broadphase vs the brute-force "
            "O(n^2) ablation baseline (WorldConfig.broadphase)",
            patch={"config": {"broadphase": "brute"}}),
        Feature(
            "numpy_fastpath",
            "struct-of-arrays numpy kernels for the four hot loops; "
            "bit-identical to the scalar oracle by contract",
            patch={"backend": "numpy"},
            default_on=False),
        Feature(
            "batch_packing",
            "pack N independent numpy worlds' islands into one solver "
            "call per frame (BatchWorld)",
            kind="batch",
            base_patch={"backend": "numpy"},
            patch={"backend": "numpy", "batch": True},
            default_on=False),
        Feature(
            "watchdog",
            "guarded stepping: per-sub-step health validation plus the "
            "rollback-and-degrade ladder (repro.resilience)",
            patch={"watchdog": True},
            default_on=False),
        Feature(
            "l2_partitioning",
            "application-aware way-partitioned L2 (paper scheme) vs one "
            "shared 12MB cache, priced on the recorded touch trace",
            kind="arch",
            arch_keys=("modeled_fps_paper", "modeled_fps_shared_l2")),
        Feature(
            "prefetch",
            "next-4-line L2 prefetch on the recorded touch trace, "
            "credited at the exposed memory latency",
            kind="arch",
            default_on=False,
            arch_keys=("modeled_fps_paper", "modeled_fps_prefetch")),
    ])
