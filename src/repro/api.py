"""repro.api: the session-first public API.

One spec, one session, one way in. Historically the repo grew three
overlapping entrypoints — ``World(gravity=, dt=, ...)`` kwargs vs
``World(config=WorldConfig)``, the ``run_benchmark(...)`` harness, and
hand-rolled ``BatchWorld([...])`` fleets. This module consolidates them:

* :class:`SessionSpec` — a JSON-serializable description of a
  simulation (scenario name, config overrides, backend, watchdog and
  fault policy). Because it is JSON-native it doubles as the
  ``repro.serve`` wire format.
* :class:`Session` — ``Session.create(spec)`` builds the world and its
  driver, ``session.step(n)`` advances rendered frames with exactly the
  semantics of the old ``run_benchmark`` loop (bit-identical
  trajectories), ``session.checkpoint()`` / ``Session.restore(payload)``
  round-trip the full state through JSON — the live-migration primitive.
* :class:`SessionGroup` — a dynamic fleet of sessions stepped through
  one packed :class:`~repro.fastpath.BatchWorld` solve.
* :func:`run_scenario` — the harness entrypoint ``run_benchmark`` now
  delegates to (with a :class:`DeprecationWarning`).

Sessions default to **uid isolation**: each session's world draws body
and geom uids from a private counter starting at zero, so an identical
build in *any* process yields identical uids — the property that makes
checkpoint → migrate → restore replay bit-identically across process
boundaries.
"""

from __future__ import annotations

import contextlib
import hashlib
import warnings

from .collision import Geom
from .dynamics import Body
from .engine import World, WorldConfig
from .fastpath import default_backend, resolve_backend
from .profiling import FrameReport

__all__ = ["SessionSpec", "Session", "SessionGroup", "UidScope",
           "run_scenario"]


class UidScope:
    """A private pair of body/geom uid counters.

    ``installed()`` swaps the scope's counters into the global
    ``Body._next_uid`` / ``Geom._next_uid`` slots for the duration of a
    ``with`` block and saves the advanced values back on exit, restoring
    the previous globals. Everything that can draw or rewind uids on a
    session's behalf — scene build, driver ticks (cannons spawn shells),
    guarded steps (rollback rewinds counters), checkpoint/restore — runs
    inside the owning session's scope, so sessions sharing a process
    never interleave uid draws.
    """

    def __init__(self, body_next: int = 0, geom_next: int = 0):
        self.body_next = body_next
        self.geom_next = geom_next

    @contextlib.contextmanager
    def installed(self):
        prev = (Body._next_uid, Geom._next_uid)
        Body._next_uid = self.body_next
        Geom._next_uid = self.geom_next
        try:
            yield self
        finally:
            self.body_next = Body._next_uid
            self.geom_next = Geom._next_uid
            Body._next_uid, Geom._next_uid = prev

    def __repr__(self):
        return f"UidScope(body={self.body_next}, geom={self.geom_next})"


class SessionSpec:
    """JSON-serializable description of one simulation session.

    ``config`` holds :class:`~repro.engine.WorldConfig` field overrides
    applied to the scenario's world after build (pass a full
    ``WorldConfig`` to pin every field). ``watchdog_config`` mirrors
    :class:`~repro.resilience.WatchdogConfig`; ``faults`` is a list of
    ``{"step", "kind", "persistent"}`` records (a
    :class:`~repro.resilience.FaultSchedule` is accepted and
    flattened). ``backend`` is pinned by :meth:`resolved` so the same
    spec builds the same world on any host.
    """

    def __init__(self, scenario: str, scale: float = 1.0, seed: int = 0,
                 backend: str = None, config=None,
                 watchdog: bool = False, watchdog_config=None,
                 faults=None):
        self.scenario = scenario
        self.scale = float(scale)
        self.seed = int(seed)
        self.backend = backend
        self.config = self._normalize_config(config)
        self.watchdog = bool(watchdog)
        self.watchdog_config = self._normalize_watchdog(watchdog_config)
        self.faults = self._normalize_faults(faults)

    @staticmethod
    def _normalize_config(config):
        if config is None:
            return None
        if isinstance(config, WorldConfig):
            return config.to_dict()
        unknown = set(config) - set(WorldConfig.field_names())
        if unknown:
            raise TypeError(
                f"unknown WorldConfig fields: {sorted(unknown)}")
        return dict(config)

    @staticmethod
    def _normalize_watchdog(watchdog_config):
        if watchdog_config is None:
            return None
        if isinstance(watchdog_config, dict):
            return dict(watchdog_config)
        return watchdog_config.to_dict()

    @staticmethod
    def _normalize_faults(faults):
        if faults is None:
            return None
        records = []
        for fault in faults:
            if isinstance(fault, dict):
                records.append({"step": fault["step"],
                                "kind": fault["kind"],
                                "persistent": fault.get("persistent",
                                                        False)})
            else:
                records.append({"step": fault.step, "kind": fault.kind,
                                "persistent": fault.persistent})
        return records

    def resolved(self) -> "SessionSpec":
        """A copy with the backend pinned to a concrete name."""
        data = self.to_dict()
        data["backend"] = resolve_backend(self.backend)
        return SessionSpec.from_dict(data)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "scale": self.scale,
            "seed": self.seed,
            "backend": self.backend,
            "config": dict(self.config) if self.config else None,
            "watchdog": self.watchdog,
            "watchdog_config": (dict(self.watchdog_config)
                                if self.watchdog_config else None),
            "faults": ([dict(f) for f in self.faults]
                       if self.faults else None),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionSpec":
        return cls(**data)

    def __eq__(self, other) -> bool:
        return (isinstance(other, SessionSpec)
                and self.to_dict() == other.to_dict())

    def __repr__(self):
        bits = [repr(self.scenario), f"scale={self.scale}",
                f"seed={self.seed}"]
        if self.backend:
            bits.append(f"backend={self.backend!r}")
        if self.watchdog:
            bits.append("watchdog=True")
        if self.faults:
            bits.append(f"faults={len(self.faults)}")
        return f"SessionSpec({', '.join(bits)})"


def _apply_config_overrides(world, overrides):
    """Mutate ``world.config`` per the spec, pre-first-step.

    Scenario builders own world *construction*; the spec owns the
    tunables. A broadphase override swaps the (still empty of sweep
    state) broadphase instance, honoring the numpy fast path.
    """
    if not overrides:
        return
    config = world.config.replace(**overrides)
    world.config = config
    if "broadphase" in overrides:
        from .collision import BROADPHASES
        from .fastpath.broadphase import VectorSweepAndPrune
        if world.backend == "numpy" and config.broadphase == "sap":
            world.broadphase = VectorSweepAndPrune()
        else:
            world.broadphase = BROADPHASES[config.broadphase]()


class Session:
    """A running simulation: a world, its driver, and its policies.

    Create via :meth:`create` (fresh) or :meth:`restore` (from a
    :meth:`checkpoint` payload — possibly produced in another process).
    """

    def __init__(self, spec, world, driver, scope, guard=None,
                 injector=None):
        self.spec = spec
        self.world = world
        self.reports = []
        self._driver = driver
        self._scope = scope
        self._guard = guard
        self._injector = injector
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(cls, spec: SessionSpec,
               isolate_uids: bool = True) -> "Session":
        """Build the scenario named by ``spec`` and wire its policies.

        ``isolate_uids=False`` draws uids from the process-global
        counters (the pre-session behavior ``run_scenario`` preserves
        for the legacy harness); such a session can still checkpoint,
        because the payload records the uid base the build started from.
        """
        spec = spec.resolved()
        if isolate_uids:
            scope = UidScope()
        else:
            scope = UidScope(Body._next_uid, Geom._next_uid)
        return cls._build(spec, scope, passthrough=not isolate_uids)

    @classmethod
    def restore(cls, payload: dict) -> "Session":
        """Rebuild a session from a :meth:`checkpoint` payload.

        The scenario is rebuilt from the embedded spec under the
        recorded uid base (so the fresh build draws the original uids),
        then the snapshot replays the captured state onto it — including
        reconstruction of mid-run spawns the fresh build lacks. The
        restored session replays bit-identically to the original.
        """
        from .resilience import WorldSnapshot
        spec = SessionSpec.from_dict(payload["spec"])
        base = payload["uid_base"]
        scope = UidScope(base[0], base[1])
        session = cls._build(spec, scope)
        with session._scope.installed():
            WorldSnapshot.from_dict(payload["snapshot"]) \
                .restore(session.world)
        return session

    @classmethod
    def _build(cls, spec, scope, passthrough: bool = False):
        from .workloads.benchmarks import get_benchmark
        bench = get_benchmark(spec.scenario)
        uid_base = (scope.body_next, scope.geom_next)
        # Passthrough sessions draw uids straight from the process
        # globals, build included: installing the scope would roll the
        # globals back on exit, so uids drawn by the driver later
        # (cannons spawn shells) would collide with the built bodies.
        installed = (contextlib.nullcontext() if passthrough
                     else scope.installed())
        with installed:
            with default_backend(spec.backend):
                world, driver = bench.build(scale=spec.scale,
                                            seed=spec.seed)
            _apply_config_overrides(world, spec.config)

            guard = injector = None
            if spec.watchdog or spec.faults:
                from .resilience import (Fault, FaultInjector,
                                         FaultSchedule, StepWatchdog,
                                         WatchdogConfig)
                if spec.faults:
                    schedule = FaultSchedule(
                        Fault(f["step"], f["kind"], f["persistent"])
                        for f in spec.faults)
                    injector = FaultInjector(world, schedule,
                                             seed=spec.seed)
                if spec.watchdog:
                    wd_config = (WatchdogConfig.from_dict(
                        spec.watchdog_config)
                        if spec.watchdog_config else None)
                    guard = StepWatchdog(world, wd_config)
            if injector is not None:
                scene_driver = driver

                def driver():
                    if scene_driver is not None:
                        scene_driver()
                    injector.tick()

        session = cls(spec, world, driver, scope, guard=guard,
                      injector=injector)
        session._uid_base = uid_base
        if passthrough:
            # Keep the scope's counters trailing the globals so a
            # passthrough session dropped into a SessionGroup (whose
            # lockstep frame installs each member's scope around its
            # tick) continues from the right uids.
            scope.body_next = Body._next_uid
            scope.geom_next = Geom._next_uid
            session._installed = contextlib.nullcontext
        return session

    def close(self):
        """Mark the session dead; further steps raise."""
        self._closed = True

    # -- stepping -------------------------------------------------------
    def _installed(self):
        return self._scope.installed()

    def step(self, frames: int = 1):
        """Advance ``frames`` rendered frames; returns their reports.

        The loop body is the old ``run_benchmark`` loop verbatim, so a
        session's trajectory is bit-identical to the legacy harness.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        new_reports = []
        with self._installed():
            world = self.world
            for _ in range(frames):
                report = FrameReport(world.frame_index)
                world.report = report
                for _ in range(world.config.substeps_per_frame):
                    if self._guard is not None:
                        self._guard.step(self._driver)
                    else:
                        if self._driver is not None:
                            self._driver()
                        world.step()
                world.frame_index += 1
                new_reports.append(report)
        self.reports.extend(new_reports)
        return new_reports

    # -- checkpoint / migration -----------------------------------------
    def checkpoint(self) -> dict:
        """A JSON-native payload: spec + uid base + full world snapshot.

        Feed to :meth:`restore` (any process) to resume the session.
        """
        from .resilience import WorldSnapshot
        with self._installed():
            snapshot = WorldSnapshot.capture(self.world)
        return {
            "spec": self.spec.to_dict(),
            "uid_base": list(self._uid_base),
            "snapshot": snapshot.to_dict(),
        }

    # -- observability --------------------------------------------------
    @property
    def frame_index(self) -> int:
        return self.world.frame_index

    @property
    def time(self) -> float:
        return self.world.time

    @property
    def health(self):
        """The watchdog's incident log, or None when unguarded."""
        return self._guard.health if self._guard is not None else None

    def state_digest(self) -> str:
        """Deterministic hash of every body's pose and velocity.

        Two bit-identical worlds — e.g. a migrated session and its
        unmigrated twin — produce equal digests in any process.
        """
        hasher = hashlib.sha256()
        for body in self.world.bodies:
            p, q = body.position, body.orientation
            v, w = body.linear_velocity, body.angular_velocity
            hasher.update(repr((body.uid, body.enabled,
                                p.x, p.y, p.z, q.w, q.x, q.y, q.z,
                                v.x, v.y, v.z, w.x, w.y, w.z))
                          .encode())
        return hasher.hexdigest()

    def describe(self) -> dict:
        """JSON summary for status queries (the serve ``query`` verb)."""
        world = self.world
        return {
            "scenario": self.spec.scenario,
            "backend": world.backend,
            "frame_index": world.frame_index,
            "step_index": world.step_index,
            "time": world.time,
            "bodies": len(world.bodies),
            "sleeping": sum(1 for b in world.bodies if b.sleeping),
            "culled": world.culled,
            "watchdog_events": (len(self._guard.health)
                                if self._guard else 0),
            "digest": self.state_digest(),
        }

    def __repr__(self):
        return (f"Session({self.spec.scenario!r},"
                f" frame={self.world.frame_index},"
                f" bodies={len(self.world.bodies)})")


class SessionGroup:
    """A dynamic fleet of sessions stepped through one packed solve.

    Sessions can join and leave between frames (``add``/``remove``);
    the underlying :class:`~repro.fastpath.BatchWorld` repacks stably.
    Guarded (watchdog) sessions step solo — their rollback/retry loop
    cannot be hoisted across worlds — and every other session joins the
    batched frame; both paths are bit-identical to solo stepping.
    """

    def __init__(self, sessions=()):
        from .fastpath import BatchWorld
        self._batch = BatchWorld([])
        self.sessions = []
        for session in sessions:
            self.add(session)

    def __len__(self):
        return len(self.sessions)

    def __iter__(self):
        return iter(self.sessions)

    def add(self, session: Session) -> Session:
        self.sessions.append(session)
        if session._guard is None:
            self._batch.add_world(session.world)
        return session

    def remove(self, session: Session) -> Session:
        self.sessions.remove(session)
        if session._guard is None:
            self._batch.remove_world(session.world)
        return session

    def step(self, frames: int = 1):
        """Advance every member session ``frames`` rendered frames."""
        batched = [s for s in self.sessions if s._guard is None]
        guarded = [s for s in self.sessions if s._guard is not None]
        for _ in range(frames):
            if batched:
                # The lockstep frame runs under *no* scope: each
                # session's driver installs its own scope around its
                # tick (pure stepping never draws uids), so per-world
                # work interleaves without uid crosstalk.
                drivers = [self._scoped_driver(s) for s in batched]
                reports = self._batch.step_frame(drivers)
                for session, report in zip(batched, reports):
                    session.reports.append(report)
            for session in guarded:
                session.step(1)

    @staticmethod
    def _scoped_driver(session: Session):
        if session._driver is None:
            return None

        def drive():
            with session._installed():
                session._driver()
        return drive


def run_scenario(spec, frames: int = 5, measure_from: int = None):
    """Run a spec to completion and wrap it as a ``BenchmarkRun``.

    The session-first replacement for ``run_benchmark``: same loop, same
    measurement windowing, same return type — but driven by a
    :class:`SessionSpec`, so the watchdog/fault/backend policies travel
    as data. Uses the process-global uid counters (like the legacy
    harness) so recorded trajectories are unchanged.
    """
    from .workloads.benchmarks import BenchmarkRun
    if measure_from is None:
        measure_from = max(0, frames - 2)
    measure_from = min(measure_from, max(0, frames - 1))
    session = Session.create(spec, isolate_uids=False)
    session.step(frames)
    return BenchmarkRun(
        spec.scenario, spec.scale, spec.seed, session.world,
        session.reports, measure_from,
        health=session.health, injector=session._injector)
