"""Vectorized narrowphase pair tests (bit-identical to the scalar ones).

``collide_pairs`` replaces the world's per-pair phase-2 loop for
``backend="numpy"``: candidate pairs are grouped by shape-kind, the hot
kinds (sphere/sphere, sphere/plane, sphere/box, box/plane) run as batch
NumPy kernels restating the scalar formulas component-by-component, and
the remaining kinds fall back to the scalar routines — box/box through
a per-step memo of world transforms, axes, and corners (pure functions
of pose, so memoization cannot change a single bit).

Contacts come out in the scalar loop's exact order: pair order is
preserved, and within a pair the kernel emits points in the same order
the scalar routine appends them.
"""

from __future__ import annotations

import numpy as np

from ..collision.narrowphase import (
    CONTACT_MARGIN,
    Contact,
    collide,
)
from ..math3d import Vec3
from ..profiling import task_cost_narrowphase

_BATCH_KINDS = {
    ("sphere", "sphere"),
    ("sphere", "plane"),
    ("sphere", "box"),
    ("box", "plane"),
    ("box", "box"),
}

# Smallest group worth the array kernels' fixed dispatch cost; smaller
# groups run the scalar routines the kernels restate.  Box-box always
# batches — its vectorized SAT prefilter beats the scalar test at any
# size.
_BATCH_MIN = 4


def _rotate(w, x, y, z, vx, vy, vz):
    """Quaternion.rotate, componentwise: v + (qv×v * w + qv×(qv×v)) * 2."""
    uvx = y * vz - z * vy
    uvy = z * vx - x * vz
    uvz = x * vy - y * vx
    uuvx = y * uvz - z * uvy
    uuvy = z * uvx - x * uvz
    uuvz = x * uvy - y * uvx
    return (vx + (uvx * w + uuvx) * 2.0,
            vy + (uvy * w + uuvy) * 2.0,
            vz + (uvz * w + uuvz) * 2.0)


class _Cache:
    """Per-step memo of pose-derived geom data."""

    __slots__ = ("tf", "axes", "corners")

    def __init__(self):
        self.tf = {}
        self.axes = {}
        self.corners = {}

    def transform(self, g):
        t = self.tf.get(g.uid)
        if t is None:
            t = self.tf[g.uid] = g.transform
        return t

    def box_axes(self, g):
        ax = self.axes.get(g.uid)
        if ax is None:
            rot = self.transform(g).orientation.to_mat3()
            ax = self.axes[g.uid] = [rot.column(0), rot.column(1),
                                     rot.column(2)]
        return ax

    def world_corners(self, g):
        cs = self.corners.get(g.uid)
        if cs is None:
            tf = self.transform(g)
            cs = self.corners[g.uid] = [tf.apply(c)
                                        for c in g.shape.corners()]
        return cs


def _corner_in_box(p, geom, tf) -> bool:
    """``_point_in_box`` with the memoized transform, unboxed."""
    pos = tf.position
    q = tf.orientation
    lx, ly, lz = _rotate(q.w, -q.x, -q.y, -q.z,
                         p.x - pos.x, p.y - pos.y, p.z - pos.z)
    h = geom.shape.half_extents
    m = CONTACT_MARGIN
    return (abs(lx) <= h.x + m and abs(ly) <= h.y + m
            and abs(lz) <= h.z + m)


def _box_extent_along(cache, geom, axis: Vec3) -> float:
    h = geom.shape.half_extents
    ax = cache.box_axes(geom)
    return (abs(axis.dot(ax[0])) * h.x + abs(axis.dot(ax[1])) * h.y
            + abs(axis.dot(ax[2])) * h.z)


def _box_box_cached(cache, ga, gb):
    """`narrowphase._box_box` with memoized axes/corners/transforms."""
    tfa = cache.transform(ga)
    tfb = cache.transform(gb)
    ca = tfa.position
    cb = tfb.position
    delta = ca - cb
    axes_a = cache.box_axes(ga)
    axes_b = cache.box_axes(gb)

    candidates = list(axes_a) + list(axes_b)
    for u in axes_a:
        for v in axes_b:
            cross = u.cross(v)
            if cross.length_squared() > 1e-12:
                candidates.append(cross.normalized())

    best_overlap = float("inf")
    best_axis = None
    for axis in candidates:
        span = (_box_extent_along(cache, ga, axis)
                + _box_extent_along(cache, gb, axis))
        dist = axis.dot(delta)
        overlap = span - abs(dist)
        if overlap < -CONTACT_MARGIN:
            return []
        if overlap < best_overlap:
            best_overlap = overlap
            best_axis = axis if dist >= 0 else -axis

    n = best_axis
    contacts = []
    b_face = n.dot(cb) + _box_extent_along(cache, gb, n)
    for i, p in enumerate(cache.world_corners(ga)):
        if _corner_in_box(p, gb, tfb):
            depth = b_face - n.dot(p)
            contacts.append(Contact(ga, gb, p, n, max(0.0, depth),
                                    feature=i))
    a_face = n.dot(ca) - _box_extent_along(cache, ga, n)
    for i, p in enumerate(cache.world_corners(gb)):
        if _corner_in_box(p, ga, tfa):
            depth = n.dot(p) - a_face
            contacts.append(Contact(ga, gb, p, n, max(0.0, depth),
                                    feature=8 + i))
    if not contacts:
        support = ca
        for axis, h in zip(axes_a, (ga.shape.half_extents.x,
                                    ga.shape.half_extents.y,
                                    ga.shape.half_extents.z)):
            s = axis.dot(n)
            support = support - axis * (h if s > 0 else -h)
        contacts.append(Contact(ga, gb, support, n,
                                max(0.0, best_overlap), feature=16))
    return contacts


def _rot9(q):
    """Quaternion.to_mat3 entries (row-major 9-tuple of arrays)."""
    w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    xx, yy, zz = x * x, y * y, z * z
    xy, xz, yz = x * y, x * z, y * z
    wx, wy, wz = w * x, w * y, w * z
    return (1 - 2 * (yy + zz), 2 * (xy - wz), 2 * (xz + wy),
            2 * (xy + wz), 1 - 2 * (xx + zz), 2 * (yz - wx),
            2 * (xz - wy), 2 * (yz + wx), 1 - 2 * (xx + yy))


def _batch_box_box(cache, items):
    """Vectorized SAT separation test; scalar contacts for survivors.

    All 15 candidate-axis tests run as arrays restating the scalar
    expressions, so the set of pairs judged separated is exactly the
    set ``_box_box_cached`` would reject.  Pairs that survive (usually
    a small minority) re-run the scalar routine for identical contacts.
    """
    m = len(items)
    qa = np.empty((m, 4))
    qb = np.empty((m, 4))
    pa = np.empty((m, 3))
    pb = np.empty((m, 3))
    ha = np.empty((m, 3))
    hb = np.empty((m, 3))
    for i, (ga, gb) in enumerate(items):
        ta = cache.transform(ga)
        tb = cache.transform(gb)
        oa = ta.orientation
        ob = tb.orientation
        qa[i] = (oa.w, oa.x, oa.y, oa.z)
        qb[i] = (ob.w, ob.x, ob.y, ob.z)
        va = ta.position
        vb = tb.position
        pa[i] = (va.x, va.y, va.z)
        pb[i] = (vb.x, vb.y, vb.z)
        sa = ga.shape.half_extents
        sb = gb.shape.half_extents
        ha[i] = (sa.x, sa.y, sa.z)
        hb[i] = (sb.x, sb.y, sb.z)

    with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
        ra = _rot9(qa)
        rb = _rot9(qb)
        # Column k of each rotation = box axis k.
        acols = [(ra[0 + k], ra[3 + k], ra[6 + k]) for k in range(3)]
        bcols = [(rb[0 + k], rb[3 + k], rb[6 + k]) for k in range(3)]
        dx = pa[:, 0] - pb[:, 0]
        dy = pa[:, 1] - pb[:, 1]
        dz = pa[:, 2] - pb[:, 2]
        hax, hay, haz = ha[:, 0], ha[:, 1], ha[:, 2]
        hbx, hby, hbz = hb[:, 0], hb[:, 1], hb[:, 2]

        def extent(ax, ay, az, cols, hx, hy, hz):
            return (np.abs((ax * cols[0][0] + ay * cols[0][1])
                           + az * cols[0][2]) * hx
                    + np.abs((ax * cols[1][0] + ay * cols[1][1])
                             + az * cols[1][2]) * hy
                    + np.abs((ax * cols[2][0] + ay * cols[2][1])
                             + az * cols[2][2]) * hz)

        def overlap_of(ax, ay, az):
            span = (extent(ax, ay, az, acols, hax, hay, haz)
                    + extent(ax, ay, az, bcols, hbx, hby, hbz))
            dist = (ax * dx + ay * dy) + az * dz
            return span - np.abs(dist)

        separated = np.zeros(m, dtype=bool)
        for ax, ay, az in acols + bcols:
            separated |= overlap_of(ax, ay, az) < -CONTACT_MARGIN
        for ux, uy, uz in acols:
            for vx, vy, vz in bcols:
                cx = uy * vz - uz * vy
                cy = uz * vx - ux * vz
                cz = ux * vy - uy * vx
                ls = (cx * cx + cy * cy) + cz * cz
                valid = ls > 1e-12
                inv = 1.0 / np.sqrt(ls)
                ov = overlap_of(cx * inv, cy * inv, cz * inv)
                separated |= valid & (ov < -CONTACT_MARGIN)

    return [[] if separated[i] else _box_box_cached(cache, ga, gb)
            for i, (ga, gb) in enumerate(items)]


# ---------------------------------------------------------------------------
# batch kernels — each takes the group's (sphere_geom, other_geom) pairs
# in *canonical* (dispatch) order and returns one contact list per pair.


def _batch_sphere_sphere(cache, items):
    m = len(items)
    pa = np.empty((m, 3))
    pb = np.empty((m, 3))
    ra = np.empty(m)
    rb = np.empty(m)
    for i, (ga, gb) in enumerate(items):
        a = cache.transform(ga).position
        b = cache.transform(gb).position
        pa[i] = (a.x, a.y, a.z)
        pb[i] = (b.x, b.y, b.z)
        ra[i] = ga.shape.radius
        rb[i] = gb.shape.radius
    dx = pa[:, 0] - pb[:, 0]
    dy = pa[:, 1] - pb[:, 1]
    dz = pa[:, 2] - pb[:, 2]
    with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
        dist = np.sqrt(dx * dx + dy * dy + dz * dz)
        depth = ra + rb - dist
        emit = ~(depth < -CONTACT_MARGIN)
        near = dist > 1e-9
        inv = 1.0 / np.where(near, dist, 1.0)
        nx = np.where(near, dx * inv, 0.0)
        ny = np.where(near, dy * inv, 1.0)
        nz = np.where(near, dz * inv, 0.0)
        s = rb - 0.5 * depth
        px = pb[:, 0] + nx * s
        py = pb[:, 1] + ny * s
        pz = pb[:, 2] + nz * s
        dep = np.maximum(0.0, depth)
    out = []
    for i, (ga, gb) in enumerate(items):
        if emit[i]:
            out.append([Contact(
                ga, gb, Vec3(px[i], py[i], pz[i]),
                Vec3(nx[i], ny[i], nz[i]), float(dep[i]))])
        else:
            out.append([])
    return out


def _batch_sphere_plane(cache, items):
    m = len(items)
    c = np.empty((m, 3))
    r = np.empty(m)
    n = np.empty((m, 3))
    off = np.empty(m)
    for i, (ga, gb) in enumerate(items):
        p = cache.transform(ga).position
        c[i] = (p.x, p.y, p.z)
        r[i] = ga.shape.radius
        pn = gb.shape.normal
        n[i] = (pn.x, pn.y, pn.z)
        off[i] = gb.shape.offset
    with np.errstate(invalid="ignore", over="ignore"):
        d = (n[:, 0] * c[:, 0] + n[:, 1] * c[:, 1]
             + n[:, 2] * c[:, 2]) - off
        depth = r - d
        emit = ~(depth < -CONTACT_MARGIN)
        px = c[:, 0] - n[:, 0] * d
        py = c[:, 1] - n[:, 1] * d
        pz = c[:, 2] - n[:, 2] * d
        dep = np.maximum(0.0, depth)
    out = []
    for i, (ga, gb) in enumerate(items):
        if emit[i]:
            out.append([Contact(ga, gb, Vec3(px[i], py[i], pz[i]),
                                gb.shape.normal, float(dep[i]))])
        else:
            out.append([])
    return out


def _batch_sphere_box(cache, items):
    m = len(items)
    cw = np.empty((m, 3))   # sphere center, world
    bp = np.empty((m, 3))   # box position
    q = np.empty((m, 4))    # box orientation (w, x, y, z)
    h = np.empty((m, 3))
    r = np.empty(m)
    for i, (ga, gb) in enumerate(items):
        p = cache.transform(ga).position
        cw[i] = (p.x, p.y, p.z)
        tf = cache.transform(gb)
        bp[i] = (tf.position.x, tf.position.y, tf.position.z)
        qq = tf.orientation
        q[i] = (qq.w, qq.x, qq.y, qq.z)
        hh = gb.shape.half_extents
        h[i] = (hh.x, hh.y, hh.z)
        r[i] = ga.shape.radius
    w, qx, qy, qz = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
        # apply_inverse: rotate (center - box_pos) by the conjugate.
        dx = cw[:, 0] - bp[:, 0]
        dy = cw[:, 1] - bp[:, 1]
        dz = cw[:, 2] - bp[:, 2]
        lx, ly, lz = _rotate(w, -qx, -qy, -qz, dx, dy, dz)
        hx, hy, hz = h[:, 0], h[:, 1], h[:, 2]
        clx = np.minimum(np.maximum(lx, -hx), hx)
        cly = np.minimum(np.maximum(ly, -hy), hy)
        clz = np.minimum(np.maximum(lz, -hz), hz)
        ddx, ddy, ddz = lx - clx, ly - cly, lz - clz
        dist_sq = ddx * ddx + ddy * ddy + ddz * ddz
        outside = dist_sq > 1e-18
        # outside: exit through the clamped point
        dist = np.sqrt(np.where(outside, dist_sq, 1.0))
        depth_out = r - dist
        inv = 1.0 / dist
        nox, noy, noz = ddx * inv, ddy * inv, ddz * inv
        # inside: exit through the nearest face
        gx = hx - np.abs(lx)
        gy = hy - np.abs(ly)
        gz = hz - np.abs(lz)
        gaps = np.stack((gx, gy, gz))
        axis = np.argmin(gaps, axis=0)
        gap = gaps[axis, np.arange(m)]
        depth_in = r + gap
        nix = np.where(axis == 0, np.where(lx >= 0, 1.0, -1.0), 0.0)
        niy = np.where(axis == 1, np.where(ly >= 0, 1.0, -1.0), 0.0)
        niz = np.where(axis == 2, np.where(lz >= 0, 1.0, -1.0), 0.0)
        depth = np.where(outside, depth_out, depth_in)
        emit = np.where(outside, ~(depth_out < -CONTACT_MARGIN), True)
        nlx = np.where(outside, nox, nix)
        nly = np.where(outside, noy, niy)
        nlz = np.where(outside, noz, niz)
        plx = np.where(outside, clx, lx)
        ply = np.where(outside, cly, ly)
        plz = np.where(outside, clz, lz)
        nwx, nwy, nwz = _rotate(w, qx, qy, qz, nlx, nly, nlz)
        rx, ry, rz = _rotate(w, qx, qy, qz, plx, ply, plz)
        px = rx + bp[:, 0]
        py = ry + bp[:, 1]
        pz = rz + bp[:, 2]
        dep = np.maximum(0.0, depth)
    out = []
    for i, (ga, gb) in enumerate(items):
        if emit[i]:
            out.append([Contact(
                ga, gb, Vec3(px[i], py[i], pz[i]),
                Vec3(nwx[i], nwy[i], nwz[i]), float(dep[i]))])
        else:
            out.append([])
    return out


def _batch_box_plane(cache, items):
    m = len(items)
    bp = np.empty((m, 3))
    q = np.empty((m, 4))
    h = np.empty((m, 3))
    n = np.empty((m, 3))
    off = np.empty(m)
    for i, (ga, gb) in enumerate(items):
        tf = cache.transform(ga)
        bp[i] = (tf.position.x, tf.position.y, tf.position.z)
        qq = tf.orientation
        q[i] = (qq.w, qq.x, qq.y, qq.z)
        hh = ga.shape.half_extents
        h[i] = (hh.x, hh.y, hh.z)
        pn = gb.shape.normal
        n[i] = (pn.x, pn.y, pn.z)
        off[i] = gb.shape.offset
    # Local corners in Box.corners() order: sx outer, sy, sz inner.
    signs = np.array([(sx, sy, sz)
                      for sx in (-1.0, 1.0)
                      for sy in (-1.0, 1.0)
                      for sz in (-1.0, 1.0)])  # (8, 3)
    cx = signs[:, 0][None, :] * h[:, 0][:, None]   # (m, 8)
    cy = signs[:, 1][None, :] * h[:, 1][:, None]
    cz = signs[:, 2][None, :] * h[:, 2][:, None]
    w = q[:, 0][:, None]
    qx = q[:, 1][:, None]
    qy = q[:, 2][:, None]
    qz = q[:, 3][:, None]
    with np.errstate(invalid="ignore", over="ignore"):
        rx, ry, rz = _rotate(w, qx, qy, qz, cx, cy, cz)
        px = rx + bp[:, 0][:, None]
        py = ry + bp[:, 1][:, None]
        pz = rz + bp[:, 2][:, None]
        sd = (n[:, 0][:, None] * px + n[:, 1][:, None] * py
              + n[:, 2][:, None] * pz) - off[:, None]
        emit = sd < CONTACT_MARGIN
        dep = np.maximum(0.0, -sd)
    out = []
    for i, (ga, gb) in enumerate(items):
        found = []
        if emit[i].any():
            pn = gb.shape.normal
            for k in np.nonzero(emit[i])[0]:
                found.append(Contact(
                    ga, gb, Vec3(px[i, k], py[i, k], pz[i, k]), pn,
                    float(dep[i, k]), feature=int(k)))
        out.append(found)
    return out


_BATCH_FN = {
    ("sphere", "sphere"): _batch_sphere_sphere,
    ("sphere", "plane"): _batch_sphere_plane,
    ("sphere", "box"): _batch_sphere_box,
    ("box", "plane"): _batch_box_plane,
    ("box", "box"): _batch_box_box,
}


def collide_pairs(world, pairs, report):
    """Phase-2 narrowphase over broadphase pairs (numpy backend).

    Mirrors the scalar loop in ``World.step`` exactly: same pair
    filtering, same contact order, same report counters, same
    penetration/contacted-body health signals.
    """
    cfg = world.config
    cache = _Cache()

    filtered = []
    np_geom_ids = []
    np_body_ids = []
    for ga, gb in pairs:
        if world._pair_filtered(ga, gb):
            continue
        np_geom_ids.extend((ga.uid, gb.uid))
        for g in (ga, gb):
            if g.body is not None:
                np_body_ids.append(g.body.uid)
        filtered.append((ga, gb))

    # Group by canonical dispatch kind; remember how to map back.
    plan = [None] * len(filtered)   # (group_key, slot, flipped) or None
    groups = {}
    for idx, (ga, gb) in enumerate(filtered):
        ka, kb = ga.shape.kind, gb.shape.kind
        if (ka, kb) in _BATCH_KINDS:
            key, item, flipped = (ka, kb), (ga, gb), False
        elif (kb, ka) in _BATCH_KINDS:
            key, item, flipped = (kb, ka), (gb, ga), True
        else:
            continue
        bucket = groups.setdefault(key, [])
        plan[idx] = (key, len(bucket), flipped)
        bucket.append(item)

    # Array dispatch has a fixed per-kernel cost; below a few pairs the
    # scalar routines (the very ones the kernels restate) are cheaper.
    results = {}
    for key, items in groups.items():
        if len(items) >= _BATCH_MIN or key == ("box", "box"):
            results[key] = _BATCH_FN[key](cache, items)
        else:
            results[key] = [collide(ga, gb) for ga, gb in items]

    contacts = []
    world._contacted_bodies = set()
    world.last_max_penetration = 0.0
    world.last_penetration_uids = ()
    # Counters and task costs are accumulated locally and committed in
    # one bulk call per sweep — integer-valued float sums, so the
    # totals (and the task lists, appended in pair order) are exactly
    # what the per-pair calls would have produced.
    total_contacts = 0
    task_costs = []
    for idx, (ga, gb) in enumerate(filtered):
        p = plan[idx]
        if p is not None:
            key, slot, flipped = p
            found = results[key][slot]
            if flipped:
                found = [c.flipped(ga, gb) for c in found]
        else:
            found = collide(ga, gb)
        if len(found) > cfg.max_contacts_per_pair:
            found = sorted(found, key=lambda c: -c.depth)
            found = found[:cfg.max_contacts_per_pair]
        total_contacts += len(found)
        task_costs.append(task_cost_narrowphase(len(found)))
        if found:
            for body in (ga.body, gb.body):
                if body is not None:
                    world._contacted_bodies.add(body.uid)
            for c in found:
                if c.depth > world.last_max_penetration:
                    world.last_max_penetration = c.depth
                    world.last_penetration_uids = tuple(
                        g.body.uid for g in (ga, gb)
                        if g.body is not None)
            contacts.extend(found)
    report.count("narrowphase", tests=len(filtered),
                 contacts=total_contacts)
    report.add_tasks("narrowphase", task_costs)
    report.touch("narrowphase", "geom", np_geom_ids)
    report.touch("narrowphase", "body", np_body_ids)
    report.touch("narrowphase", "contact", range(len(contacts)),
                 writes=True)
    return contacts
