"""Struct-of-arrays PGS kernels, bit-identical to the scalar solver.

The scalar :func:`repro.dynamics.solver.solve_island` is the
correctness oracle; these kernels restate exactly the same arithmetic
(same operations, same association order, same clamping) over packed
row data, so a ``backend="numpy"`` world replays the scalar trajectory
bit-for-bit.  Two execution strategies share one packing:

* ``flat``: the row recurrence unrolled over parallel Python float
  lists.  Sequential like the oracle, but without any ``Vec3``/``Mat3``
  allocation or method dispatch — the per-row cost drops several-fold.

* ``levels``: rows are scheduled into dependency levels (two rows
  conflict when they share a *dynamic* body or when one is the friction
  row of the other).  Any two rows in one level are independent, so the
  level solves as one vectorized NumPy update.  Because every row still
  reads exactly the velocities left by the last conflicting row, the
  result carries the same bit pattern as the sequential sweep.  Levels
  only pay off when they are wide — which is what
  :class:`~repro.fastpath.batch.BatchWorld` produces by packing many
  worlds' islands into one solve.

``solve_islands`` picks the strategy per packed batch from the mean
level width; since both are bit-identical to the oracle the heuristic
is a pure performance knob.
"""

from __future__ import annotations

import numpy as np

from ..dynamics.solver import SolveStats

# Mean rows-per-level at which the vectorized level sweep overtakes the
# flat Python recurrence (NumPy call overhead amortizes past ~this many
# lanes; tuned on the Table 3 workloads).
LEVEL_WIDTH_THRESHOLD = 24.0

_ZERO9 = (0.0,) * 9

# row_data column layout (see PackedRows.__init__):
#   0 row index | 1 slot a | 2 slot b
#   3..8   lin_a.xyz, ang_a.xyz
#   9..14  lin_b.xyz, ang_b.xyz
#   15 rhs | 16 cfm | 17 lo | 18 hi | 19 inv_k
#   20 friction_of row index (-1 none) | 21 friction_coeff
_COL_RHS, _COL_CFM, _COL_LO, _COL_HI, _COL_INVK = 15, 16, 17, 18, 19
_COL_FR, _COL_MU = 20, 21


class PackedRows:
    """SoA view of solver rows from one or more islands.

    Body state (velocities, inverse mass, world-frame inverse inertia)
    is gathered into slot arrays; each row stores its body slots, its
    12 Jacobian components, bounds, and friction linkage.  ``None``
    endpoints map to slot -1; static bodies get read-only slots (their
    velocities participate in relative-velocity sums exactly like the
    scalar path, but impulses are never applied to them and they are
    never written back).
    """

    __slots__ = (
        "rows", "island_of", "n_islands", "row_data", "impulses",
        "vel", "bodies", "dynamic", "inv_mass", "inertia",
        "levels", "n_levels",
    )

    def __init__(self, islands_rows):
        rows = []
        island_of = []
        for isl, rlist in enumerate(islands_rows):
            for r in rlist:
                rows.append(r)
                island_of.append(isl)
        self.rows = rows
        self.island_of = island_of
        self.n_islands = len(islands_rows)

        slot_of = {}
        bodies = []
        vel = []          # [vx, vy, vz, wx, wy, wz] per slot
        inv_mass = []
        inertia = []      # 9-tuple per slot (world inverse inertia)
        dynamic = []

        def slot(body):
            if body is None:
                return -1
            # Keyed by identity, NOT body.uid: uid scopes are
            # per-session, so a multi-world pack (BatchWorld) can hold
            # distinct bodies with equal uids.
            s = slot_of.get(body)
            if s is None:
                s = slot_of[body] = len(bodies)
                bodies.append(body)
                v, w = body.linear_velocity, body.angular_velocity
                vel.append([v.x, v.y, v.z, w.x, w.y, w.z])
                if body.is_static:
                    inv_mass.append(0.0)
                    inertia.append(_ZERO9)
                    dynamic.append(False)
                else:
                    inv_mass.append(body.inv_mass)
                    m = body.inv_inertia_world.m
                    inertia.append((m[0][0], m[0][1], m[0][2],
                                    m[1][0], m[1][1], m[1][2],
                                    m[2][0], m[2][1], m[2][2]))
                    dynamic.append(True)
            return s

        row_index = {}
        data = []
        impulses = []
        for k, r in enumerate(rows):
            row_index[r] = k
            ia = slot(r.body_a)
            ib = slot(r.body_b)
            fr = (-1 if r.friction_of is None
                  else row_index[r.friction_of])
            la, aa, lb, ab = r.lin_a, r.ang_a, r.lin_b, r.ang_b
            data.append((
                k, ia, ib,
                la.x, la.y, la.z, aa.x, aa.y, aa.z,
                lb.x, lb.y, lb.z, ab.x, ab.y, ab.z,
                r.rhs, r.cfm, r.lo, r.hi, r.inv_k,
                fr, r.friction_coeff,
            ))
            impulses.append(r.impulse)
        self.row_data = data
        self.impulses = impulses
        self.vel = vel
        self.bodies = bodies
        self.dynamic = dynamic
        self.inv_mass = inv_mass
        self.inertia = inertia
        self.levels = None
        self.n_levels = 0

    # -- scheduling -----------------------------------------------------
    # pax: ignore[PAX202]: SoA packing/scheduling machinery; the scalar
    # oracle for its output is solve_island via solve_islands.
    def build_levels(self):
        """Group rows into dependency levels (see module docstring)."""
        if self.levels is not None:
            return self.levels
        body_last = {}
        row_level = [0] * len(self.rows)
        levels = []
        dynamic = self.dynamic
        for rd in self.row_data:
            k, ia, ib = rd[0], rd[1], rd[2]
            lv = 0
            if ia >= 0 and dynamic[ia]:
                last = body_last.get(ia)
                if last is not None and last >= lv:
                    lv = last + 1
            if ib >= 0 and dynamic[ib]:
                last = body_last.get(ib)
                if last is not None and last >= lv:
                    lv = last + 1
            fr = rd[_COL_FR]
            if fr >= 0 and row_level[fr] >= lv:
                lv = row_level[fr] + 1
            row_level[k] = lv
            if ia >= 0 and dynamic[ia]:
                body_last[ia] = lv
            if ib >= 0 and dynamic[ib]:
                body_last[ib] = lv
            while len(levels) <= lv:
                levels.append([])
            levels[lv].append(k)
        self.levels = levels
        self.n_levels = len(levels)
        return levels

    # pax: ignore[PAX202]: diagnostic statistic over the packed rows;
    # reported only, never fed back into the simulation.
    def mean_level_width(self) -> float:
        self.build_levels()
        if not self.n_levels:
            return 0.0
        return len(self.rows) / self.n_levels

    # -- scatter --------------------------------------------------------
    # pax: ignore[PAX202]: inverse of the pack step above; covered by
    # the solve_islands <-> solve_island differential identity.
    def writeback(self):
        """Write solved impulses and body velocities back to objects."""
        from ..math3d import Vec3
        for r, imp in zip(self.rows, self.impulses):
            r.impulse = imp
        for s, body in enumerate(self.bodies):
            if not self.dynamic[s]:
                continue
            v = self.vel[s]
            body.linear_velocity = Vec3(v[0], v[1], v[2])
            body.angular_velocity = Vec3(v[3], v[4], v[5])


def _stats(packed, iterations, max_delta, residual):
    """Per-island SolveStats from per-island extrema."""
    counts = [0] * packed.n_islands
    for isl in packed.island_of:
        counts[isl] += 1
    return [
        SolveStats(counts[i], iterations, iterations * counts[i],
                   max_delta[i], residual[i])
        for i in range(packed.n_islands)
    ]


# ---------------------------------------------------------------------------
# flat path: sequential recurrence over unboxed floats


def _solve_flat(packed, iterations):
    """Bit-identical restatement of Row.solve_once over parallel floats.

    Association order matters everywhere: every sum below mirrors the
    scalar expression token for token (dot products associate left, the
    impulse delta is ``((rhs - vrel) - cfm*imp) * inv_k``, the velocity
    update scales by ``d * inv_mass`` first — exactly like
    ``Row.apply_impulse``).
    """
    vel = packed.vel
    inv_mass = packed.inv_mass
    inertia = packed.inertia
    dynamic = packed.dynamic
    imp = packed.impulses
    island_of = packed.island_of
    n_isl = packed.n_islands
    max_delta = [0.0] * n_isl
    residual = [0.0] * n_isl
    last_iteration = iterations - 1

    # Re-bundle each live row for the sweep: direct references to the
    # endpoint velocity lists (None when absent), inverse mass/inertia
    # only where the impulse actually applies.  Rows with inv_k == 0
    # never change any state (the scalar solve_once returns 0.0
    # immediately), so they drop out entirely.  Rows stay grouped by
    # island: islands are body- and row-disjoint, so each can retire
    # from the sweep independently.
    groups = [[] for _ in range(n_isl)]
    for rd in packed.row_data:
        (k, ia, ib,
         lax, lay, laz, aax, aay, aaz,
         lbx, lby, lbz, abx, aby, abz,
         rhs, cfm, lo, hi, inv_k, fr, mu) = rd
        if inv_k == 0.0:
            continue
        da = ia >= 0 and dynamic[ia]
        db = ib >= 0 and dynamic[ib]
        groups[island_of[k]].append((
            k,
            vel[ia] if ia >= 0 else None,
            vel[ib] if ib >= 0 else None,
            inv_mass[ia] if da else None,
            inertia[ia] if da else None,
            inv_mass[ib] if db else None,
            inertia[ib] if db else None,
            lax, lay, laz, aax, aay, aaz,
            lbx, lby, lbz, abx, aby, abz,
            rhs, cfm, lo, hi, inv_k, fr, mu,
        ))
    active = [(isl, rows) for isl, rows in enumerate(groups) if rows]

    for it in range(iterations):
        is_last = it == last_iteration
        still = []
        for isl, rows in active:
            changed = False
            md = max_delta[isl]
            res = residual[isl]
            for (k, va, vb, ima, ma, imb, mb,
                 lax, lay, laz, aax, aay, aaz,
                 lbx, lby, lbz, abx, aby, abz,
                 rhs, cfm, lo, hi, inv_k, fr, mu) in rows:
                if fr >= 0:
                    f = imp[fr]
                    bound = mu * (f if f > 0.0 else 0.0)
                    lo = -bound
                    hi = bound
                vrel = 0.0
                if va is not None:
                    vrel += lax * va[0] + lay * va[1] + laz * va[2]
                    vrel += aax * va[3] + aay * va[4] + aaz * va[5]
                if vb is not None:
                    vrel += lbx * vb[0] + lby * vb[1] + lbz * vb[2]
                    vrel += abx * vb[3] + aby * vb[4] + abz * vb[5]
                old = imp[k]
                d = (rhs - vrel - cfm * old) * inv_k
                new = old + d
                if new < lo:
                    new = lo
                elif new > hi:
                    new = hi
                d = new - old
                imp[k] = new
                ad = -d if d < 0.0 else d
                if ad > md:
                    md = ad
                if is_last and ad > res:
                    res = ad
                if d == 0.0:
                    continue
                changed = True
                if ima is not None:
                    s = d * ima
                    va[0] += lax * s
                    va[1] += lay * s
                    va[2] += laz * s
                    tx = aax * d
                    ty = aay * d
                    tz = aaz * d
                    va[3] += ma[0] * tx + ma[1] * ty + ma[2] * tz
                    va[4] += ma[3] * tx + ma[4] * ty + ma[5] * tz
                    va[5] += ma[6] * tx + ma[7] * ty + ma[8] * tz
                if imb is not None:
                    s = d * imb
                    vb[0] += lbx * s
                    vb[1] += lby * s
                    vb[2] += lbz * s
                    tx = abx * d
                    ty = aby * d
                    tz = abz * d
                    vb[3] += mb[0] * tx + mb[1] * ty + mb[2] * tz
                    vb[4] += mb[3] * tx + mb[4] * ty + mb[5] * tz
                    vb[5] += mb[6] * tx + mb[7] * ty + mb[8] * tz
            max_delta[isl] = md
            if is_last:
                residual[isl] = res
            if changed:
                still.append((isl, rows))
            # An island whose sweep produced only exact-0.0 deltas is
            # settled: every remaining sweep over it would be a
            # value-level no-op (impulses and velocities unchanged, all
            # deltas 0.0 again), so its max_delta and final-iteration
            # residual (zero) are already what the full run produces.
            # It drops out; the rest keep iterating.
        active = still
        if not active:
            break
    return _stats(packed, iterations, max_delta, residual)


# ---------------------------------------------------------------------------
# level path: vectorized sweep over independent rows


class _LevelArrays:
    """NumPy mirrors of PackedRows, grouped by dependency level.

    Slot arrays get one trailing dummy slot for ``None`` endpoints; its
    velocity stays zero and its inverse mass/inertia are zero, and every
    read through it is additionally masked so a polluted (non-finite)
    Jacobian cannot leak NaNs where the scalar path would skip the term.
    """

    __slots__ = ("vx", "vy", "vz", "wx", "wy", "wz", "imp", "levels",
                 "n_rows", "island_of", "maxd", "resid")

    def __init__(self, packed):
        levels = packed.build_levels()
        n_slots = len(packed.bodies) + 1  # + dummy slot for None
        vel = np.zeros((n_slots, 6), dtype=np.float64)
        for s, v in enumerate(packed.vel):
            vel[s] = v
        self.vx = np.ascontiguousarray(vel[:, 0])
        self.vy = np.ascontiguousarray(vel[:, 1])
        self.vz = np.ascontiguousarray(vel[:, 2])
        self.wx = np.ascontiguousarray(vel[:, 3])
        self.wy = np.ascontiguousarray(vel[:, 4])
        self.wz = np.ascontiguousarray(vel[:, 5])
        self.imp = np.array(packed.impulses, dtype=np.float64)
        self.n_rows = len(packed.rows)
        self.island_of = np.array(packed.island_of, dtype=np.int64)
        self.maxd = np.zeros(self.n_rows, dtype=np.float64)
        self.resid = np.zeros(self.n_rows, dtype=np.float64)

        dummy = n_slots - 1
        # Apply-side mass/inertia: zeroed for static bodies (the scalar
        # apply_impulse skips them), actual values for dynamic ones.
        apply_inv_mass = np.array(
            [im if dyn else 0.0
             for im, dyn in zip(packed.inv_mass, packed.dynamic)] + [0.0])
        apply_inertia = np.array(
            [inert if dyn else _ZERO9
             for inert, dyn in zip(packed.inertia, packed.dynamic)]
            + [_ZERO9])
        dyn_mask = np.array(list(packed.dynamic) + [False])

        rd = packed.row_data
        self.levels = []
        for members in levels:
            a = np.array([rd[k] for k in members], dtype=np.float64)
            ia = a[:, 1].astype(np.int64)
            ib = a[:, 2].astype(np.int64)
            a_none = ia < 0
            b_none = ib < 0
            ia[a_none] = dummy
            ib[b_none] = dummy
            fr = a[:, _COL_FR].astype(np.int64)
            has_fr = fr >= 0
            self.levels.append({
                "k": np.array(members, dtype=np.int64),
                "ia": ia, "ib": ib,
                "a_none": a_none, "b_none": b_none,
                "a_dyn": dyn_mask[ia], "b_dyn": dyn_mask[ib],
                "jac": np.ascontiguousarray(a[:, 3:15].T),
                "rhs": a[:, _COL_RHS], "cfm": a[:, _COL_CFM],
                "lo": a[:, _COL_LO], "hi": a[:, _COL_HI],
                "inv_k": a[:, _COL_INVK],
                "fr_safe": np.where(has_fr, fr, 0), "has_fr": has_fr,
                "any_fr": bool(has_fr.any()),
                "mu": a[:, _COL_MU],
                "ima": apply_inv_mass[ia], "imb": apply_inv_mass[ib],
                "Ia": np.ascontiguousarray(apply_inertia[ia].T),
                "Ib": np.ascontiguousarray(apply_inertia[ib].T),
            })


def _masked(term, none_mask):
    """The scalar path contributes exactly 0.0 for a ``None`` body."""
    return np.where(none_mask, 0.0, term)


def _solve_levels(packed, iterations):
    arrs = _LevelArrays(packed)
    vx, vy, vz = arrs.vx, arrs.vy, arrs.vz
    wx, wy, wz = arrs.wx, arrs.wy, arrs.wz
    imp = arrs.imp
    maxd = arrs.maxd
    resid = arrs.resid
    last_iteration = iterations - 1

    with np.errstate(invalid="ignore", over="ignore"):
        for it in range(iterations):
            is_last = it == last_iteration
            for lv in arrs.levels:
                k = lv["k"]
                ia, ib = lv["ia"], lv["ib"]
                (lax, lay, laz, aax, aay, aaz,
                 lbx, lby, lbz, abx, aby, abz) = lv["jac"]
                lo, hi = lv["lo"], lv["hi"]
                if lv["any_fr"]:
                    f = imp[lv["fr_safe"]]
                    bound = lv["mu"] * np.maximum(0.0, f)
                    lo = np.where(lv["has_fr"], -bound, lo)
                    hi = np.where(lv["has_fr"], bound, hi)
                # Same association as relative_velocity(): four dot
                # products folded left, None terms exactly 0.0.
                d_la = _masked(
                    lax * vx[ia] + lay * vy[ia] + laz * vz[ia],
                    lv["a_none"])
                d_aa = _masked(
                    aax * wx[ia] + aay * wy[ia] + aaz * wz[ia],
                    lv["a_none"])
                d_lb = _masked(
                    lbx * vx[ib] + lby * vy[ib] + lbz * vz[ib],
                    lv["b_none"])
                d_ab = _masked(
                    abx * wx[ib] + aby * wy[ib] + abz * wz[ib],
                    lv["b_none"])
                vrel = d_la + d_aa + d_lb + d_ab
                old = imp[k]
                inv_k = lv["inv_k"]
                d = (lv["rhs"] - vrel - lv["cfm"] * old) * inv_k
                new = np.minimum(np.maximum(old + d, lo), hi)
                new = np.where(inv_k == 0.0, old, new)
                d = new - old
                imp[k] = new
                ad = np.abs(d)
                maxd[k] = np.maximum(maxd[k], ad)
                if is_last:
                    resid[k] = ad
                # Scatter the impulse into body velocities.  Dynamic
                # slots within one level are pairwise distinct (that is
                # the level invariant), so fancy-index += is safe; the
                # masked static/dummy lanes add exactly 0.0.
                sa = np.where(lv["a_dyn"], d * lv["ima"], 0.0)
                da = np.where(lv["a_dyn"], d, 0.0)
                vx[ia] += lax * sa
                vy[ia] += lay * sa
                vz[ia] += laz * sa
                tx, ty, tz = aax * da, aay * da, aaz * da
                m = lv["Ia"]
                wx[ia] += m[0] * tx + m[1] * ty + m[2] * tz
                wy[ia] += m[3] * tx + m[4] * ty + m[5] * tz
                wz[ia] += m[6] * tx + m[7] * ty + m[8] * tz
                sb = np.where(lv["b_dyn"], d * lv["imb"], 0.0)
                db = np.where(lv["b_dyn"], d, 0.0)
                vx[ib] += lbx * sb
                vy[ib] += lby * sb
                vz[ib] += lbz * sb
                tx, ty, tz = abx * db, aby * db, abz * db
                m = lv["Ib"]
                wx[ib] += m[0] * tx + m[1] * ty + m[2] * tz
                wy[ib] += m[3] * tx + m[4] * ty + m[5] * tz
                wz[ib] += m[6] * tx + m[7] * ty + m[8] * tz

    # Scatter solved state back into the packed lists so PackedRows
    # stays the single source of truth for writeback().
    packed.impulses = imp.tolist()
    for s in range(len(packed.bodies)):
        packed.vel[s] = [vx[s], vy[s], vz[s], wx[s], wy[s], wz[s]]

    n_isl = packed.n_islands
    max_delta = [0.0] * n_isl
    residual = [0.0] * n_isl
    if arrs.n_rows:
        md = np.zeros(n_isl)
        rs = np.zeros(n_isl)
        np.maximum.at(md, arrs.island_of, maxd)
        np.maximum.at(rs, arrs.island_of, resid)
        max_delta = md.tolist()
        residual = rs.tolist()
    return _stats(packed, iterations, max_delta, residual)


# ---------------------------------------------------------------------------
# public API


def solve_islands(islands_rows, iterations: int = 20,
                  strategy: str = "auto"):
    """Solve several independent islands' row lists in one packed pass.

    Returns one :class:`SolveStats` per input island, numerically
    identical to calling the scalar ``solve_island`` on each.  Strategy
    ``auto`` uses the vectorized level sweep when levels are wide and
    the flat recurrence otherwise; ``flat`` / ``levels`` force a path.
    """
    islands_rows = [list(r) for r in islands_rows]
    packed = PackedRows(islands_rows)
    if not packed.rows:
        return _stats(packed, iterations, [0.0] * packed.n_islands,
                      [0.0] * packed.n_islands)
    if strategy == "auto":
        wide = packed.mean_level_width() >= LEVEL_WIDTH_THRESHOLD
        strategy = "levels" if wide else "flat"
    if strategy == "levels":
        stats = _solve_levels(packed, iterations)
    elif strategy == "flat":
        stats = _solve_flat(packed, iterations)
    else:
        raise ValueError(f"unknown solver strategy {strategy!r}")
    packed.writeback()
    return stats


def solve_island_soa(rows, iterations: int = 20,
                     strategy: str = "auto") -> SolveStats:
    """Drop-in for the scalar ``solve_island`` over one row list."""
    return solve_islands([list(rows)], iterations, strategy)[0]
