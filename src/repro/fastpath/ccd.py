"""Vectorized CCD sweep with the scalar sweep's exact clamp positions.

``ccd.sweep_clamp`` casts one ray against every other geom's inflated
AABB in a Python loop; for a bullet in a dense scene that loop is most
of the integration phase.  Here the AABBs come from the broadphase's
batched :func:`fill_aabbs` (bit-identical to ``geom.aabb()``) and the
slab test runs across all geoms at once.  Planes and heightfields keep
their scalar ray tests — there are rarely more than a couple per world.

The scalar routine only uses the *minimum* time of impact, never which
geom produced it, so folding the per-geom times with an
order-independent ``min`` reproduces its result exactly (ties and the
``BACKOFF`` subtraction see the same float either way).
"""

from __future__ import annotations

import numpy as np

from ..collision.ccd import BACKOFF, _body_radius
from ..collision.raycast import _EPS, ray_heightfield, ray_plane
from ..math3d import Vec3
from .broadphase import fill_aabbs


def _ray_aabb_batch(origin, direction, lo, hi):
    """``ray_aabb`` over (n, 3) corner arrays; misses become +inf.

    The ray is shared, so the scalar test's per-axis ``abs(d) < eps``
    branch is uniform across geoms and the slab arithmetic restates
    exactly: ``(a - o) * (1.0 / d)`` with the conditional swap.
    """
    n = len(lo)
    tmin = np.zeros(n)
    tmax = np.full(n, np.inf)
    miss = np.zeros(n, dtype=bool)
    for k, axis in enumerate(("x", "y", "z")):
        o = getattr(origin, axis)
        d = getattr(direction, axis)
        a = lo[:, k]
        b = hi[:, k]
        if abs(d) < _EPS:
            miss |= (o < a) | (o > b)
            continue
        inv = 1.0 / d
        t0 = (a - o) * inv
        t1 = (b - o) * inv
        swap = t0 > t1
        t0, t1 = np.where(swap, t1, t0), np.where(swap, t0, t1)
        np.maximum(tmin, t0, out=tmin)
        np.minimum(tmax, t1, out=tmax)
    miss |= tmin > tmax
    return np.where(miss, np.inf, tmin)


def sweep_clamp(world, body, motion: Vec3):
    """Drop-in for ``collision.ccd.sweep_clamp`` (same positions)."""
    dist = motion.length()
    if dist <= 0.0:
        return None
    direction = motion / dist
    origin = body.position
    inflate = _body_radius(world, body)
    best = None
    boxed = []
    for geom in world.geoms:
        if not geom.enabled or geom.body is body:
            continue
        kind = geom.shape.kind
        if kind == "plane":
            shifted = origin - geom.shape.normal * inflate
            t = ray_plane(shifted, direction, geom.shape)
        elif kind == "heightfield":
            lifted = origin - Vec3(0.0, inflate, 0.0)
            t = ray_heightfield(lifted, direction, geom.shape,
                                geom.transform, dist)
        else:
            boxed.append(geom)
            continue
        if t is not None and t <= dist and (best is None or t < best):
            best = t
    if boxed:
        n = len(boxed)
        mins = np.empty((n, 3))
        maxs = np.empty((n, 3))
        fill_aabbs(boxed, mins, maxs)
        t = _ray_aabb_batch(origin, direction,
                            mins - inflate, maxs + inflate)
        t = t[t <= dist]
        if len(t):
            lowest = float(t.min())
            if best is None or lowest < best:
                best = lowest
    if best is None:
        return None
    return origin + direction * max(0.0, best - BACKOFF)
