"""Unboxed per-body kernels: force application and integration.

These restate ``World._apply_forces`` and ``World._integrate`` with the
same arithmetic in the same order, but without allocating ``Vec3`` /
``Mat3`` / ``Quaternion`` intermediates — each body's state is unpacked
to plain floats once, advanced, and written back.  Like the solver's
``flat`` strategy, this is the narrow-width arm of the fast path: the
per-entity state (13 floats) is too small for NumPy dispatch to pay off
at per-world populations, while the attribute/method overhead it
removes is most of the phase cost.

CCD candidates (per-sub-step motion beyond the sweep threshold) go
through the vectorized sweep in :mod:`.ccd`, which clamps to the same
positions as the scalar sweep; the report counters are unchanged.
"""

from __future__ import annotations

import math

import numpy as np

from ..collision import ccd as ccd_mod
from ..math3d import Mat3, Quaternion, Vec3
from . import ccd as fp_ccd


# Below this many live bodies the per-body loop beats array dispatch
# (the gather/write-back boundary costs ~5 us/body either way; the
# array path only amortizes its ~40 kernel launches past this point).
# Single worlds rarely get here — BatchWorld populations do.
_FORCES_BATCH_MIN = 192


def apply_forces(world, dt: float):
    """Drop-in for ``World._apply_forces`` (bit-identical)."""
    live = [b for b in world.bodies if not (b.is_static or not b.enabled)]
    if len(live) >= _FORCES_BATCH_MIN:
        _apply_forces_batch(world, live, dt)
        return
    cfg = world.config
    g = cfg.gravity
    gx, gy, gz = g.x, g.y, g.z
    lin_k = max(0.0, 1.0 - cfg.linear_damping * dt)
    ang_k = max(0.0, 1.0 - cfg.angular_damping * dt)
    for body in live:
        # A sleeping body's orientation hasn't changed since its world
        # inertia was last refreshed (integration skips it), so the
        # cached matrix already holds exactly the values a recompute
        # would produce — keep it and just drain the accumulators.
        if body.sleeping and body._inv_inertia_world is not None:
            body.force = Vec3()
            body.torque = Vec3()
            continue
        # refresh_world_inertia(), unboxed: R = q.to_mat3(), then
        # world inverse inertia (R * I) * R^T with Mat3.__mul__'s
        # left-associated element sums.
        q = body.orientation
        w, x, y, z = q.w, q.x, q.y, q.z
        xx, yy, zz = x * x, y * y, z * z
        xy, xz, yz = x * y, x * z, y * z
        wx, wy, wz = w * x, w * y, w * z
        r00 = 1 - 2 * (yy + zz)
        r01 = 2 * (xy - wz)
        r02 = 2 * (xz + wy)
        r10 = 2 * (xy + wz)
        r11 = 1 - 2 * (xx + zz)
        r12 = 2 * (yz - wx)
        r20 = 2 * (xz - wy)
        r21 = 2 * (yz + wx)
        r22 = 1 - 2 * (xx + yy)
        ib = body.inv_inertia_body.m
        (i00, i01, i02), (i10, i11, i12), (i20, i21, i22) = ib
        # A = R * I
        a00 = r00 * i00 + r01 * i10 + r02 * i20
        a01 = r00 * i01 + r01 * i11 + r02 * i21
        a02 = r00 * i02 + r01 * i12 + r02 * i22
        a10 = r10 * i00 + r11 * i10 + r12 * i20
        a11 = r10 * i01 + r11 * i11 + r12 * i21
        a12 = r10 * i02 + r11 * i12 + r12 * i22
        a20 = r20 * i00 + r21 * i10 + r22 * i20
        a21 = r20 * i01 + r21 * i11 + r22 * i21
        a22 = r20 * i02 + r21 * i12 + r22 * i22
        # I_world = A * R^T  (b[j][k] of R^T is R[k][j])
        m00 = a00 * r00 + a01 * r01 + a02 * r02
        m01 = a00 * r10 + a01 * r11 + a02 * r12
        m02 = a00 * r20 + a01 * r21 + a02 * r22
        m10 = a10 * r00 + a11 * r01 + a12 * r02
        m11 = a10 * r10 + a11 * r11 + a12 * r12
        m12 = a10 * r20 + a11 * r21 + a12 * r22
        m20 = a20 * r00 + a21 * r01 + a22 * r02
        m21 = a20 * r10 + a21 * r11 + a22 * r12
        m22 = a20 * r20 + a21 * r21 + a22 * r22
        iw = Mat3.__new__(Mat3)
        iw.m = [[m00, m01, m02], [m10, m11, m12], [m20, m21, m22]]
        body._inv_inertia_world = iw

        if body.sleeping:
            body.force = Vec3()
            body.torque = Vec3()
            continue

        v = body.linear_velocity
        f = body.force
        gs = body.gravity_scale
        im = body.inv_mass
        body.linear_velocity = Vec3(
            (v.x + (gx * gs + f.x * im) * dt) * lin_k,
            (v.y + (gy * gs + f.y * im) * dt) * lin_k,
            (v.z + (gz * gs + f.z * im) * dt) * lin_k,
        )
        av = body.angular_velocity
        t = body.torque
        body.angular_velocity = Vec3(
            (av.x + (m00 * t.x + m01 * t.y + m02 * t.z) * dt) * ang_k,
            (av.y + (m10 * t.x + m11 * t.y + m12 * t.z) * dt) * ang_k,
            (av.z + (m20 * t.x + m21 * t.y + m22 * t.z) * dt) * ang_k,
        )
        body.force = Vec3()
        body.torque = Vec3()


def _apply_forces_batch(world, live, dt: float):
    """Array restatement of the per-body loop above.

    Every expression is the same formula applied elementwise across the
    live bodies (same products, same association), so the refreshed
    world inertias and damped velocities carry identical bit patterns.
    """
    cfg = world.config
    g = cfg.gravity
    lin_k = max(0.0, 1.0 - cfg.linear_damping * dt)
    ang_k = max(0.0, 1.0 - cfg.angular_damping * dt)
    # Same sleeping-body shortcut as the per-body loop: their cached
    # world inertia is already exact, so only the rest need the refresh.
    stale = [body for body in live
             if not (body.sleeping and body._inv_inertia_world is not None)]
    for body in live:
        if body.sleeping and body._inv_inertia_world is not None:
            body.force = Vec3()
            body.torque = Vec3()
    live = stale
    if not live:
        return
    n = len(live)
    q = np.empty((n, 4))
    for i, body in enumerate(live):
        o = body.orientation
        q[i] = (o.w, o.x, o.y, o.z)
    ib = np.array([body.inv_inertia_body.m
                   for body in live]).reshape(n, 9)
    w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    xx, yy, zz = x * x, y * y, z * z
    xy, xz, yz = x * y, x * z, y * z
    wx, wy, wz = w * x, w * y, w * z
    r00 = 1 - 2 * (yy + zz)
    r01 = 2 * (xy - wz)
    r02 = 2 * (xz + wy)
    r10 = 2 * (xy + wz)
    r11 = 1 - 2 * (xx + zz)
    r12 = 2 * (yz - wx)
    r20 = 2 * (xz - wy)
    r21 = 2 * (yz + wx)
    r22 = 1 - 2 * (xx + yy)
    (i00, i01, i02, i10, i11, i12, i20, i21, i22) = (
        ib[:, 0], ib[:, 1], ib[:, 2], ib[:, 3], ib[:, 4],
        ib[:, 5], ib[:, 6], ib[:, 7], ib[:, 8])
    a00 = r00 * i00 + r01 * i10 + r02 * i20
    a01 = r00 * i01 + r01 * i11 + r02 * i21
    a02 = r00 * i02 + r01 * i12 + r02 * i22
    a10 = r10 * i00 + r11 * i10 + r12 * i20
    a11 = r10 * i01 + r11 * i11 + r12 * i21
    a12 = r10 * i02 + r11 * i12 + r12 * i22
    a20 = r20 * i00 + r21 * i10 + r22 * i20
    a21 = r20 * i01 + r21 * i11 + r22 * i21
    a22 = r20 * i02 + r21 * i12 + r22 * i22
    M = np.empty((n, 9))
    M[:, 0] = a00 * r00 + a01 * r01 + a02 * r02
    M[:, 1] = a00 * r10 + a01 * r11 + a02 * r12
    M[:, 2] = a00 * r20 + a01 * r21 + a02 * r22
    M[:, 3] = a10 * r00 + a11 * r01 + a12 * r02
    M[:, 4] = a10 * r10 + a11 * r11 + a12 * r12
    M[:, 5] = a10 * r20 + a11 * r21 + a12 * r22
    M[:, 6] = a20 * r00 + a21 * r01 + a22 * r02
    M[:, 7] = a20 * r10 + a21 * r11 + a22 * r12
    M[:, 8] = a20 * r20 + a21 * r21 + a22 * r22
    rows = M.tolist()
    awake = []
    for i, body in enumerate(live):
        m = rows[i]
        iw = Mat3.__new__(Mat3)
        iw.m = [m[0:3], m[3:6], m[6:9]]
        body._inv_inertia_world = iw
        if body.sleeping:
            body.force = Vec3()
            body.torque = Vec3()
        else:
            awake.append(i)
    if not awake:
        return
    k = len(awake)
    st = np.empty((k, 12))
    gim = np.empty((k, 2))
    for row, i in enumerate(awake):
        body = live[i]
        v = body.linear_velocity
        f = body.force
        av = body.angular_velocity
        t = body.torque
        st[row] = (v.x, v.y, v.z, f.x, f.y, f.z,
                   av.x, av.y, av.z, t.x, t.y, t.z)
        gim[row] = (body.gravity_scale, body.inv_mass)
    gs, im = gim[:, 0], gim[:, 1]
    tx, ty, tz = st[:, 9], st[:, 10], st[:, 11]
    Ma = M[awake]
    out = np.empty((k, 6))
    out[:, 0] = (st[:, 0] + (g.x * gs + st[:, 3] * im) * dt) * lin_k
    out[:, 1] = (st[:, 1] + (g.y * gs + st[:, 4] * im) * dt) * lin_k
    out[:, 2] = (st[:, 2] + (g.z * gs + st[:, 5] * im) * dt) * lin_k
    out[:, 3] = (st[:, 6]
                 + (Ma[:, 0] * tx + Ma[:, 1] * ty + Ma[:, 2] * tz)
                 * dt) * ang_k
    out[:, 4] = (st[:, 7]
                 + (Ma[:, 3] * tx + Ma[:, 4] * ty + Ma[:, 5] * tz)
                 * dt) * ang_k
    out[:, 5] = (st[:, 8]
                 + (Ma[:, 6] * tx + Ma[:, 7] * ty + Ma[:, 8] * tz)
                 * dt) * ang_k
    vals = out.tolist()
    for row, i in enumerate(awake):
        body = live[i]
        nv = vals[row]
        body.linear_velocity = Vec3(nv[0], nv[1], nv[2])
        body.angular_velocity = Vec3(nv[3], nv[4], nv[5])
        body.force = Vec3()
        body.torque = Vec3()


def integrate(world, bodies, dt: float):
    """Drop-in for ``World._integrate`` (bit-identical)."""
    bounds = world.config.world_bounds
    ccd_threshold = (ccd_mod.CCD_MOTION_THRESHOLD
                     if world.config.ccd else float("inf"))
    for body in bodies:
        if body.sleeping:
            continue
        v = body.linear_velocity
        mx, my, mz = v.x * dt, v.y * dt, v.z * dt
        if math.sqrt(mx * mx + my * my + mz * mz) > ccd_threshold:
            clamped = fp_ccd.sweep_clamp(world, body, Vec3(mx, my, mz))
            if clamped is not None:
                body.position = clamped
                body.orientation = body.orientation.integrated(
                    body.angular_velocity, dt)
                body._inv_inertia_world = None
                if world.report is not None:
                    world.report.count("narrowphase", ccd_clamps=1)
                continue
        p = body.position
        body.position = Vec3(p.x + mx, p.y + my, p.z + mz)
        # orientation.integrated(), unboxed: q' = normalize(q + dt/2 *
        # (0, omega) * q) with Quaternion.__mul__'s term order.
        av = body.angular_velocity
        ox, oy, oz = av.x, av.y, av.z
        q = body.orientation
        qw, qx, qy, qz = q.w, q.x, q.y, q.z
        dw = 0.0 * qw - ox * qx - oy * qy - oz * qz
        dx = 0.0 * qx + ox * qw + oy * qz - oz * qy
        dy = 0.0 * qy - ox * qz + oy * qw + oz * qx
        dz = 0.0 * qz + ox * qy - oy * qx + oz * qw
        half = 0.5 * dt
        nw = qw + dw * half
        nx = qx + dx * half
        ny = qy + dy * half
        nz = qz + dz * half
        n = math.sqrt(nw * nw + nx * nx + ny * ny + nz * nz)
        out = Quaternion.__new__(Quaternion)
        if n < 1e-12:
            out.w, out.x, out.y, out.z = 1.0, 0.0, 0.0, 0.0
        else:
            inv = 1.0 / n
            out.w = nw * inv
            out.x = nx * inv
            out.y = ny * inv
            out.z = nz * inv
        body.orientation = out
        body._inv_inertia_world = None
        p = body.position
        if (abs(p.x) > bounds or abs(p.y) > bounds
                or abs(p.z) > bounds):
            body.enabled = False
            world.culled += 1
