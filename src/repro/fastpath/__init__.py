"""Struct-of-arrays fast path for the engine hot loops.

``repro.fastpath`` vectorizes the four profiled hot loops — the SAP
interval sweep, the sphere/box narrowphase pair tests, PGS row
iteration, and Jakobsen cloth relaxation — behind the existing APIs.
A world opts in per instance::

    World(backend="numpy")     # SoA kernels
    World(backend="scalar")    # the verbatim oracle path (default)

Backend resolution, in priority order:

1. the explicit ``backend=`` argument,
2. the innermost active :func:`default_backend` override,
3. the ``REPRO_BACKEND`` environment variable,
4. ``"scalar"``.

The scalar implementations are retained verbatim as the correctness
and ablation oracle: every kernel here restates the same arithmetic in
the same operation order, and ``tests/test_differential.py`` holds the
two backends bit-identical over the Table 3 workloads.
"""

from __future__ import annotations

import contextlib
import os

BACKENDS = ("scalar", "numpy")

#: Vectorized kernel -> the named scalar oracle it must stay
#: bit-identical to.  PaxLint's PAX202 cross-checks both sides of
#: every entry against the ASTs (and that every public fastpath
#: kernel appears here), so renaming either end fails lint instead of
#: silently shrinking differential-test coverage.  Keys are
#: ``"<module>.<kernel>"`` within this package; values are dotted
#: ``repro.*`` paths to a function or ``Class.method``.
SCALAR_COUNTERPARTS = {
    "batch.BatchWorld.step": "repro.engine.world.World.step",
    "batch.BatchWorld.step_frame":
        "repro.engine.world.World.step_frame",
    "bodies.apply_forces": "repro.engine.world.World._apply_forces",
    "bodies.integrate": "repro.engine.world.World._integrate",
    "broadphase.VectorSweepAndPrune.pairs":
        "repro.collision.broadphase.SweepAndPrune.pairs",
    "broadphase.fill_aabbs": "repro.collision.geom.Geom.aabb",
    "ccd.sweep_clamp": "repro.collision.ccd.sweep_clamp",
    "cloth.step_cloth": "repro.cloth.Cloth.step",
    "joints.build_joint_rows":
        "repro.dynamics.joints.Joint.begin_step",
    "narrowphase.collide_pairs":
        "repro.collision.narrowphase.collide",
    "rows.build_contact_rows":
        "repro.dynamics.joints.ContactJoint.begin_step",
    "solver.solve_island_soa": "repro.dynamics.solver.solve_island",
    "solver.solve_islands": "repro.dynamics.solver.solve_island",
}

# pax: ignore[PAX107]: harness-scoped backend override stack; pushed/
# popped only by the default_backend() context manager around world
# construction, never read inside the step path.
_override_stack = []


def resolve_backend(backend=None) -> str:
    """Resolve a backend name (see module docstring for precedence)."""
    if backend is None and _override_stack:
        backend = _override_stack[-1]
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND") or "scalar"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


@contextlib.contextmanager
def default_backend(backend: str):
    """Override the default backend for ``World()`` calls in scope.

    Lets harnesses (benchmarks, the differential tests) retarget
    workload builders that construct their own worlds without
    threading a parameter through every builder.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    _override_stack.append(backend)
    try:
        yield backend
    finally:
        _override_stack.pop()


from .solver import solve_island_soa, solve_islands  # noqa: E402
from .batch import BatchWorld  # noqa: E402

__all__ = [
    "BACKENDS",
    "BatchWorld",
    "SCALAR_COUNTERPARTS",
    "default_backend",
    "resolve_backend",
    "solve_island_soa",
    "solve_islands",
]
