"""Struct-of-arrays fast path for the engine hot loops.

``repro.fastpath`` vectorizes the four profiled hot loops — the SAP
interval sweep, the sphere/box narrowphase pair tests, PGS row
iteration, and Jakobsen cloth relaxation — behind the existing APIs.
A world opts in per instance::

    World(backend="numpy")     # SoA kernels
    World(backend="scalar")    # the verbatim oracle path (default)

Backend resolution, in priority order:

1. the explicit ``backend=`` argument,
2. the innermost active :func:`default_backend` override,
3. the ``REPRO_BACKEND`` environment variable,
4. ``"scalar"``.

The scalar implementations are retained verbatim as the correctness
and ablation oracle: every kernel here restates the same arithmetic in
the same operation order, and ``tests/test_differential.py`` holds the
two backends bit-identical over the Table 3 workloads.
"""

from __future__ import annotations

import contextlib
import os

BACKENDS = ("scalar", "numpy")

_override_stack = []


def resolve_backend(backend=None) -> str:
    """Resolve a backend name (see module docstring for precedence)."""
    if backend is None and _override_stack:
        backend = _override_stack[-1]
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND") or "scalar"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


@contextlib.contextmanager
def default_backend(backend: str):
    """Override the default backend for ``World()`` calls in scope.

    Lets harnesses (benchmarks, the differential tests) retarget
    workload builders that construct their own worlds without
    threading a parameter through every builder.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    _override_stack.append(backend)
    try:
        yield backend
    finally:
        _override_stack.pop()


from .solver import solve_island_soa, solve_islands  # noqa: E402
from .batch import BatchWorld  # noqa: E402

__all__ = [
    "BACKENDS",
    "BatchWorld",
    "default_backend",
    "resolve_backend",
    "solve_island_soa",
    "solve_islands",
]
