"""Vectorized sweep-and-prune with the scalar SAP's exact semantics.

The scalar :class:`~repro.collision.broadphase.SweepAndPrune` keeps the
geom list sorted by ``aabb.min[axis]`` across frames and sweeps an
active interval list.  Here the near-sorted maintenance uses a stable
argsort (same resulting order as a stable insertion sort), the sweep
becomes one ``searchsorted`` over the sorted interval starts, and the
candidate expansion plus y/z overlap filter run as flat array ops.  The
emitted pair list — and the ``tests`` / ``swaps`` counters feeding the
instruction model — are identical to the scalar strategy's.
"""

from __future__ import annotations

import numpy as np

from ..collision.broadphase import _StatsMixin, _emit


def _pose(g):
    body = g.body
    if body is not None:
        return body.position, body.orientation
    t = g.static_transform
    return t.position, t.orientation


def fill_aabbs(geoms, mins, maxs):
    """Fill (n, 3) min/max arrays with each geom's exact AABB.

    Spheres, boxes, and capsules batch through array restatements of
    the ``Shape.aabb`` formulas (same products, same association, so
    the bounds are bit-identical); anything else falls back to the
    scalar ``geom.aabb()``.
    """
    sph = []
    box = []
    cap = []
    for i, g in enumerate(geoms):
        kind = g.shape.kind
        if kind == "sphere":
            sph.append(i)
        elif kind == "box":
            box.append(i)
        elif kind == "capsule":
            cap.append(i)
        else:
            bb = g.aabb()
            bmin, bmax = bb.min, bb.max
            mins[i] = (bmin.x, bmin.y, bmin.z)
            maxs[i] = (bmax.x, bmax.y, bmax.z)
    if sph:
        m = len(sph)
        c = np.empty((m, 3))
        r = np.empty((m, 1))
        for row, i in enumerate(sph):
            g = geoms[i]
            p, _ = _pose(g)
            c[row] = (p.x, p.y, p.z)
            r[row, 0] = g.shape.radius
        idx = np.asarray(sph)
        mins[idx] = c - r
        maxs[idx] = c + r
    if box:
        m = len(box)
        c = np.empty((m, 3))
        q = np.empty((m, 4))
        h = np.empty((m, 3))
        for row, i in enumerate(box):
            g = geoms[i]
            p, o = _pose(g)
            c[row] = (p.x, p.y, p.z)
            q[row] = (o.w, o.x, o.y, o.z)
            hh = g.shape.half_extents
            h[row] = (hh.x, hh.y, hh.z)
        w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
        xx, yy, zz = x * x, y * y, z * z
        xy, xz, yz = x * y, x * z, y * z
        wx, wy, wz = w * x, w * y, w * z
        hx, hy, hz = h[:, 0], h[:, 1], h[:, 2]
        e = np.empty((m, 3))
        e[:, 0] = (np.abs(1 - 2 * (yy + zz)) * hx
                   + np.abs(2 * (xy - wz)) * hy
                   + np.abs(2 * (xz + wy)) * hz)
        e[:, 1] = (np.abs(2 * (xy + wz)) * hx
                   + np.abs(1 - 2 * (xx + zz)) * hy
                   + np.abs(2 * (yz - wx)) * hz)
        e[:, 2] = (np.abs(2 * (xz - wy)) * hx
                   + np.abs(2 * (yz + wx)) * hy
                   + np.abs(1 - 2 * (xx + yy)) * hz)
        idx = np.asarray(box)
        mins[idx] = c - e
        maxs[idx] = c + e
    if cap:
        m = len(cap)
        c = np.empty((m, 3))
        q = np.empty((m, 4))
        hl = np.empty(m)
        r = np.empty((m, 1))
        for row, i in enumerate(cap):
            g = geoms[i]
            p, o = _pose(g)
            c[row] = (p.x, p.y, p.z)
            q[row] = (o.w, o.x, o.y, o.z)
            hl[row] = 0.5 * g.shape.length
            r[row, 0] = g.shape.radius
        w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
        zero = np.zeros(m)
        # transform.apply(±(0, l/2, 0)) with Quaternion.rotate's exact
        # component expressions (see narrowphase._rotate).
        a = np.empty((m, 3))
        b = np.empty((m, 3))
        for out, (vx, vy, vz) in ((a, (zero, hl, zero)),
                                  (b, (-zero, -hl, -zero))):
            uvx = y * vz - z * vy
            uvy = z * vx - x * vz
            uvz = x * vy - y * vx
            uuvx = y * uvz - z * uvy
            uuvy = z * uvx - x * uvz
            uuvz = x * uvy - y * uvx
            out[:, 0] = (vx + (uvx * w + uuvx) * 2.0) + c[:, 0]
            out[:, 1] = (vy + (uvy * w + uuvy) * 2.0) + c[:, 1]
            out[:, 2] = (vz + (uvz * w + uuvz) * 2.0) + c[:, 2]
        idx = np.asarray(cap)
        mins[idx] = np.minimum(a, b) - r
        maxs[idx] = np.maximum(a, b) + r


def _inversion_count(keys) -> int:
    """Number of inversions == shifts a stable insertion sort performs."""
    n = len(keys)
    if n < 2:
        return 0
    # Rank-compress (stable ranks make ties compare like the scalar
    # sort's strict ``>``), then count earlier-seen larger ranks with a
    # Fenwick tree.
    ranks = np.argsort(np.argsort(keys, kind="stable"), kind="stable")
    tree = [0] * (n + 1)
    inversions = 0
    for seen, r in enumerate(ranks):
        seen_le = 0
        i = int(r) + 1
        while i > 0:
            seen_le += tree[i]
            i -= i & (-i)
        inversions += seen - seen_le
        i = int(r) + 1
        while i <= n:
            tree[i] += 1
            i += i & (-i)
    return inversions


class VectorSweepAndPrune(_StatsMixin):
    """Drop-in for ``SweepAndPrune`` with vectorized sweep."""

    name = "sap"

    def __init__(self, axis: int = 0):
        self.axis = axis
        self._order = []
        self.tests = 0
        self.swaps = 0

    def pairs(self, geoms):
        live = [g for g in geoms if g.enabled]
        live_set = set(g.uid for g in live)
        order = [g for g in self._order if g.uid in live_set]
        known = set(g.uid for g in order)
        for g in live:
            if g.uid not in known:
                order.append(g)

        n = len(order)
        if n == 0:
            self._order = []
            self.tests = 0
            self.swaps = 0
            self.last_pairs = 0
            self.last_order = []
            return []

        axis = self.axis
        mins = np.empty((n, 3), dtype=np.float64)
        maxs = np.empty((n, 3), dtype=np.float64)
        fill_aabbs(order, mins, maxs)

        keys = mins[:, axis]
        # Coherent frames usually arrive already sorted; a sorted key
        # sequence has zero inversions and a stable argsort of it is
        # the identity, so the Fenwick count and the permutation
        # reindex can be skipped without changing anything.
        if n < 2 or bool(np.all(keys[1:] >= keys[:-1])):
            self.swaps = 0
        else:
            self.swaps = _inversion_count(keys)
            perm = np.argsort(keys, kind="stable")
            order = [order[i] for i in perm]
            mins = mins[perm]
            maxs = maxs[perm]
        self._order = order
        smin = mins[:, axis]
        smax = maxs[:, axis]

        # For sorted entry i, every j in (i, hi[i]) satisfies
        # smin[j] <= smax[i] — the scalar sweep's closed-interval
        # active-list condition seen from the earlier entry.
        hi = np.searchsorted(smin, smax, side="right")
        counts = np.maximum(hi - np.arange(1, n + 1), 0)
        total = int(counts.sum())
        if total == 0:
            self.tests = 0
            self.last_pairs = 0
            self.last_order = [g.uid for g in order]
            return []
        ii = np.repeat(np.arange(n), counts)
        cum = np.concatenate(([0], np.cumsum(counts[:-1])))
        jj = np.arange(total) - cum[ii] + ii + 1

        static = np.fromiter((g.is_static for g in order), dtype=bool,
                             count=n)
        keep = ~(static[ii] & static[jj])
        ii, jj = ii[keep], jj[keep]
        self.tests = int(len(ii))

        overlap = (
            (mins[ii, 1] <= maxs[jj, 1]) & (mins[jj, 1] <= maxs[ii, 1])
            & (mins[ii, 2] <= maxs[jj, 2]) & (mins[jj, 2] <= maxs[ii, 2])
        )
        ii, jj = ii[overlap], jj[overlap]

        out = [_emit(order[i], order[j]) for i, j in zip(ii, jj)]
        out.sort(key=lambda p: (p[0].index, p[1].index))
        self.last_pairs = len(out)
        self.last_order = [g.uid for g in order]
        return out
