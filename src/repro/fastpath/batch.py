"""BatchWorld: step N independent worlds per call through one solve.

Many-world stepping is the regime the paper's architecture targets —
lots of small, independent simulations (game instances, rollout
environments) whose per-world populations are too narrow for wide
vector units.  ``BatchWorld`` runs each world's pipeline stages in
lockstep and packs *all* worlds' prepared islands into a single
:func:`~repro.fastpath.solver.solve_islands` call.  Worlds are disjoint,
so the packing changes nothing numerically (each island still sees
exactly its own rows and bodies) — but the packed batch has N× the
rows per dependency level, which is what lets the solver's vectorized
``levels`` strategy win over the sequential flat recurrence.

Every world steps bit-identically to stepping it alone: the stage
boundaries only hoist work across disjoint worlds, the same argument
``World.step`` already makes for hoisting across disjoint islands.
"""

from __future__ import annotations

from ..profiling import FrameReport
from . import solver as fp_solver


class BatchWorld:
    """Steps a fleet of independent worlds with one packed solve.

    The packed solve needs every world on ``backend="numpy"`` and a
    single shared ``solver_iterations`` value; anything else falls back
    to stepping the worlds one by one (still correct, just unbatched).
    """

    def __init__(self, worlds=()):
        self.worlds = list(worlds)

    def __len__(self):
        return len(self.worlds)

    # -- membership -----------------------------------------------------
    # Packing happens per step (``step`` re-derives spans from the
    # current roster), so joining or leaving between steps is exact: the
    # remaining worlds' islands still see only their own rows, in the
    # same order as before. That's what makes the batch the unit of a
    # serve shard — sessions come and go without a rebuild.

    # pax: ignore[PAX202]: membership bookkeeping, not a kernel; the
    # numerical path it feeds (step) is differentially tested.
    def add_world(self, world):
        """Join ``world`` to the fleet (steps with the next call)."""
        if world in self.worlds:
            raise ValueError("world already in batch")
        self.worlds.append(world)
        return world

    # pax: ignore[PAX202]: membership bookkeeping, not a kernel; the
    # numerical path it feeds (step) is differentially tested.
    def remove_world(self, world):
        """Drop ``world`` from the fleet, preserving the others' order."""
        self.worlds.remove(world)
        return world

    def _batchable(self) -> bool:
        if not self.worlds:
            return False
        iters = {w.config.solver_iterations for w in self.worlds}
        return (len(iters) == 1
                and all(w.backend == "numpy" for w in self.worlds))

    def step(self):
        """Advance every world one ``dt`` sub-step."""
        if not self._batchable():
            for w in self.worlds:
                w.step()
            return
        ctxs = [w._begin_step() for w in self.worlds]
        all_rows = []
        spans = []
        for ctx in ctxs:
            start = len(all_rows)
            all_rows.extend(rows for _, rows in ctx["prepared"])
            spans.append((start, len(all_rows)))
        stats = fp_solver.solve_islands(
            all_rows, self.worlds[0].config.solver_iterations)
        for w, ctx, (start, end) in zip(self.worlds, ctxs, spans):
            w._finish_islands(ctx, stats[start:end])
            w._finish_step(ctx)

    def step_frame(self, drivers=None):
        """One rendered frame for every world; returns their reports.

        ``drivers`` is an optional per-world list of zero-argument
        callables invoked before each sub-step (the same contract as a
        benchmark driver).  Worlds advance in lockstep, which requires
        a uniform ``substeps_per_frame``; mixed configurations step
        frame-by-frame per world instead.
        """
        if drivers is None:
            drivers = [None] * len(self.worlds)
        reports = []
        for w in self.worlds:
            w.report = FrameReport(w.frame_index)
            reports.append(w.report)
        substep_counts = {w.config.substeps_per_frame
                          for w in self.worlds}
        if len(substep_counts) == 1:
            for _ in range(substep_counts.pop()):
                for drive in drivers:
                    if drive is not None:
                        drive()
                self.step()
        else:
            for w, drive in zip(self.worlds, drivers):
                for _ in range(w.config.substeps_per_frame):
                    if drive is not None:
                        drive()
                    w.step()
        for w in self.worlds:
            w.frame_index += 1
        return reports
