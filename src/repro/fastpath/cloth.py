"""Cloth fast path: bincount relaxation + collider AABB prefilter.

The scalar :class:`~repro.cloth.Cloth` is already vectorized per-vertex;
what remains hot is the pair of ``np.add.at`` scatters in each of the
eight relaxation iterations and the per-collider projection passes that
run even when a collider is nowhere near the cloth.  ``step_cloth``
replicates ``Cloth.step`` with

* the two ``np.add.at`` calls fused into per-component ``np.bincount``
  over the concatenated endpoint indices — the same accumulation order
  element by element, so the sums are bit-identical; and
* a conservative cloth-AABB vs collider-AABB prefilter (expanded by the
  projection margin) that skips colliders whose projection pass would
  have been a no-op anyway.

Everything else — Verlet, pinning, ground contact — calls straight into
the cloth's own routines.
"""

from __future__ import annotations

import numpy as np

from .broadphase import fill_aabbs

# Cloth's projection skin is 0.01; the prefilter expands by a little
# more so rounding in the projection's own distance math can never
# disagree with this conservative AABB test.
_MARGIN = 0.011


def _relax_indices(cloth):
    """Flattened (vertex*3 + component) bins for one fused bincount.

    Each output bin receives exactly the elements the per-component
    bincounts fed it, in the same relative order, so the accumulated
    sums are bit-identical.
    """
    idx = getattr(cloth, "_fastpath_relax_idx3", None)
    if idx is None or len(idx) != 6 * len(cloth._ci):
        base = np.concatenate((cloth._ci, cloth._cj))
        idx = np.repeat(base * 3, 3) + np.tile(np.arange(3), len(base))
        cloth._fastpath_relax_idx3 = idx
    return idx


def _relax_once(cloth):
    pos = cloth.positions
    d = pos[cloth._cj] - pos[cloth._ci]
    lengths = np.sqrt((d * d).sum(axis=1))
    np.maximum(lengths, 1e-12, out=lengths)
    corr = d * ((lengths - cloth._rest) / lengths * 0.5)[:, None]
    m = len(corr)
    w = np.empty((2 * m, 3))
    w[:m] = corr
    np.negative(corr, out=w[m:])
    idx3 = _relax_indices(cloth)
    n = len(pos)
    delta = np.bincount(idx3, weights=w.ravel(),
                        minlength=3 * n).reshape(n, 3)
    delta[cloth.pinned] = 0.0
    delta *= cloth._inv_degree
    pos += delta


# pax: ignore[PAX202]: per-step precompute shared by every cloth; the
# scalar path recomputes bounds inline, so there is no named analogue.
def collider_bounds(colliders):
    """Margin-expanded AABB arrays for the step's cloth colliders.

    Computed once per step and shared by every cloth's prefilter.
    """
    n = len(colliders)
    lo = np.empty((n, 3))
    hi = np.empty((n, 3))
    fill_aabbs(colliders, lo, hi)
    return lo - _MARGIN, hi + _MARGIN


def step_cloth(cloth, dt: float, gravity, colliders=(), bounds=None):
    """Drop-in for ``Cloth.step`` (bit-identical trajectories)."""
    pos = cloth.positions
    prev = cloth.prev_positions
    g = np.array([gravity.x, gravity.y, gravity.z])

    velocity = (pos - prev) * cloth.DAMPING
    new_pos = pos + velocity + g * (dt * dt)
    new_pos[cloth.pinned] = pos[cloth.pinned]
    cloth.prev_positions = pos
    cloth.positions = new_pos

    for _ in range(cloth.ITERATIONS):
        _relax_once(cloth)

    cloth.projection_count = 0
    cloth.contact_bodies = set()
    if colliders:
        if bounds is None:
            bounds = collider_bounds(colliders)
        glo, ghi = bounds
        lo = cloth.positions.min(axis=0)
        hi = cloth.positions.max(axis=0)
        near = ((lo <= ghi) & (glo <= hi)).all(axis=1)
        for i in np.nonzero(near)[0]:
            cloth._project_out_of(colliders[i])
    if cloth.ground_height is not None:
        cloth._project_ground()

    return {
        "vertices": cloth.num_vertices,
        "constraints": cloth.num_constraints,
        "constraint_updates": cloth.ITERATIONS * cloth.num_constraints,
        "projections": cloth.projection_count,
        "contacts": len(cloth.contact_bodies),
    }
