"""Batched joint-row construction (bit-identical to the scalar path).

Ball, hinge, and fixed joints all start from the same three anchor rows
(``Joint._anchor_rows``): two quaternion rotations, a world-space error,
and three ``Row`` constructions whose effective masses are quadratic
forms in the anchor arm.  Hinges add two angular rows around the axis
frame; fixed joints add three angular rows from the relative-orientation
error.  All of that reads only positions and orientations, so it batches
across every joint of every island in one NumPy pass that restates the
scalar expressions term for term (including the multiplications by the
basis axes' 0/1 components, so even the signs of zeros match).

Rare, state-bearing pieces stay scalar: hinge motor and limit rows are
assembled through the ordinary ``Row`` constructor, and slider joints
(which apply spring forces) are left to their own ``begin_step``.
"""

from __future__ import annotations

import numpy as np

from ..dynamics.joints import BallJoint, FixedJoint, HingeJoint
from ..dynamics.solver import Row
from ..math3d import Vec3
from .rows import _inv_k, _make_row, _vec

_INF = float("inf")
_ZERO = Vec3()
_AXES = (Vec3(1, 0, 0), Vec3(0, 1, 0), Vec3(0, 0, 1))
_NEG_AXES = tuple(-a for a in _AXES)
_E = ((1.0, 0.0, 0.0), (0.0, 1.0, 0.0), (0.0, 0.0, 1.0))


def _rotate(w, x, y, z, vx, vy, vz):
    """Quaternion.rotate, componentwise (floats or arrays)."""
    uvx = y * vz - z * vy
    uvy = z * vx - x * vz
    uvz = x * vy - y * vx
    uuvx = y * uvz - z * uvy
    uuvy = z * uvx - x * uvz
    uuvz = x * uvy - y * uvx
    return (vx + (uvx * w + uuvx) * 2.0,
            vy + (uvy * w + uuvy) * 2.0,
            vz + (uvz * w + uuvz) * 2.0)


def _qmul(aw, ax, ay, az, bw, bx, by, bz):
    """Quaternion.__mul__, componentwise."""
    return (aw * bw - ax * bx - ay * by - az * bz,
            aw * bx + ax * bw + ay * bz - az * by,
            aw * by - ax * bz + ay * bw + az * bx,
            aw * bz + ax * by - ay * bx + az * bw)


def _qnormalized(w, x, y, z):
    """Quaternion.normalized (identity below the norm epsilon)."""
    n = np.sqrt(w * w + x * x + y * y + z * z)
    small = n < 1e-12
    inv = np.where(small, 0.0, 1.0 / n)
    return (np.where(small, 1.0, w * inv), np.where(small, 0.0, x * inv),
            np.where(small, 0.0, y * inv), np.where(small, 0.0, z * inv))


def _orthonormal(nx, ny, nz):
    """n.any_orthonormal() and n.cross(that), componentwise."""
    use_x = np.abs(nx) < 0.57735
    bx = np.where(use_x, 1.0, 0.0)
    by = np.where(use_x, 0.0, 1.0)
    cx = ny * 0.0 - nz * by
    cy = nz * bx - nx * 0.0
    cz = nx * by - ny * bx
    cl = np.sqrt((cx * cx + cy * cy) + cz * cz)
    inv_cl = np.where(cl < 1e-12, 0.0, 1.0 / cl)
    px = np.where(cl < 1e-12, 0.0, cx * inv_cl)
    py = np.where(cl < 1e-12, 0.0, cy * inv_cl)
    pz = np.where(cl < 1e-12, 0.0, cz * inv_cl)
    qx = ny * pz - nz * py
    qy = nz * px - nx * pz
    qz = nx * py - ny * px
    return px, py, pz, qx, qy, qz


class _Bodies:
    """Per-joint body data for one batch pass."""

    __slots__ = ("q", "p", "ima", "imb", "Ia", "Ib", "a_dyn", "b_dyn")

    def __init__(self, joints):
        m = len(joints)
        self.q = np.empty((m, 8))
        self.p = np.empty((m, 6))
        self.ima = np.zeros(m)
        self.imb = np.zeros(m)
        self.Ia = np.zeros((m, 9))
        self.Ib = np.zeros((m, 9))
        self.a_dyn = np.zeros(m, dtype=bool)
        self.b_dyn = np.zeros(m, dtype=bool)
        for i, j in enumerate(joints):
            a = j.body_a
            b = j.body_b
            qa = a.orientation
            qb = b.orientation
            pa = a.position
            pb = b.position
            self.q[i] = (qa.w, qa.x, qa.y, qa.z, qb.w, qb.x, qb.y, qb.z)
            self.p[i] = (pa.x, pa.y, pa.z, pb.x, pb.y, pb.z)
            if not a.is_static:
                self.a_dyn[i] = True
                self.ima[i] = a.inv_mass
                (self.Ia[i, 0], self.Ia[i, 1], self.Ia[i, 2]), \
                    (self.Ia[i, 3], self.Ia[i, 4], self.Ia[i, 5]), \
                    (self.Ia[i, 6], self.Ia[i, 7], self.Ia[i, 8]) = \
                    a.inv_inertia_world.m
            if not b.is_static:
                self.b_dyn[i] = True
                self.imb[i] = b.inv_mass
                (self.Ib[i, 0], self.Ib[i, 1], self.Ib[i, 2]), \
                    (self.Ib[i, 3], self.Ib[i, 4], self.Ib[i, 5]), \
                    (self.Ib[i, 6], self.Ib[i, 7], self.Ib[i, 8]) = \
                    b.inv_inertia_world.m


def _angular_rows(bod, ex, ey, ez, rhs, joint_of, out):
    """Rows with zero linear parts: ang_a = e, ang_b = -e."""
    with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
        ik = _inv_k(0.0, 0.0, 0.0, ex, ey, ez, -ex, -ey, -ez,
                    bod.ima, bod.imb, bod.Ia, bod.Ib,
                    bod.a_dyn, bod.b_dyn)
    exl, eyl, ezl = ex.tolist(), ey.tolist(), ez.tolist()
    rhl = rhs.tolist()
    ikl = ik.tolist()
    for i, j in enumerate(joint_of):
        out[i].append(_make_row(
            j.body_a, j.body_b, _ZERO,
            _vec(exl[i], eyl[i], ezl[i]), _ZERO,
            _vec(-exl[i], -eyl[i], -ezl[i]),
            rhl[i], -_INF, _INF, None, 0.0, j, ikl[i]))


def build_joint_rows(joints, dt, erp):
    """``begin_step`` for many ball/hinge/fixed joints at once.

    Returns a list aligned with ``joints``: a row list per batchable
    joint, None where the caller must fall back to the joint's own
    ``begin_step`` (sliders, subclasses).
    """
    out = [None] * len(joints)
    batch = []
    hinges = []
    fixeds = []
    for i, j in enumerate(joints):
        t = type(j)
        if t is BallJoint or t is HingeJoint or t is FixedJoint:
            if t is HingeJoint:
                hinges.append((len(batch), i, j))
            elif t is FixedJoint:
                fixeds.append((len(batch), i, j))
            batch.append((i, j))
    if not batch:
        return out

    beta = erp / dt
    joints_b = [j for _, j in batch]
    bod = _Bodies(joints_b)
    m = len(batch)
    anchors = np.empty((m, 6))
    for i, j in enumerate(joints_b):
        la = j.anchor_local_a
        lb = j.anchor_local_b
        anchors[i] = (la.x, la.y, la.z, lb.x, lb.y, lb.z)

    q = bod.q
    p = bod.p
    with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
        rax, ray, raz = _rotate(q[:, 0], q[:, 1], q[:, 2], q[:, 3],
                                anchors[:, 0], anchors[:, 1], anchors[:, 2])
        rbx, rby, rbz = _rotate(q[:, 4], q[:, 5], q[:, 6], q[:, 7],
                                anchors[:, 3], anchors[:, 4], anchors[:, 5])
        errx = (p[:, 0] + rax) - (p[:, 3] + rbx)
        erry = (p[:, 1] + ray) - (p[:, 4] + rby)
        errz = (p[:, 2] + raz) - (p[:, 5] + rbz)

        per_axis = []
        for e0, e1, e2 in _E:
            aax = ray * e2 - raz * e1
            aay = raz * e0 - rax * e2
            aaz = rax * e1 - ray * e0
            abx = -(rby * e2 - rbz * e1)
            aby = -(rbz * e0 - rbx * e2)
            abz = -(rbx * e1 - rby * e0)
            rhs = -beta * ((errx * e0 + erry * e1) + errz * e2)
            ik = _inv_k(e0, e1, e2, aax, aay, aaz, abx, aby, abz,
                        bod.ima, bod.imb, bod.Ia, bod.Ib,
                        bod.a_dyn, bod.b_dyn)
            per_axis.append((aax.tolist(), aay.tolist(), aaz.tolist(),
                             abx.tolist(), aby.tolist(), abz.tolist(),
                             rhs.tolist(), ik.tolist()))

    for i, (src, j) in enumerate(batch):
        rows = []
        for k in range(3):
            aax, aay, aaz, abx, aby, abz, rhs, ik = per_axis[k]
            rows.append(_make_row(
                j.body_a, j.body_b, _AXES[k],
                _vec(aax[i], aay[i], aaz[i]), _NEG_AXES[k],
                _vec(abx[i], aby[i], abz[i]),
                rhs[i], -_INF, _INF, None, 0.0, j, ik[i]))
        j.rows = rows
        out[src] = rows

    if hinges:
        hsel = np.array([bi for bi, _, _ in hinges], dtype=np.intp)
        hjoints = [j for _, _, j in hinges]
        hbod = _Bodies.__new__(_Bodies)
        hbod.q = q[hsel]
        hbod.p = p[hsel]
        hbod.ima = bod.ima[hsel]
        hbod.imb = bod.imb[hsel]
        hbod.Ia = bod.Ia[hsel]
        hbod.Ib = bod.Ib[hsel]
        hbod.a_dyn = bod.a_dyn[hsel]
        hbod.b_dyn = bod.b_dyn[hsel]
        hm = len(hinges)
        axes_l = np.empty((hm, 6))
        for i, j in enumerate(hjoints):
            la = j.axis_local_a
            lb = j.axis_local_b
            axes_l[i] = (la.x, la.y, la.z, lb.x, lb.y, lb.z)
        hq = hbod.q
        with np.errstate(invalid="ignore", over="ignore",
                         divide="ignore"):
            ax, ay, az = _rotate(hq[:, 0], hq[:, 1], hq[:, 2], hq[:, 3],
                                 axes_l[:, 0], axes_l[:, 1], axes_l[:, 2])
            bx, by, bz = _rotate(hq[:, 4], hq[:, 5], hq[:, 6], hq[:, 7],
                                 axes_l[:, 3], axes_l[:, 4], axes_l[:, 5])
            ex = ay * bz - az * by
            ey = az * bx - ax * bz
            ez = ax * by - ay * bx
            px, py, pz, qx, qy, qz = _orthonormal(ax, ay, az)
        hrows = [j.rows for j in hjoints]
        _angular_rows(hbod, px, py, pz,
                      beta * ((ex * px + ey * py) + ez * pz),
                      hjoints, hrows)
        _angular_rows(hbod, qx, qy, qz,
                      beta * ((ex * qx + ey * qy) + ez * qz),
                      hjoints, hrows)
        axl, ayl, azl = ax.tolist(), ay.tolist(), az.tolist()
        for i, j in enumerate(hjoints):
            rows = hrows[i]
            if j.motor_velocity is not None and j.motor_max_force > 0.0:
                cap = j.motor_max_force * dt
                axis_a = _vec(axl[i], ayl[i], azl[i])
                rows.append(Row(
                    j.body_a, j.body_b,
                    lin_a=_ZERO, ang_a=axis_a,
                    lin_b=_ZERO, ang_b=-axis_a,
                    rhs=-j.motor_velocity,
                    lo=-cap, hi=cap,
                    joint=j,
                ))
            if j.limit_lo is not None or j.limit_hi is not None:
                angle = j.angle()
                axis_a = _vec(axl[i], ayl[i], azl[i])
                if j.limit_lo is not None and angle < j.limit_lo:
                    rows.append(Row(
                        j.body_a, j.body_b, lin_a=_ZERO, ang_a=-axis_a,
                        lin_b=_ZERO, ang_b=axis_a,
                        rhs=beta * (j.limit_lo - angle),
                        lo=0.0, hi=_INF, joint=j,
                    ))
                elif j.limit_hi is not None and angle > j.limit_hi:
                    rows.append(Row(
                        j.body_a, j.body_b, lin_a=_ZERO, ang_a=axis_a,
                        lin_b=_ZERO, ang_b=-axis_a,
                        rhs=beta * (angle - j.limit_hi),
                        lo=0.0, hi=_INF, joint=j,
                    ))

    if fixeds:
        fsel = np.array([bi for bi, _, _ in fixeds], dtype=np.intp)
        fjoints = [j for _, _, j in fixeds]
        fbod = _Bodies.__new__(_Bodies)
        fbod.q = q[fsel]
        fbod.p = p[fsel]
        fbod.ima = bod.ima[fsel]
        fbod.imb = bod.imb[fsel]
        fbod.Ia = bod.Ia[fsel]
        fbod.Ib = bod.Ib[fsel]
        fbod.a_dyn = bod.a_dyn[fsel]
        fbod.b_dyn = bod.b_dyn[fsel]
        fm = len(fixeds)
        qrel = np.empty((fm, 4))
        for i, j in enumerate(fjoints):
            r = j.q_rel
            qrel[i] = (r.w, r.x, r.y, r.z)
        fq = fbod.q
        with np.errstate(invalid="ignore", over="ignore",
                         divide="ignore"):
            tw, tx, ty, tz = _qnormalized(*_qmul(
                fq[:, 4], fq[:, 5], fq[:, 6], fq[:, 7],
                qrel[:, 0], qrel[:, 1], qrel[:, 2], qrel[:, 3]))
            # q_err = (qa * target.conjugate()).normalized()
            ew, ex_, ey_, ez_ = _qnormalized(*_qmul(
                fq[:, 0], fq[:, 1], fq[:, 2], fq[:, 3],
                tw, -tx, -ty, -tz))
            flip = ew < 0.0
            ex_ = np.where(flip, -ex_, ex_)
            ey_ = np.where(flip, -ey_, ey_)
            ez_ = np.where(flip, -ez_, ez_)
            vx = 2.0 * ex_
            vy = 2.0 * ey_
            vz = 2.0 * ez_
        frows = [j.rows for j in fjoints]
        for k, (e0, e1, e2) in enumerate(_E):
            with np.errstate(invalid="ignore", over="ignore",
                             divide="ignore"):
                ik = _inv_k(0.0, 0.0, 0.0, e0, e1, e2, -e0, -e1, -e2,
                            fbod.ima, fbod.imb, fbod.Ia, fbod.Ib,
                            fbod.a_dyn, fbod.b_dyn)
                rhs = -beta * ((vx * e0 + vy * e1) + vz * e2)
            rhl = rhs.tolist()
            ikl = ik.tolist()
            for i, j in enumerate(fjoints):
                # ang_a / ang_b carry the exact basis vectors the
                # scalar path stores (integer zeros, not -0.0).
                frows[i].append(_make_row(
                    j.body_a, j.body_b, _ZERO, _AXES[k], _ZERO,
                    _NEG_AXES[k], rhl[i], -_INF, _INF, None, 0.0,
                    j, ikl[i]))

    return out
