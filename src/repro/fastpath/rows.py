"""Batched contact-row construction (bit-identical to the scalar path).

``ContactJoint.begin_step`` + ``Row.__init__`` dominate island setup in
contact-heavy scenes: per contact they build three Jacobians (cross
products), three effective masses (two quadratic forms each), and the
Baumgarte bias.  All of that depends only on positions and inertia —
state that warm starting never touches — so it batches across every
contact of every island in one NumPy pass restating the scalar
expressions term for term.

What cannot batch is kept sequential, in the scalar loop's exact order:
the restitution bounce reads body *velocities* (which earlier contacts'
warm starts have already nudged), and warm starting itself applies
impulses body by body.  Those run per contact, unboxed, after the batch
pass.
"""

from __future__ import annotations

import numpy as np

from ..dynamics.joints import ContactJoint
from ..dynamics.solver import Row
from ..math3d import Vec3

_SLOP = ContactJoint.PENETRATION_SLOP
_MAX_BIAS = ContactJoint.MAX_BIAS_VELOCITY
_REST_THRESHOLD = ContactJoint.RESTITUTION_THRESHOLD
_INF = float("inf")


def _quad_form(wx, wy, wz, im):
    """``w.dot(I_world * w)`` with Mat3.__mul__'s row sums."""
    c0 = im[:, 0] * wx + im[:, 1] * wy + im[:, 2] * wz
    c1 = im[:, 3] * wx + im[:, 4] * wy + im[:, 5] * wz
    c2 = im[:, 6] * wx + im[:, 7] * wy + im[:, 8] * wz
    return wx * c0 + wy * c1 + wz * c2


def _inv_k(dx, dy, dz,
           aax, aay, aaz, abx, aby, abz,
           ima, imb, Ia, Ib, a_dyn, b_dyn):
    """``Row._effective_mass_inv`` for Jacobian (d, aa, -d, ab)."""
    ls = (dx * dx + dy * dy) + dz * dz
    ta_lin = np.where(a_dyn, ima * ls, 0.0)
    ta_ang = np.where(a_dyn, _quad_form(aax, aay, aaz, Ia), 0.0)
    # lin_b = -d: every product in its length_squared squares the
    # negation away, so the scalar value is bit-equal to ls.
    tb_lin = np.where(b_dyn, imb * ls, 0.0)
    tb_ang = np.where(b_dyn, _quad_form(abx, aby, abz, Ib), 0.0)
    k = (((0.0 + ta_lin) + ta_ang) + tb_lin) + tb_ang
    return np.where(k < 1e-12, 0.0, 1.0 / k)


def _make_row(a, b, lin_a, ang_a, lin_b, ang_b, rhs, lo, hi,
              friction_of, friction_coeff, joint, inv_k):
    r = Row.__new__(Row)
    r.body_a = a
    r.body_b = b
    r.lin_a = lin_a
    r.ang_a = ang_a
    r.lin_b = lin_b
    r.ang_b = ang_b
    r.rhs = rhs
    r.cfm = 0.0
    r.lo = lo
    r.hi = hi
    r.impulse = 0.0
    r.friction_of = friction_of
    r.friction_coeff = friction_coeff
    r.joint = joint
    r.inv_k = inv_k
    return r


def _vec(x, y, z):
    v = Vec3.__new__(Vec3)
    v.x = x
    v.y = y
    v.z = z
    return v


def _warm_start(row, imp):
    """``Row.warm_start`` unboxed (same products, same order)."""
    row.impulse = imp
    if imp == 0.0:
        return
    a = row.body_a
    if a is not None and not a.is_static:
        s = imp * a.inv_mass
        la = row.lin_a
        v = a.linear_velocity
        a.linear_velocity = _vec(v.x + la.x * s, v.y + la.y * s,
                                 v.z + la.z * s)
        aa = row.ang_a
        wx, wy, wz = aa.x * imp, aa.y * imp, aa.z * imp
        m = a.inv_inertia_world.m
        m0, m1, m2 = m
        w = a.angular_velocity
        a.angular_velocity = _vec(
            w.x + (m0[0] * wx + m0[1] * wy + m0[2] * wz),
            w.y + (m1[0] * wx + m1[1] * wy + m1[2] * wz),
            w.z + (m2[0] * wx + m2[1] * wy + m2[2] * wz))
    b = row.body_b
    if b is not None and not b.is_static:
        s = imp * b.inv_mass
        lb = row.lin_b
        v = b.linear_velocity
        b.linear_velocity = _vec(v.x + lb.x * s, v.y + lb.y * s,
                                 v.z + lb.z * s)
        ab = row.ang_b
        wx, wy, wz = ab.x * imp, ab.y * imp, ab.z * imp
        m = b.inv_inertia_world.m
        m0, m1, m2 = m
        w = b.angular_velocity
        b.angular_velocity = _vec(
            w.x + (m0[0] * wx + m0[1] * wy + m0[2] * wz),
            w.y + (m1[0] * wx + m1[1] * wy + m1[2] * wz),
            w.z + (m2[0] * wx + m2[1] * wy + m2[2] * wz))


def build_contact_rows(contact_joints, dt, erp, cache):
    """begin_step + warm start for many ContactJoints at once.

    ``contact_joints`` spans islands in island order; ``cache`` is the
    previous step's impulse cache, or None when warm starting is off.
    Returns one row list per joint, aligned with the input.
    """
    m = len(contact_joints)
    if m == 0:
        return []

    # Bodies repeat across many contacts, so their mass/inertia/position
    # gather into a small per-body table (slot 0 = "no body") that the
    # per-contact arrays fancy-index.
    body_idx = {}
    b_pos = [(0.0, 0.0, 0.0)]
    b_im = [0.0]
    b_inertia = [(0.0,) * 9]
    b_dynamic = [False]

    def bslot(body):
        if body is None:
            return 0
        s = body_idx.get(body.uid)
        if s is None:
            s = body_idx[body.uid] = len(b_pos)
            p = body.position
            b_pos.append((p.x, p.y, p.z))
            if body.is_static:
                b_im.append(0.0)
                b_inertia.append(b_inertia[0])
                b_dynamic.append(False)
            else:
                b_im.append(body.inv_mass)
                m0, m1, m2 = body.inv_inertia_world.m
                b_inertia.append((m0[0], m0[1], m0[2],
                                  m1[0], m1[1], m1[2],
                                  m2[0], m2[1], m2[2]))
                b_dynamic.append(True)
        return s

    n_l = []
    p_l = []
    depth_l = []
    sa_l = []
    sb_l = []
    for cj in contact_joints:
        c = cj.contact
        nv = c.normal
        pv = c.position
        n_l.append((nv.x, nv.y, nv.z))
        p_l.append((pv.x, pv.y, pv.z))
        depth_l.append(c.depth)
        sa_l.append(bslot(cj.body_a))
        sb_l.append(bslot(cj.body_b))

    n_arr = np.array(n_l)
    cpos = np.array(p_l)
    depth = np.array(depth_l)
    sa = np.array(sa_l, dtype=np.intp)
    sb = np.array(sb_l, dtype=np.intp)
    pos_t = np.array(b_pos)
    im_t = np.array(b_im)
    inertia_t = np.array(b_inertia)
    dyn_t = np.array(b_dynamic)
    # ra/rb: c.position - body.position (exact same subtractions), a
    # zero vector where the endpoint is absent.
    ra = np.where((sa > 0)[:, None], cpos - pos_t[sa], 0.0)
    rb = np.where((sb > 0)[:, None], cpos - pos_t[sb], 0.0)
    ima = im_t[sa]
    imb = im_t[sb]
    Ia = inertia_t[sa]
    Ib = inertia_t[sb]
    a_dyn = dyn_t[sa]
    b_dyn = dyn_t[sb]

    nx, ny, nz = n_arr[:, 0], n_arr[:, 1], n_arr[:, 2]
    rax, ray, raz = ra[:, 0], ra[:, 1], ra[:, 2]
    rbx, rby, rbz = rb[:, 0], rb[:, 1], rb[:, 2]

    with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
        # Friction frame: t1 = n.any_orthonormal(), t2 = n x t1.
        use_x = np.abs(nx) < 0.57735
        bx = np.where(use_x, 1.0, 0.0)
        by = np.where(use_x, 0.0, 1.0)
        cx = ny * 0.0 - nz * by
        cy = nz * bx - nx * 0.0
        cz = nx * by - ny * bx
        cl = np.sqrt((cx * cx + cy * cy) + cz * cz)
        inv_cl = np.where(cl < 1e-12, 0.0, 1.0 / cl)
        t1x = np.where(cl < 1e-12, 0.0, cx * inv_cl)
        t1y = np.where(cl < 1e-12, 0.0, cy * inv_cl)
        t1z = np.where(cl < 1e-12, 0.0, cz * inv_cl)
        t2x = ny * t1z - nz * t1y
        t2y = nz * t1x - nx * t1z
        t2z = nx * t1y - ny * t1x

        beta = erp / dt
        slop = np.where(depth - _SLOP > 0.0, depth - _SLOP, 0.0)
        scaled = beta * slop
        bias = np.where(_MAX_BIAS < scaled, _MAX_BIAS, scaled)

        def jac(dx, dy, dz):
            # ang_a = ra x d, ang_b = -(rb x d), lin_b = -d.
            aax = ray * dz - raz * dy
            aay = raz * dx - rax * dz
            aaz = rax * dy - ray * dx
            abx = -(rby * dz - rbz * dy)
            aby = -(rbz * dx - rbx * dz)
            abz = -(rbx * dy - rby * dx)
            ik = _inv_k(dx, dy, dz, aax, aay, aaz, abx, aby, abz,
                        ima, imb, Ia, Ib, a_dyn, b_dyn)
            return (aax.tolist(), aay.tolist(), aaz.tolist(),
                    abx.tolist(), aby.tolist(), abz.tolist(),
                    ik.tolist())

        jn = jac(nx, ny, nz)
        j1 = jac(t1x, t1y, t1z)
        j2 = jac(t2x, t2y, t2z)

    bias_l = bias.tolist()
    nlx = (-nx).tolist()
    nly = (-ny).tolist()
    nlz = (-nz).tolist()
    t1c = (t1x.tolist(), t1y.tolist(), t1z.tolist(),
           (-t1x).tolist(), (-t1y).tolist(), (-t1z).tolist())
    t2c = (t2x.tolist(), t2y.tolist(), t2z.tolist(),
           (-t2x).tolist(), (-t2y).tolist(), (-t2z).tolist())
    ra_l = ra.tolist()
    rb_l = rb.tolist()

    out = []
    for i, cj in enumerate(contact_joints):
        a = cj.body_a
        b = cj.body_b
        c = cj.contact
        n = c.normal
        rhs = bias_l[i]
        rest = cj.restitution
        if rest > 0.0:
            # _normal_velocity, unboxed — reads velocities *after* all
            # earlier contacts' warm starts, like the scalar loop.
            rx, ry_, rz_ = ra_l[i]
            vx = vy = vz = 0.0
            if a is not None:
                lv = a.linear_velocity
                av = a.angular_velocity
                vx = (0.0 + lv.x) + (av.y * rz_ - av.z * ry_)
                vy = (0.0 + lv.y) + (av.z * rx - av.x * rz_)
                vz = (0.0 + lv.z) + (av.x * ry_ - av.y * rx)
            if b is not None:
                sx, sy, sz = rb_l[i]
                lv = b.linear_velocity
                av = b.angular_velocity
                vx = (vx - lv.x) - (av.y * sz - av.z * sy)
                vy = (vy - lv.y) - (av.z * sx - av.x * sz)
                vz = (vz - lv.z) - (av.x * sy - av.y * sx)
            vn = n.x * vx + n.y * vy + n.z * vz
            if vn < -_REST_THRESHOLD:
                bounce = -rest * vn
                if bounce > rhs:
                    rhs = bounce
        normal_row = _make_row(
            a, b, n,
            _vec(jn[0][i], jn[1][i], jn[2][i]),
            _vec(nlx[i], nly[i], nlz[i]),
            _vec(jn[3][i], jn[4][i], jn[5][i]),
            rhs, 0.0, _INF, None, 0.0, cj, jn[6][i])
        cj.normal_row = normal_row
        rows = [normal_row]
        mu = cj.friction
        if mu > 0.0:
            r1 = _make_row(
                a, b,
                _vec(t1c[0][i], t1c[1][i], t1c[2][i]),
                _vec(j1[0][i], j1[1][i], j1[2][i]),
                _vec(t1c[3][i], t1c[4][i], t1c[5][i]),
                _vec(j1[3][i], j1[4][i], j1[5][i]),
                0.0, -_INF, _INF, normal_row, mu, cj, j1[6][i])
            r2 = _make_row(
                a, b,
                _vec(t2c[0][i], t2c[1][i], t2c[2][i]),
                _vec(j2[0][i], j2[1][i], j2[2][i]),
                _vec(t2c[3][i], t2c[4][i], t2c[5][i]),
                _vec(j2[3][i], j2[4][i], j2[5][i]),
                0.0, -_INF, _INF, normal_row, mu, cj, j2[6][i])
            cj.tangent_rows = (r1, r2)
            rows.append(r1)
            rows.append(r2)
        cj.rows = rows
        if cache is not None:
            cached = cache.get(cj.cache_key)
            if cached is not None:
                _warm_start(normal_row, cached[0])
                for row, imp in zip(cj.tangent_rows, cached[1:]):
                    _warm_start(row, imp)
        out.append(rows)
    return out
