"""Explosions (blast spheres) and prefractured debris.

The paper's Explosions benchmark drives both: a blast applies a radial
impulse field over a few steps, and any prefractured object caught in a
blast swaps its whole body for pre-authored debris pieces inheriting the
parent's motion (the game-industry prefracture trick the paper adopts
instead of runtime fracture computation).
"""

from __future__ import annotations

from ..math3d import Vec3


class Explosion:
    """A blast sphere: radial impulses with linear falloff, alive for
    ``duration_steps`` sub-steps."""

    def __init__(self, center: Vec3, radius: float, impulse: float,
                 duration_steps: int = 3):
        self.center = center
        self.radius = radius
        self.impulse = impulse
        self.duration_steps = duration_steps
        self.age = 0

    @property
    def active(self) -> bool:
        return self.age < self.duration_steps

    def __repr__(self):
        state = "active" if self.active else "spent"
        return (f"Explosion(at={self.center!r}, r={self.radius},"
                f" J={self.impulse}, {state})")

    # -- checkpointing --------------------------------------------------
    def snapshot_state(self) -> dict:
        c = self.center
        return {
            "center": [c.x, c.y, c.z],
            "radius": self.radius,
            "impulse": self.impulse,
            "duration_steps": self.duration_steps,
            "age": self.age,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Explosion":
        boom = cls(Vec3(*state["center"]), state["radius"],
                   state["impulse"], state["duration_steps"])
        boom.age = state["age"]
        return boom

    def apply(self, world) -> int:
        """Push every dynamic body in range; returns bodies affected."""
        if not self.active:
            return 0
        affected = 0
        # Impulse is split across the blast's duration.
        step_impulse = self.impulse / self.duration_steps
        for body in world.bodies:
            if body.is_static or not body.enabled:
                continue
            delta = body.position - self.center
            dist = delta.length()
            if dist >= self.radius:
                continue
            direction = (delta / dist if dist > 1e-6
                         else Vec3(0, 1, 0))
            falloff = 1.0 - dist / self.radius
            body.wake()
            body.apply_impulse(direction * (step_impulse * falloff))
            affected += 1
        for pf in world.prefractured:
            if pf.broken:
                continue
            delta = pf.body.position - self.center
            if delta.length() < self.radius + pf.trigger_margin:
                pf.fracture(delta.normalized()
                            * (self.impulse / max(pf.total_mass(), 1e-6)))
        self.age += 1
        return affected


class PrefracturedBody:
    """A whole body that shatters into pre-authored debris when blasted.

    The debris bodies exist (disabled) from construction so the world's
    body indexing — and therefore determinism — doesn't depend on when
    the fracture happens.
    """

    def __init__(self, world, body, geom, debris, trigger_margin=0.5):
        self.world = world
        self.body = body
        self.geom = geom
        self.debris = list(debris)  # [(body, geom), ...]
        self.broken = False
        self.trigger_margin = trigger_margin
        for debris_body, _ in self.debris:
            debris_body.enabled = False

    def __repr__(self):
        state = "broken" if self.broken else "whole"
        return f"PrefracturedBody(#{self.body.uid}, {state})"

    # -- checkpointing --------------------------------------------------
    def snapshot_state(self) -> dict:
        # Debris poses/velocities live on the debris bodies themselves;
        # only the trigger flag is prefracture-specific.
        return {"body_uid": self.body.uid, "broken": self.broken}

    def restore_state(self, state: dict):
        self.broken = state["broken"]
        return self

    def total_mass(self) -> float:
        return self.body.mass

    def fracture(self, extra_velocity: Vec3 = None):
        if self.broken:
            return
        self.broken = True
        self.body.enabled = False
        base_v = self.body.linear_velocity
        base_w = self.body.angular_velocity
        for debris_body, _ in self.debris:
            debris_body.enabled = True
            debris_body.wake()
            # Place relative to the parent's current pose.
            local = debris_body.position  # authored as a local offset
            debris_body.position = self.body.transform.apply(local)
            debris_body.orientation = self.body.orientation
            r = debris_body.position - self.body.position
            debris_body.linear_velocity = base_v + base_w.cross(r)
            if extra_velocity is not None:
                debris_body.linear_velocity = (
                    debris_body.linear_velocity + extra_velocity)
