"""The World: the five-phase per-step pipeline of the paper's Fig. 1.

    Broadphase -> Narrowphase -> Island Creation -> Island Processing
               -> Cloth

Each ``step()`` advances one ``dt`` sub-step and accumulates operation
counts into ``world.report``; ``step_frame()`` bundles the paper's
30 FPS cadence (three 0.01 s sub-steps) into one fresh
:class:`~repro.profiling.FrameReport`.
"""

from __future__ import annotations

import warnings

from ..collision import BROADPHASES, Geom, collide
from ..collision import ccd as ccd_mod
from ..dynamics import ContactJoint, build_islands, solve_island
from ..fastpath import resolve_backend
from ..fastpath import bodies as fp_bodies
from ..fastpath import cloth as fp_cloth
from ..fastpath import joints as fp_joints
from ..fastpath import narrowphase as fp_narrowphase
from ..fastpath import rows as fp_rows
from ..fastpath import solver as fp_solver
from ..fastpath.broadphase import VectorSweepAndPrune
from ..geometry import Shape
from ..math3d import Transform, Vec3
from ..profiling import (
    FrameReport,
    task_cost_cloth,
    task_cost_island,
    task_cost_narrowphase,
)
from .explosions import Explosion, PrefracturedBody


class WorldConfig:
    """Tunables for the engine; defaults match the paper's setup."""

    def __init__(self, gravity: Vec3 = None, dt: float = 0.01,
                 substeps_per_frame: int = 3, solver_iterations: int = 20,
                 erp: float = 0.2, warm_starting: bool = True,
                 broadphase: str = "sap", auto_sleep: bool = False,
                 sleep_linear_threshold: float = 0.05,
                 sleep_angular_threshold: float = 0.08,
                 sleep_time: float = 0.5,
                 linear_damping: float = 0.02,
                 angular_damping: float = 0.05,
                 max_contacts_per_pair: int = 4,
                 world_bounds: float = 500.0,
                 ccd: bool = True):
        self.gravity = gravity if gravity is not None else Vec3(0, -9.81, 0)
        self.dt = dt
        self.substeps_per_frame = substeps_per_frame
        self.solver_iterations = solver_iterations
        self.erp = erp
        self.warm_starting = warm_starting
        self.broadphase = broadphase
        self.auto_sleep = auto_sleep
        self.sleep_linear_threshold = sleep_linear_threshold
        self.sleep_angular_threshold = sleep_angular_threshold
        self.sleep_time = sleep_time
        self.linear_damping = linear_damping
        self.angular_damping = angular_damping
        self.max_contacts_per_pair = max_contacts_per_pair
        self.world_bounds = world_bounds
        self.ccd = ccd

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-native form (gravity as ``[x, y, z]``); the config half
        of the :class:`repro.api.SessionSpec` wire format."""
        g = self.gravity
        out = {name: getattr(self, name) for name in self.field_names()}
        if isinstance(g, Vec3):
            out["gravity"] = [g.x, g.y, g.z]
        else:  # tuples are accepted wherever Vec3 is
            out["gravity"] = [float(c) for c in g]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "WorldConfig":
        data = dict(data)
        gravity = data.pop("gravity", None)
        if gravity is not None:
            data["gravity"] = Vec3(*gravity)
        return cls(**data)

    def replace(self, **overrides) -> "WorldConfig":
        """A copy with ``overrides`` applied (``dataclasses.replace``
        idiom; raises on unknown field names)."""
        data = self.to_dict()
        unknown = set(overrides) - set(data)
        if unknown:
            raise TypeError(
                f"unknown WorldConfig fields: {sorted(unknown)}")
        data.update(overrides)
        if isinstance(data["gravity"], Vec3):
            g = data["gravity"]
            data["gravity"] = [g.x, g.y, g.z]
        return WorldConfig.from_dict(data)

    @staticmethod
    def field_names() -> tuple:
        return ("gravity", "dt", "substeps_per_frame", "solver_iterations",
                "erp", "warm_starting", "broadphase", "auto_sleep",
                "sleep_linear_threshold", "sleep_angular_threshold",
                "sleep_time", "linear_damping", "angular_damping",
                "max_contacts_per_pair", "world_bounds", "ccd")


class World:
    def __init__(self, config: WorldConfig = None, backend: str = None,
                 **legacy_tunables):
        if legacy_tunables:
            # Pre-session API: ``World(gravity=..., dt=...)`` built the
            # config implicitly. Kept as a shim for one release; pass
            # ``config=WorldConfig(...)`` or use ``repro.api.Session``.
            unknown = (set(legacy_tunables)
                       - set(WorldConfig.field_names()))
            if unknown:
                raise TypeError(
                    f"unknown World tunables: {sorted(unknown)}")
            if config is not None:
                raise TypeError(
                    "pass tunables via config=WorldConfig(...), not "
                    "alongside config=")
            warnings.warn(
                "World(**tunables) is deprecated and will be removed in "
                "the next release; pass config=WorldConfig(...) or use "
                "repro.api.Session.create(SessionSpec(...))",
                DeprecationWarning, stacklevel=2)
            config = WorldConfig(**legacy_tunables)
        # pax: ignore[PAX201]: construction-time tunables; a snapshot
        # only restores into the same (or identically built) scene.
        self.config = config if config is not None else WorldConfig()
        # ``backend`` picks the engine kernels: ``"scalar"`` runs the
        # reference per-object code below, ``"numpy"`` swaps in the
        # bit-identical SoA kernels from ``repro.fastpath``.  ``None``
        # defers to ``fastpath.default_backend()`` / $REPRO_BACKEND.
        # pax: ignore[PAX201]: structural choice fixed at construction;
        # both backends replay snapshots bit-identically by contract.
        self.backend = resolve_backend(backend)
        if self.backend == "numpy" and self.config.broadphase == "sap":
            # pax: ignore[PAX201]: sort order re-converges from geom
            # AABBs in one sweep; proven by the restore replay tests.
            self.broadphase = VectorSweepAndPrune()
        else:
            self.broadphase = BROADPHASES[self.config.broadphase]()
        self.bodies = []
        self.geoms = []
        self.joints = []
        self.cloths = []
        self.explosions = []
        # pax: ignore[PAX201]: live view of _prefracture_registry
        # (which is captured); restore rebuilds it from the registry.
        self.prefractured = []
        # Every prefractured entry ever registered; ``prefractured``
        # holds only the untriggered ones (spent entries are pruned from
        # the per-step scan but stay here for checkpoint restore).
        self._prefracture_registry = []
        self.culled = 0  # bodies disabled by the kill-bounds cull
        # Stateful scene actors (cannons, ...) that must roll back with
        # the world for checkpoint/restore to replay bit-identically.
        self.actors = []
        # pax: ignore[PAX201]: per-frame scratch; step_frame() installs
        # a fresh FrameReport before any step reads it.
        self.report = None
        self.frame_index = 0
        self.step_index = 0
        self.time = 0.0
        self._no_collide_pairs = set()  # frozenset body-uid pairs
        self._impulse_cache = {}
        self._contacted_bodies = set()  # uids touched last step
        # Per-step health signals read by repro.resilience.StepWatchdog.
        # Each is fully overwritten by the next step before any read,
        # so a restored world regenerates them on its first step.
        # pax: ignore[PAX201]: per-step watchdog scratch (see above)
        self.last_max_penetration = 0.0
        # pax: ignore[PAX201]: per-step watchdog scratch (see above)
        self.last_penetration_uids = ()
        # pax: ignore[PAX201]: per-step watchdog scratch (see above)
        self.last_island_residuals = []  # [(residual, [body uids])]
        # pax: ignore[PAX201]: per-step watchdog scratch (see above)
        self.last_solver_residual = 0.0
        # pax: ignore[PAX201]: per-step watchdog scratch (see above)
        self.last_blast_bodies = 0  # bodies pushed by explosions

    # -- construction ---------------------------------------------------
    def add_body(self, body):
        if body.index < 0 or body.index >= len(self.bodies) \
                or self.bodies[body.index] is not body:
            body.index = len(self.bodies)
            self.bodies.append(body)
        return body

    def attach(self, body, shape: Shape, density: float = 1000.0,
               friction: float = 0.5, restitution: float = 0.0) -> Geom:
        """Add ``body`` (if new), give it mass from ``shape``, and
        register the collision geom."""
        self.add_body(body)
        body.set_mass_from_shape(shape, density)
        geom = Geom(shape, body=body, friction=friction,
                    restitution=restitution)
        geom.index = len(self.geoms)
        self.geoms.append(geom)
        return geom

    def add_geom(self, geom: Geom) -> Geom:
        if geom.body is not None:
            self.add_body(geom.body)
        geom.index = len(self.geoms)
        self.geoms.append(geom)
        return geom

    def add_static_geom(self, shape_or_geom, friction: float = 0.8,
                        restitution: float = 0.0,
                        offset: Transform = None) -> Geom:
        if isinstance(shape_or_geom, Geom):
            geom = shape_or_geom
            if offset is not None:
                geom.static_transform = offset
        else:
            geom = Geom(shape_or_geom, body=None, transform=offset,
                        friction=friction, restitution=restitution)
        geom.index = len(self.geoms)
        self.geoms.append(geom)
        return geom

    def add_joint(self, joint):
        self.joints.append(joint)
        a, b = joint.connected_bodies()
        if a is not None and b is not None:
            self._no_collide_pairs.add(frozenset((a.uid, b.uid)))
        return joint

    def add_cloth(self, cloth):
        self.cloths.append(cloth)
        return cloth

    def explode(self, center: Vec3, radius: float, impulse: float,
                duration_steps: int = 3) -> Explosion:
        boom = Explosion(center, radius, impulse, duration_steps)
        self.explosions.append(boom)
        return boom

    def add_prefractured(self, body, geom, debris,
                         trigger_margin: float = 0.5) -> PrefracturedBody:
        """Register a prefractured object; debris bodies/geoms must
        already be attached (they get disabled until fracture)."""
        pf = PrefracturedBody(self, body, geom, debris, trigger_margin)
        self.prefractured.append(pf)
        self._prefracture_registry.append(pf)
        return pf

    @property
    def prefracture_registry(self):
        """Every prefractured object ever registered, broken or not —
        ``prefractured`` holds only the live, not-yet-broken ones."""
        return self._prefracture_registry

    def register_actor(self, actor):
        """Track a stateful scene actor (``snapshot_state`` /
        ``restore_state``) so checkpoints include it."""
        self.actors.append(actor)
        return actor

    # -- queries --------------------------------------------------------
    def dynamic_bodies(self):
        return [b for b in self.bodies if not b.is_static and b.enabled]

    def body_had_contact(self, body) -> bool:
        return body.uid in self._contacted_bodies

    def _pair_filtered(self, ga: Geom, gb: Geom) -> bool:
        ba, bb = ga.body, gb.body
        if ba is not None and ba is bb:
            return True  # two geoms on the same body
        if ba is not None and bb is not None:
            if frozenset((ba.uid, bb.uid)) in self._no_collide_pairs:
                return True
        if (ga.collision_group is not None
                and ga.collision_group == gb.collision_group):
            return True
        return False

    # -- stepping -------------------------------------------------------
    def step_frame(self) -> FrameReport:
        """One rendered frame: fresh report + the configured sub-steps."""
        self.report = FrameReport(self.frame_index)
        for _ in range(self.config.substeps_per_frame):
            self.step()
        self.frame_index += 1
        return self.report

    def step(self):
        """Advance one ``dt`` sub-step through the five-phase pipeline.

        The step is split into three stages so :class:`BatchWorld` can
        interleave many worlds: ``_begin_step`` (pre-phase through
        constraint-row setup), a solve over the prepared islands, and
        ``_finish_islands`` + ``_finish_step`` (integration, cloth,
        clocks).  Stage boundaries only hoist work across *disjoint*
        islands, so the trajectory is bit-identical to the original
        single-loop formulation.
        """
        ctx = self._begin_step()
        stats_list = self._solve_prepared(ctx)
        self._finish_islands(ctx, stats_list)
        self._finish_step(ctx)

    def _begin_step(self):
        cfg = self.config
        if self.report is None:
            self.report = FrameReport(self.frame_index)
        report = self.report
        report.steps += 1
        dt = cfg.dt

        # Pre-phase: explosions push bodies and trigger prefracture.
        # Spent blasts and triggered prefracture entries are pruned so
        # long runs don't scan an ever-growing list of dead events.
        self.last_blast_bodies = 0
        if self.explosions:
            alive = []
            for boom in self.explosions:
                if boom.active:
                    self.last_blast_bodies += boom.apply(self)
                if boom.active:
                    alive.append(boom)
            self.explosions = alive
        if self.prefractured:
            self.prefractured = [pf for pf in self.prefractured
                                 if not pf.broken]

        # Phase 1: broadphase.
        live_geoms = [g for g in self.geoms if g.enabled]
        pairs = self.broadphase.pairs(live_geoms)
        report.count(
            "broadphase",
            geoms=len(live_geoms),
            pairs=len(pairs),
            tests=getattr(self.broadphase, "tests", 0),
            swaps=getattr(self.broadphase, "swaps", 0),
        )
        # Memory-touch trace: the sweep walks geom records in spatial
        # (not allocation) order — the pointer-chasing access pattern
        # the paper blames for broadphase cache behavior.
        sweep_order = getattr(self.broadphase, "last_order", None)
        if sweep_order is None:
            sweep_order = [g.uid for g in live_geoms]
        report.touch("broadphase", "geom", sweep_order)
        report.touch("broadphase", "endpoint", sweep_order)

        # Phase 2: narrowphase.
        if self.backend == "numpy":
            contacts = fp_narrowphase.collide_pairs(self, pairs, report)
        else:
            contacts = []
            self._contacted_bodies = set()
            self.last_max_penetration = 0.0
            self.last_penetration_uids = ()
            np_geom_ids = []
            np_body_ids = []
            for ga, gb in pairs:
                if self._pair_filtered(ga, gb):
                    continue
                np_geom_ids.extend((ga.uid, gb.uid))
                for g in (ga, gb):
                    if g.body is not None:
                        np_body_ids.append(g.body.uid)
                found = collide(ga, gb)
                if len(found) > cfg.max_contacts_per_pair:
                    found = sorted(found, key=lambda c: -c.depth)
                    found = found[:cfg.max_contacts_per_pair]
                report.count("narrowphase", tests=1, contacts=len(found))
                report.add_task("narrowphase",
                                task_cost_narrowphase(len(found)))
                if found:
                    for body in (ga.body, gb.body):
                        if body is not None:
                            self._contacted_bodies.add(body.uid)
                    for c in found:
                        if c.depth > self.last_max_penetration:
                            self.last_max_penetration = c.depth
                            self.last_penetration_uids = tuple(
                                g.body.uid for g in (ga, gb)
                                if g.body is not None)
                    contacts.extend(found)
            report.touch("narrowphase", "geom", np_geom_ids)
            report.touch("narrowphase", "body", np_body_ids)
            report.touch("narrowphase", "contact", range(len(contacts)),
                         writes=True)

        # Phase 3: island creation.
        contact_joints = [
            ContactJoint(c) for c in contacts
            if self._contact_is_dynamic(c)
        ]
        # Joints lose their effect when either endpoint is disabled
        # (kill-bounds cull, quarantine, prefracture): solving against a
        # frozen body would yank the live one toward a corpse.
        active_joint_ids = [
            idx for idx, j in enumerate(self.joints)
            if j.enabled and not j.broken
            and self._joint_bodies_enabled(j)]
        active_joints = [self.joints[idx] for idx in active_joint_ids]
        islands, merges = build_islands(self.bodies, contact_joints,
                                        active_joints)
        report.count(
            "island_creation",
            bodies=len(self.dynamic_bodies()),
            unions=merges,
            islands=len(islands),
            constraints=len(contact_joints) + len(active_joints),
        )
        report.touch("island_creation", "body",
                     [b.uid for b in self.dynamic_bodies()])
        report.touch("island_creation", "contact",
                     range(len(contacts)))
        report.touch("island_creation", "joint", active_joint_ids)

        # Phase 4a: forces + constraint-row setup.  Islands are
        # body-disjoint, so building every island's rows (including
        # warm-start impulses, which only touch the island's own
        # bodies) before any island solves reads exactly the state the
        # original interleaved loop read.
        if self.backend == "numpy":
            fp_bodies.apply_forces(self, dt)
        else:
            self._apply_forces(dt)
        erp = cfg.erp
        cache = self._impulse_cache
        prepared = []
        live_islands = []
        for island in islands:
            if cfg.auto_sleep and self._island_asleep(island):
                report.count("island_processing", skipped_islands=1)
                continue
            live_islands.append(island)
        if self.backend == "numpy":
            # Contacts batch across islands in island order; warm
            # starts (island-local velocity nudges) interleave in the
            # same global sequence the scalar loop produces.  Joints
            # only read positions / own-island velocities, so building
            # them afterwards reads identical state.
            all_cjs = [cj for isl in live_islands
                       for cj in isl.contact_joints]
            built = fp_rows.build_contact_rows(
                all_cjs, dt, erp, cache if cfg.warm_starting else None)
            all_joints = [j for isl in live_islands for j in isl.joints]
            jbuilt = fp_joints.build_joint_rows(all_joints, dt, erp)
            pos = 0
            jpos = 0
            for island in live_islands:
                rows = []
                for cj in island.contact_joints:
                    rows.extend(built[pos])
                    pos += 1
                for joint in island.joints:
                    jrows = jbuilt[jpos]
                    jpos += 1
                    if jrows is None:
                        jrows = joint.begin_step(dt, erp)
                    rows.extend(jrows)
                prepared.append((island, rows))
        else:
            for island in live_islands:
                rows = []
                for cj in island.contact_joints:
                    cj_rows = cj.begin_step(dt, erp)
                    if cfg.warm_starting:
                        cached = cache.get(cj.cache_key)
                        if cached is not None:
                            cj.normal_row.warm_start(cached[0])
                            for row, imp in zip(cj.tangent_rows,
                                                cached[1:]):
                                row.warm_start(imp)
                    rows.extend(cj_rows)
                for joint in island.joints:
                    rows.extend(joint.begin_step(dt, erp))
                prepared.append((island, rows))
        return {"report": report, "dt": dt, "prepared": prepared,
                "live_geoms": live_geoms}

    def _solve_prepared(self, ctx):
        """Phase 4b: solve every prepared island's rows."""
        iterations = self.config.solver_iterations
        if self.backend == "numpy":
            return fp_solver.solve_islands(
                [rows for _, rows in ctx["prepared"]], iterations)
        return [solve_island(rows, iterations)
                for _, rows in ctx["prepared"]]

    def _finish_islands(self, ctx, stats_list):
        """Phase 4c: joint end-step, impulse cache, integration."""
        cfg = self.config
        report = ctx["report"]
        dt = ctx["dt"]
        use_fp = self.backend == "numpy"
        new_cache = {}
        self.last_island_residuals = []
        self.last_solver_residual = 0.0
        row_base = 0
        for (island, _rows), stats in zip(ctx["prepared"], stats_list):
            self.last_island_residuals.append(
                (stats.residual, [b.uid for b in island.bodies]))
            if stats.residual > self.last_solver_residual:
                self.last_solver_residual = stats.residual
            for joint in island.joints:
                joint.end_step(dt)
            for cj in island.contact_joints:
                new_cache[cj.cache_key] = (
                    cj.normal_row.impulse,
                ) + tuple(r.impulse for r in cj.tangent_rows)
            if use_fp:
                fp_bodies.integrate(self, island.bodies, dt)
            else:
                self._integrate(island.bodies, dt)
            report.count(
                "island_processing",
                rows=stats.rows,
                row_updates=stats.row_updates,
                integrations=len(island.bodies),
            )
            report.add_task("island_processing", task_cost_island(
                stats.rows, stats.row_updates, len(island.bodies)))
            # The PGS solver sweeps the island's row pool and body
            # records once per iteration — the repeated-sweep footprint
            # that makes island caching pay off (Fig. 3).
            report.touch("island_processing", "row",
                         range(row_base, row_base + stats.rows),
                         repeat=cfg.solver_iterations, writes=True)
            report.touch("island_processing", "body",
                         [b.uid for b in island.bodies],
                         repeat=cfg.solver_iterations, writes=True)
            row_base += stats.rows
            if cfg.auto_sleep:
                self._update_sleep(island, dt)
        self._impulse_cache = new_cache

    def _finish_step(self, ctx):
        cfg = self.config
        report = ctx["report"]
        dt = ctx["dt"]
        live_geoms = ctx["live_geoms"]

        # Phase 5: cloth.
        if self.cloths:
            cloth_colliders = [
                g for g in live_geoms
                if g.shape.kind in ("sphere", "box")
            ]
            use_fp = self.backend == "numpy"
            bounds = (fp_cloth.collider_bounds(cloth_colliders)
                      if use_fp and cloth_colliders else None)
            vert_base = 0
            for cloth in self.cloths:
                if use_fp:
                    stats = fp_cloth.step_cloth(cloth, dt, cfg.gravity,
                                                cloth_colliders, bounds)
                else:
                    stats = cloth.step(dt, cfg.gravity, cloth_colliders)
                report.touch("cloth", "clothvert",
                             range(vert_base,
                                   vert_base + cloth.num_vertices),
                             repeat=cloth.ITERATIONS, writes=True)
                vert_base += cloth.num_vertices
                report.count(
                    "cloth",
                    cloths=1,
                    vertices=stats["vertices"],
                    constraint_updates=stats["constraint_updates"],
                    projections=stats["projections"],
                    contacts=stats["contacts"],
                )
                report.add_task("cloth", task_cost_cloth(
                    stats["vertices"], stats["constraint_updates"],
                    stats["projections"]))
        else:
            report.count("cloth", cloths=0)

        self.step_index += 1
        self.time += dt

    # -- internals ------------------------------------------------------
    @staticmethod
    def _joint_bodies_enabled(joint) -> bool:
        a, b = joint.connected_bodies()
        return ((a is None or a.enabled)
                and (b is None or b.enabled))

    @staticmethod
    def _contact_is_dynamic(contact) -> bool:
        for geom in (contact.geom_a, contact.geom_b):
            body = geom.body
            if body is not None and not body.is_static and body.enabled:
                return True
        return False

    def _apply_forces(self, dt: float):
        g = self.config.gravity
        lin_k = max(0.0, 1.0 - self.config.linear_damping * dt)
        ang_k = max(0.0, 1.0 - self.config.angular_damping * dt)
        for body in self.bodies:
            if body.is_static or not body.enabled:
                continue
            body.refresh_world_inertia()
            if body.sleeping:
                body.clear_accumulators()
                continue
            body.linear_velocity = (
                body.linear_velocity
                + (g * body.gravity_scale + body.force * body.inv_mass) * dt
            ) * lin_k
            body.angular_velocity = (
                body.angular_velocity
                + (body.inv_inertia_world * body.torque) * dt
            ) * ang_k
            body.clear_accumulators()

    def _integrate(self, bodies, dt: float):
        bounds = self.config.world_bounds
        # ``config.ccd=False`` ablates the swept test entirely; the
        # module threshold stays the tuning knob when it is on.
        ccd_threshold = (ccd_mod.CCD_MOTION_THRESHOLD
                         if self.config.ccd else float("inf"))
        for body in bodies:
            if body.sleeping:
                continue
            motion = body.linear_velocity * dt
            if motion.length() > ccd_threshold:
                # Continuous collision: sweep fast movers so bullets
                # can't tunnel through thin structures in one sub-step.
                # Velocity is kept — the contact solver resolves the
                # impact next step from the clamped position.
                clamped = ccd_mod.sweep_clamp(self, body, motion)
                if clamped is not None:
                    body.position = clamped
                    body.orientation = body.orientation.integrated(
                        body.angular_velocity, dt)
                    body._inv_inertia_world = None
                    if self.report is not None:
                        self.report.count("narrowphase", ccd_clamps=1)
                    continue
            body.position = body.position + body.linear_velocity * dt
            body.orientation = body.orientation.integrated(
                body.angular_velocity, dt)
            body._inv_inertia_world = None
            # Kill-bounds cull: stray projectiles and blasted debris
            # that leave the arena stop simulating (and stop inflating
            # broadphase extents) instead of travelling forever.
            p = body.position
            if (abs(p.x) > bounds or abs(p.y) > bounds
                    or abs(p.z) > bounds):
                body.enabled = False
                self.culled += 1

    def _island_asleep(self, island) -> bool:
        return all(b.sleeping for b in island.bodies)

    def _update_sleep(self, island, dt: float):
        cfg = self.config
        quiet = all(
            (b.linear_velocity.length() < cfg.sleep_linear_threshold
             and b.angular_velocity.length() < cfg.sleep_angular_threshold)
            for b in island.bodies
        )
        if quiet:
            for b in island.bodies:
                b.sleep_timer += dt
                if b.sleep_timer >= cfg.sleep_time:
                    b.sleeping = True
                    b.linear_velocity = Vec3()
                    b.angular_velocity = Vec3()
        else:
            for b in island.bodies:
                b.wake()

    # -- diagnostics ----------------------------------------------------
    def total_kinetic_energy(self) -> float:
        return sum(b.kinetic_energy() for b in self.dynamic_bodies())
