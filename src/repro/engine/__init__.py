"""The engine facade: World (the 5-phase pipeline), explosions,
prefracture, trajectory recording."""

from .explosions import Explosion, PrefracturedBody
from .recorder import TrajectoryRecorder, assert_deterministic
from .world import World, WorldConfig

__all__ = [
    "World",
    "WorldConfig",
    "Explosion",
    "PrefracturedBody",
    "TrajectoryRecorder",
    "assert_deterministic",
]
