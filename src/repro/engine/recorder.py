"""Trajectory capture and the determinism checker.

The paper verified its benchmarks visually; headless, we record body
trajectories (exportable to JSON for any external viewer) and prove
runs are reproducible: the engine is written so that two builds of the
same seeded scene produce bit-identical trajectories.
"""

from __future__ import annotations

import json

import numpy as np


class TrajectoryRecorder:
    """Records per-frame positions/orientations of a world's bodies."""

    def __init__(self, world):
        self.world = world
        self.frames = []  # list of per-body state lists

    def snapshot(self):
        frame = []
        for body in self.world.bodies:
            p, q = body.position, body.orientation
            frame.append((
                body.uid, 1 if body.enabled else 0,
                p.x, p.y, p.z, q.w, q.x, q.y, q.z,
            ))
        self.frames.append(frame)
        return frame

    def record(self, frames: int, driver=None,
               stepper=None) -> "TrajectoryRecorder":
        """Simulate ``frames`` rendered frames, snapshotting each.

        ``driver`` (from a benchmark's ``build``) is called once per
        sub-step before stepping — cannons, throttles, explosion
        schedules all live there. ``stepper``, when given, replaces the
        driver+``world.step()`` pair per sub-step (it receives the
        driver); pass a ``StepWatchdog.step`` to record a guarded run.
        """
        self.snapshot()  # initial state
        for _ in range(frames):
            from ..profiling import FrameReport
            self.world.report = FrameReport(self.world.frame_index)
            for _ in range(self.world.config.substeps_per_frame):
                if stepper is not None:
                    stepper(driver)
                else:
                    if driver is not None:
                        driver()
                    self.world.step()
            self.world.frame_index += 1
            self.snapshot()
        return self

    def positions_array(self) -> np.ndarray:
        """(frames, bodies, 3) position tensor.

        Bodies are append-only, so each frame's body list is a prefix of
        the final one; bodies spawned mid-recording (cannon shells,
        debris) backfill earlier frames with their spawn position."""
        if not self.frames:
            return np.zeros((0, 0, 3), dtype=np.float64)
        n_frames = len(self.frames)
        n_bodies = len(self.frames[-1])
        arr = np.zeros((n_frames, n_bodies, 3), dtype=np.float64)
        first_seen = [0] * n_bodies
        for fi, frame in enumerate(self.frames):
            for bi, state in enumerate(frame):
                arr[fi, bi] = state[2:5]
        for fi, frame in enumerate(self.frames):
            for bi in range(len(frame), n_bodies):
                first_seen[bi] = max(first_seen[bi], fi + 1)
        for bi in range(n_bodies):
            if first_seen[bi] > 0:
                arr[:first_seen[bi], bi] = arr[first_seen[bi], bi]
        return arr

    def save_json(self, path: str):
        payload = {
            "frames": len(self.frames),
            "bodies": len(self.frames[0]) if self.frames else 0,
            "fields": ["uid", "enabled", "x", "y", "z",
                       "qw", "qx", "qy", "qz"],
            "trajectory": [
                [list(state) for state in frame] for frame in self.frames
            ],
        }
        with open(path, "w") as fh:
            json.dump(payload, fh)

    @staticmethod
    def load_json(path: str) -> dict:
        with open(path) as fh:
            return json.load(fh)


def trajectory_divergence(rec_a: TrajectoryRecorder,
                          rec_b: TrajectoryRecorder) -> float:
    """Max absolute position difference between two recordings."""
    a = rec_a.positions_array()
    b = rec_b.positions_array()
    if a.shape != b.shape:
        return float("inf")
    if a.size == 0:
        return 0.0
    return float(np.abs(a - b).max())


def assert_deterministic(build, frames: int = 4) -> float:
    """Run ``build()`` -> (world, driver) twice; assert bit-identical
    trajectories and return the (zero) max divergence."""
    recordings = []
    for _ in range(2):
        world, driver = build()
        recordings.append(TrajectoryRecorder(world).record(frames, driver))
    divergence = trajectory_divergence(*recordings)
    if divergence != 0.0:
        raise AssertionError(
            f"simulation is not deterministic: max divergence "
            f"{divergence!r} over {frames} frames")
    return divergence
